"""Frame-to-detections pipeline: background subtraction + SPCPE + blobs.

This is the "semantic object extraction" stage of the paper's system
overview (Figure 6): every frame yields a list of vehicle candidates, each
with an MBR and a centroid, which the tracker then links over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import PipelineError
from repro.vision.background import BackgroundModel
from repro.vision.blobs import Blob, clean_mask, extract_blobs
from repro.vision.spcpe import SPCPE

__all__ = ["Detection", "SegmentationPipeline"]


@dataclass(frozen=True)
class Detection:
    """One vehicle candidate in one frame."""

    frame: int
    blob: Blob

    @property
    def centroid(self) -> np.ndarray:
        return self.blob.centroid


class SegmentationPipeline:
    """Turn a clip into per-frame vehicle detections.

    Parameters
    ----------
    background:
        The background model; a default one is built if omitted.
    use_spcpe:
        Refine each blob's mask with SPCPE on an expanded patch around its
        MBR (slower, slightly better boxes on soft edges).
    min_area / max_area:
        Blob size gates, in pixels.
    patch_margin:
        How many pixels of context around a blob SPCPE gets to see.
    """

    def __init__(
        self,
        *,
        background: BackgroundModel | None = None,
        use_spcpe: bool = True,
        min_area: int = 25,
        max_area: int | None = 4000,
        patch_margin: int = 5,
    ) -> None:
        if min_area <= 0:
            raise PipelineError("min_area must be positive")
        self.background = background or BackgroundModel()
        self.spcpe = SPCPE() if use_spcpe else None
        self.min_area = int(min_area)
        self.max_area = max_area
        self.patch_margin = int(patch_margin)

    def _refine(self, frame: np.ndarray, mask: np.ndarray,
                blob: Blob) -> Blob:
        """Re-segment one blob with SPCPE; fall back to the original."""
        assert self.spcpe is not None
        height, width = frame.shape
        m = self.patch_margin
        y0, y1 = max(blob.y0 - m, 0), min(blob.y1 + m, height)
        x0, x1 = max(blob.x0 - m, 0), min(blob.x1 + m, width)
        patch = np.asarray(frame[y0:y1, x0:x1], dtype=float)
        coarse = mask[y0:y1, x0:x1]
        refined = self.spcpe.refine_mask(patch, coarse)
        candidates = extract_blobs(refined, patch, min_area=self.min_area,
                                   max_area=self.max_area)
        if not candidates:
            return blob
        best = max(candidates, key=lambda b: b.area)
        return Blob(
            cx=best.cx + x0,
            cy=best.cy + y0,
            x0=best.x0 + x0,
            y0=best.y0 + y0,
            x1=best.x1 + x0,
            y1=best.y1 + y0,
            area=best.area,
            mean_intensity=best.mean_intensity,
        )

    def detect(self, frame_index: int, frame: np.ndarray) -> list[Detection]:
        """Detections for a single frame (updates the background model)."""
        mask = self.background.apply(frame)
        mask = clean_mask(mask)
        blobs = extract_blobs(mask, frame, min_area=self.min_area,
                              max_area=self.max_area)
        if self.spcpe is not None:
            blobs = [self._refine(np.asarray(frame, dtype=float), mask, b)
                     for b in blobs]
        return [Detection(frame=frame_index, blob=b) for b in blobs]

    def process(self, clip) -> list[list[Detection]]:
        """Process a whole clip; returns one detection list per frame.

        ``clip`` is a :class:`~repro.vision.frames.VideoClip` or any
        sequence of frames.  The background is bootstrapped from the clip
        if the model is not already fitted.
        """
        frames: Iterable[np.ndarray]
        if hasattr(clip, "get"):
            if not self.background.is_fitted:
                self.background.learn(clip)
            frames = iter(clip)
        else:
            seq: Sequence[np.ndarray] = clip
            if not self.background.is_fitted:
                self.background.learn(seq)
            frames = iter(seq)
        return [self.detect(i, frame) for i, frame in enumerate(frames)]

    def process_range(self, clip, lo: int, hi: int) -> list[list[Detection]]:
        """Process frames ``[lo, hi)`` of a clip, carrying model state.

        Streaming building block: feeding contiguous ranges in order
        through one pipeline instance reproduces :meth:`process` exactly,
        because the background bootstrap (first call only) samples the
        whole clip just as the batch path does, and the selective running
        average then sees the frames in the same global order.  The
        pipeline object is picklable between calls, so a resumed ingest
        can restore it mid-clip.
        """
        if not 0 <= lo <= hi <= len(clip):
            raise PipelineError(
                f"frame range [{lo}, {hi}) outside clip of {len(clip)} frames"
            )
        if not self.background.is_fitted:
            self.background.learn(clip)
        read = clip.get if hasattr(clip, "get") else clip.__getitem__
        return [self.detect(i, read(i)) for i in range(lo, hi)]
