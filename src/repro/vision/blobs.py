"""Blob extraction: foreground mask -> vehicle candidates.

Produces, per connected foreground component, the Minimal Bounding
Rectangle (MBR) and centroid the paper tracks (Figure 1: "the yellow
rectangular area is the MBR ... (x_centroid, y_centroid) ... used for
tracking the positions of vehicles across video frames").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import PipelineError

__all__ = ["Blob", "clean_mask", "extract_blobs"]


@dataclass(frozen=True)
class Blob:
    """One connected foreground component.

    Coordinates are in pixel units; the bounding box is half-open
    ``[x0, x1) x [y0, y1)`` and the centroid is the foreground-pixel mean.
    """

    cx: float
    cy: float
    x0: int
    y0: int
    x1: int
    y1: int
    area: int
    mean_intensity: float

    @property
    def centroid(self) -> np.ndarray:
        return np.array([self.cx, self.cy])

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def bbox(self) -> tuple[int, int, int, int]:
        return (self.x0, self.y0, self.x1, self.y1)

    def mask_slice(self) -> tuple[slice, slice]:
        """(row, col) slices of the MBR, for cutting patches."""
        return slice(self.y0, self.y1), slice(self.x0, self.x1)


def clean_mask(mask: np.ndarray, *, open_iterations: int = 1,
               close_iterations: int = 1) -> np.ndarray:
    """Morphological cleanup: opening kills speckle, closing fills holes."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PipelineError(f"mask must be 2-D, got shape {mask.shape}")
    out = mask
    if open_iterations > 0:
        out = ndimage.binary_opening(out, iterations=open_iterations)
    if close_iterations > 0:
        out = ndimage.binary_closing(out, iterations=close_iterations)
    return out


def extract_blobs(mask: np.ndarray, frame: np.ndarray | None = None,
                  *, min_area: int = 20,
                  max_area: int | None = None) -> list[Blob]:
    """Connected components of ``mask`` as :class:`Blob` records.

    ``frame`` (if given) supplies the mean intensity per blob; components
    outside [min_area, max_area] are discarded as noise / lighting
    artifacts.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PipelineError(f"mask must be 2-D, got shape {mask.shape}")
    labels, n = ndimage.label(mask)
    if n == 0:
        return []
    blobs: list[Blob] = []
    slices = ndimage.find_objects(labels)
    for index, box in enumerate(slices, start=1):
        if box is None:
            continue
        component = labels[box] == index
        area = int(component.sum())
        if area < min_area:
            continue
        if max_area is not None and area > max_area:
            continue
        ys, xs = np.nonzero(component)
        y_off, x_off = box[0].start, box[1].start
        cy = float(ys.mean() + y_off)
        cx = float(xs.mean() + x_off)
        if frame is not None:
            patch = np.asarray(frame, dtype=float)[box]
            mean_intensity = float(patch[component].mean())
        else:
            mean_intensity = float("nan")
        blobs.append(
            Blob(
                cx=cx,
                cy=cy,
                x0=int(x_off),
                y0=int(y_off),
                x1=int(box[1].stop),
                y1=int(box[0].stop),
                area=area,
                mean_intensity=mean_intensity,
            )
        )
    return blobs
