"""PCA-based vehicle classification (paper Section 3.1, ref [13]).

"The last phase of the framework is to classify vehicle objects into
different classes such as SUVs, pick-up trucks, and cars ... based on
Principal Component Analysis."  We reproduce that stage from scratch:
vehicle patches are resized to a canonical resolution, projected onto the
top principal components of the training set, and classified by the
nearest class centroid in eigenspace.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.utils import check_positive

__all__ = [
    "resize_patch",
    "canonicalize_orientation",
    "PCAVehicleClassifier",
    "training_set_from_sim",
    "classify_tracks",
    "default_classifier",
]


def canonicalize_orientation(patch: np.ndarray) -> np.ndarray:
    """Rotate a patch so the object's long axis is horizontal.

    Vehicles appear in two orientations (driving horizontally or
    vertically); the classifier should not care.  The dominant axis is
    estimated from the second moments of the absolute intensity deviation,
    and the patch is transposed when the vertical spread wins.
    """
    patch = np.asarray(patch, dtype=float)
    dev = np.abs(patch - patch.mean())
    total = dev.sum()
    if total <= 0:
        return patch
    ys, xs = np.mgrid[0 : patch.shape[0], 0 : patch.shape[1]]
    mx = (dev * xs).sum() / total
    my = (dev * ys).sum() / total
    var_x = (dev * (xs - mx) ** 2).sum() / total
    var_y = (dev * (ys - my) ** 2).sum() / total
    return patch.T if var_y > var_x else patch


def resize_patch(patch: np.ndarray,
                 shape: tuple[int, int] = (16, 16)) -> np.ndarray:
    """Nearest-neighbour resize of a 2-D patch to ``shape`` (float64)."""
    patch = np.asarray(patch, dtype=float)
    if patch.ndim != 2 or patch.size == 0:
        raise ConfigurationError(
            f"patch must be non-empty 2-D, got shape {patch.shape}"
        )
    target_h, target_w = shape
    check_positive("target height", target_h)
    check_positive("target width", target_w)
    src_h, src_w = patch.shape
    rows = np.minimum(
        (np.arange(target_h) * src_h / target_h).astype(int), src_h - 1)
    cols = np.minimum(
        (np.arange(target_w) * src_w / target_w).astype(int), src_w - 1)
    return patch[np.ix_(rows, cols)]


class PCAVehicleClassifier:
    """Eigen-vehicle classifier: PCA projection + nearest class centroid.

    Parameters
    ----------
    n_components:
        Size of the eigenspace (clipped to the training-set rank).
    patch_shape:
        Canonical patch resolution every input is resized to.
    """

    def __init__(self, n_components: int = 8,
                 patch_shape: tuple[int, int] = (16, 16)) -> None:
        check_positive("n_components", n_components)
        self.n_components = int(n_components)
        self.patch_shape = (int(patch_shape[0]), int(patch_shape[1]))
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._centroids: dict[str, np.ndarray] = {}

    @property
    def is_fitted(self) -> bool:
        return self._components is not None

    @property
    def classes(self) -> list[str]:
        return sorted(self._centroids)

    def _vectorize(self, patches) -> np.ndarray:
        rows = [
            resize_patch(canonicalize_orientation(p), self.patch_shape).ravel()
            for p in patches
        ]
        matrix = np.asarray(rows, dtype=float)
        # Per-patch normalization: remove brightness and contrast so the
        # classifier keys on shape, not paint color.
        matrix -= matrix.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.maximum(norms, 1e-12)

    def fit(self, patches, labels) -> "PCAVehicleClassifier":
        """Fit the eigenspace and class centroids.

        ``patches`` is a sequence of 2-D arrays, ``labels`` the matching
        class names.
        """
        labels = list(labels)
        patches = list(patches)
        if len(patches) != len(labels):
            raise ConfigurationError(
                f"{len(patches)} patches but {len(labels)} labels"
            )
        if len(set(labels)) < 2:
            raise ConfigurationError("need at least two classes to fit")
        matrix = self._vectorize(patches)
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self._components = vt[:k]
        projected = centered @ self._components.T
        self._centroids = {
            label: projected[np.asarray(labels) == label].mean(axis=0)
            for label in set(labels)
        }
        return self

    def transform(self, patches) -> np.ndarray:
        """Project patches into the eigenspace; (n, k) array."""
        if self._components is None or self._mean is None:
            raise NotFittedError("fit() the classifier first")
        matrix = self._vectorize(patches)
        return (matrix - self._mean) @ self._components.T

    def predict(self, patches) -> list[str]:
        """Class name per patch (nearest centroid in eigenspace)."""
        projected = self.transform(patches)
        names = self.classes
        centroids = np.stack([self._centroids[c] for c in names])
        dists = np.linalg.norm(
            projected[:, None, :] - centroids[None, :, :], axis=2)
        return [names[int(i)] for i in np.argmin(dists, axis=1)]


def default_classifier(*, per_class: int = 40,
                       seed: int = 0) -> PCAVehicleClassifier:
    """A classifier fitted on the simulator's vehicle templates."""
    patches, labels = training_set_from_sim(per_class=per_class, seed=seed)
    return PCAVehicleClassifier(n_components=10).fit(patches, labels)


def classify_tracks(
    clip,
    tracks,
    classifier: PCAVehicleClassifier | None = None,
    *,
    samples_per_track: int = 3,
    patch_half: int = 16,
) -> dict[int, str]:
    """Vehicle class per track, by majority vote over sampled frames.

    This is the paper's Section 3.1 closing stage ("classify vehicle
    objects into different classes such as SUVs, pick-up trucks, and
    cars"): for each track, patches are cut from the clip around the
    tracked centroid at a few well-separated frames, classified in
    eigenspace, and the majority class wins.  Tracks whose patches never
    fit inside the frame are labelled ``"unknown"``.
    """
    check_positive("samples_per_track", samples_per_track)
    check_positive("patch_half", patch_half)
    if classifier is None:
        classifier = default_classifier()
    height, width = clip.shape
    out: dict[int, str] = {}
    for track in tracks:
        frames = track.frame_array()
        points = track.point_array()
        take = min(samples_per_track, len(frames))
        picks = np.linspace(0, len(frames) - 1, take).round().astype(int)
        patches = []
        for i in picks:
            x, y = points[i]
            x0, y0 = int(round(x)) - patch_half, int(round(y)) - patch_half
            x1, y1 = x0 + 2 * patch_half, y0 + 2 * patch_half
            if x0 < 0 or y0 < 0 or x1 > width or y1 > height:
                continue
            frame = np.asarray(clip.get(int(frames[i])), dtype=float)
            patches.append(frame[y0:y1, x0:x1])
        if not patches:
            out[track.track_id] = "unknown"
            continue
        votes = classifier.predict(patches)
        out[track.track_id] = max(set(votes), key=votes.count)
    return out


def training_set_from_sim(
    *,
    per_class: int = 40,
    noise_sigma: float = 2.0,
    seed: int = 0,
) -> tuple[list[np.ndarray], list[str]]:
    """Render labelled vehicle patches with the simulator's templates.

    Each sample is one vehicle drawn on a road background at a random
    sub-pixel offset with sensor noise, cut out with a fixed-size box so
    the absolute vehicle size — the strongest class cue — survives the
    classifier's canonical resize.
    """
    from repro.sim.render import _draw_vehicle
    from repro.sim.world import VEHICLE_TEMPLATES, VehicleState

    rng = np.random.default_rng(seed)
    patches: list[np.ndarray] = []
    labels: list[str] = []
    for kind in sorted(VEHICLE_TEMPLATES):
        length, width, intensity = VEHICLE_TEMPLATES[kind]
        for _ in range(per_class):
            horizontal = rng.random() < 0.5
            vx, vy = (2.0, 0.0) if horizontal else (0.0, 2.0)
            img = np.full((40, 40), 110.0)
            state = VehicleState(
                vid=0, kind=kind,
                x=20.0 + rng.uniform(-2, 2), y=20.0 + rng.uniform(-2, 2),
                vx=vx, vy=vy, length=length, width=width,
                intensity=intensity * rng.uniform(0.9, 1.1),
            )
            _draw_vehicle(img, state)
            img += rng.normal(0.0, noise_sigma, img.shape)
            half = 16  # fixed window: absolute size stays discriminative
            patch = img[20 - half : 20 + half, 20 - half : 20 + half]
            patches.append(patch)
            labels.append(kind)
    return patches, labels
