"""Detection and tracking quality metrics against simulator ground truth.

The retrieval benchmarks measure end-task accuracy; these metrics grade
the *front end* — how well detections and tracks match the simulated
vehicles — so regressions in the vision substrate are caught where they
happen, and ablations (background models, occluders, stitching) can be
quantified structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.world import SimulationResult
from repro.utils import check_positive

__all__ = [
    "DetectionQuality",
    "TrackingQuality",
    "evaluate_detections",
    "evaluate_tracking",
]


@dataclass(frozen=True)
class DetectionQuality:
    """Frame-level detection quality."""

    n_truth: int
    n_detections: int
    recall: float
    precision: float
    false_positives_per_frame: float
    mean_position_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DetectionQuality(recall={self.recall:.2f}, "
                f"precision={self.precision:.2f}, "
                f"fp/frame={self.false_positives_per_frame:.2f}, "
                f"err={self.mean_position_error:.2f}px)")


@dataclass(frozen=True)
class TrackingQuality:
    """Track-level quality: coverage, fragmentation, identity purity."""

    n_vehicles: int
    n_tracks: int
    coverage: float           # matched truth-frames / truth-frames
    fragments_per_vehicle: float  # distinct tracks serving one vehicle
    purity: float             # tracks serving exactly one vehicle
    mean_position_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TrackingQuality(coverage={self.coverage:.2f}, "
                f"fragments={self.fragments_per_vehicle:.2f}, "
                f"purity={self.purity:.2f})")


def _truth_states(result: SimulationResult, frame: int, margin: float):
    return [
        s for s in result.states[frame]
        if margin < s.x < result.width - margin
        and margin < s.y < result.height - margin
    ]


def evaluate_detections(
    result: SimulationResult,
    detections_per_frame,
    *,
    match_dist: float = 10.0,
    margin: float = 8.0,
    start_frame: int = 40,
) -> DetectionQuality:
    """Grade per-frame detections against true vehicle positions.

    A truth vehicle counts as recalled when a detection centroid lies
    within ``match_dist``; a detection counts as a false positive when no
    truth vehicle lies within ``1.4 * match_dist``.  The first
    ``start_frame`` frames are skipped (background bootstrap).
    """
    check_positive("match_dist", match_dist)
    if len(detections_per_frame) != result.n_frames:
        raise ConfigurationError(
            f"{len(detections_per_frame)} detection frames for a "
            f"{result.n_frames}-frame clip"
        )
    hits = total_truth = total_dets = false_pos = 0
    errors: list[float] = []
    n_frames = 0
    for frame in range(start_frame, result.n_frames):
        truths = _truth_states(result, frame, margin)
        dets = detections_per_frame[frame]
        total_truth += len(truths)
        total_dets += len(dets)
        n_frames += 1
        for s in truths:
            dists = [float(np.hypot(d.blob.cx - s.x, d.blob.cy - s.y))
                     for d in dets]
            if dists and min(dists) < match_dist:
                hits += 1
                errors.append(min(dists))
        for d in dets:
            if not any(np.hypot(d.blob.cx - s.x, d.blob.cy - s.y)
                       < 1.4 * match_dist for s in result.states[frame]):
                false_pos += 1
    return DetectionQuality(
        n_truth=total_truth,
        n_detections=total_dets,
        recall=hits / total_truth if total_truth else 0.0,
        precision=(total_dets - false_pos) / total_dets
        if total_dets else 0.0,
        false_positives_per_frame=false_pos / max(n_frames, 1),
        mean_position_error=float(np.mean(errors)) if errors else 0.0,
    )


def evaluate_tracking(
    result: SimulationResult,
    tracks,
    *,
    match_dist: float = 14.0,
    margin: float = 8.0,
    start_frame: int = 40,
) -> TrackingQuality:
    """Grade tracks: per-frame nearest matching, then structure metrics.

    ``coverage`` — fraction of (in-frame) truth observations matched by
    some track; ``fragments_per_vehicle`` — mean number of distinct
    tracks that ever serve one vehicle (1.0 is ideal); ``purity`` —
    fraction of tracks that only ever serve a single vehicle.
    """
    check_positive("match_dist", match_dist)
    vehicle_tracks: dict[int, set[int]] = {}
    track_vehicles: dict[int, set[int]] = {t.track_id: set() for t in tracks}
    matched = total = 0
    errors: list[float] = []
    for frame in range(start_frame, result.n_frames):
        truths = _truth_states(result, frame, margin)
        live = [(t.track_id, t.position_at(frame))
                for t in tracks if t.covers(frame)]
        for s in truths:
            total += 1
            best_id, best_dist = None, np.inf
            for track_id, pos in live:
                dist = float(np.hypot(pos[0] - s.x, pos[1] - s.y))
                if dist < best_dist:
                    best_id, best_dist = track_id, dist
            if best_id is not None and best_dist < match_dist:
                matched += 1
                errors.append(best_dist)
                vehicle_tracks.setdefault(s.vid, set()).add(best_id)
                track_vehicles[best_id].add(s.vid)
    serving = [ids for ids in vehicle_tracks.values() if ids]
    pure = [vids for vids in track_vehicles.values() if len(vids) == 1]
    used = [vids for vids in track_vehicles.values() if vids]
    return TrackingQuality(
        n_vehicles=len(vehicle_tracks),
        n_tracks=len(tracks),
        coverage=matched / total if total else 0.0,
        fragments_per_vehicle=float(np.mean([len(s) for s in serving]))
        if serving else 0.0,
        purity=len(pure) / len(used) if used else 0.0,
        mean_position_error=float(np.mean(errors)) if errors else 0.0,
    )
