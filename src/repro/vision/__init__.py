"""Vision substrate: from raw frames to per-frame vehicle detections.

Re-implements the front end the paper takes from Chen et al. [20]:
background learning and subtraction enhanced with a simplified SPCPE
(Simultaneous Partition and Class Parameter Estimation) segmentation, blob
extraction with minimal bounding rectangles and centroids, and the
PCA-based vehicle classifier of Zhang et al. [13].
"""

from repro.vision.frames import VideoClip
from repro.vision.background import BackgroundModel, GaussianBackgroundModel
from repro.vision.spcpe import SPCPE
from repro.vision.blobs import Blob, clean_mask, extract_blobs
from repro.vision.pipeline import Detection, SegmentationPipeline
from repro.vision.classify_pca import (
    PCAVehicleClassifier,
    canonicalize_orientation,
    classify_tracks,
    default_classifier,
    resize_patch,
)
from repro.vision.calibration import (
    PlaneNormalizedTrack,
    estimate_homography,
    normalize_tracks,
)
from repro.vision.metrics import (
    DetectionQuality,
    TrackingQuality,
    evaluate_detections,
    evaluate_tracking,
)

__all__ = [
    "VideoClip",
    "BackgroundModel",
    "GaussianBackgroundModel",
    "SPCPE",
    "Blob",
    "clean_mask",
    "extract_blobs",
    "Detection",
    "SegmentationPipeline",
    "PCAVehicleClassifier",
    "canonicalize_orientation",
    "classify_tracks",
    "default_classifier",
    "resize_patch",
    "PlaneNormalizedTrack",
    "estimate_homography",
    "normalize_tracks",
    "DetectionQuality",
    "TrackingQuality",
    "evaluate_detections",
    "evaluate_tracking",
]
