"""Simplified SPCPE segmentation (paper Section 3.1, ref [20]).

SPCPE — Simultaneous Partition and Class Parameter Estimation — jointly
estimates a two-class partition of an image patch and the parameters of a
per-class intensity model, alternating between (a) re-fitting each class
model on its current pixels and (b) re-assigning every pixel to the class
with the smaller model residual.  Following the original formulation we
model each class intensity as a bilinear surface

    I(x, y) ~ a + b*x + c*y + d*x*y

which lets a class absorb smooth illumination gradients (road shading)
while the other captures the vehicle body.  In the pipeline SPCPE refines
the coarse foreground patches produced by background subtraction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError
from repro.utils import check_positive

__all__ = ["SPCPE"]


def _design_matrix(height: int, width: int) -> np.ndarray:
    """Bilinear design matrix [1, x, y, x*y] for every pixel (row-major)."""
    ys, xs = np.mgrid[0:height, 0:width]
    xs = xs.ravel() / max(width - 1, 1)
    ys = ys.ravel() / max(height - 1, 1)
    return np.column_stack([np.ones_like(xs), xs, ys, xs * ys])


class SPCPE:
    """Two-class SPCPE segmentation of a grayscale patch.

    Parameters
    ----------
    max_iter:
        Iteration budget for the alternating estimation.
    min_class_fraction:
        If a class would shrink below this fraction of the patch, the
        algorithm stops (the partition degenerated — the patch is
        effectively single-class).
    """

    def __init__(self, *, max_iter: int = 20,
                 min_class_fraction: float = 0.02) -> None:
        check_positive("max_iter", max_iter)
        check_positive("min_class_fraction", min_class_fraction)
        self.max_iter = int(max_iter)
        self.min_class_fraction = float(min_class_fraction)

    @staticmethod
    def _fit_class(design: np.ndarray, values: np.ndarray,
                   members: np.ndarray) -> np.ndarray:
        """Least-squares bilinear fit of one class; returns coefficients."""
        rows = design[members]
        coeffs, *_ = np.linalg.lstsq(rows, values[members], rcond=None)
        return coeffs

    def partition(self, patch: np.ndarray) -> np.ndarray:
        """Return a bool array: True for the minority (object) class.

        The object class is defined as the class covering fewer pixels,
        which matches the pipeline's use on patches that are mostly road
        with one vehicle in the middle.
        """
        patch = np.asarray(patch, dtype=np.float64)
        if patch.ndim != 2 or patch.size < 8:
            raise PipelineError(
                f"SPCPE needs a 2-D patch with >= 8 pixels, got shape "
                f"{patch.shape}"
            )
        height, width = patch.shape
        design = _design_matrix(height, width)
        values = patch.ravel()

        # Initial partition: threshold at the patch mean.
        assign = values > values.mean()
        if assign.all() or not assign.any():
            return np.zeros_like(patch, dtype=bool)

        min_pixels = max(4, int(self.min_class_fraction * values.size))
        for _ in range(self.max_iter):
            if assign.sum() < min_pixels or (~assign).sum() < min_pixels:
                break
            coeff_a = self._fit_class(design, values, ~assign)
            coeff_b = self._fit_class(design, values, assign)
            res_a = np.abs(values - design @ coeff_a)
            res_b = np.abs(values - design @ coeff_b)
            new_assign = res_b < res_a
            if np.array_equal(new_assign, assign):
                break
            assign = new_assign

        if assign.all() or not assign.any():
            return np.zeros_like(patch, dtype=bool)
        # Minority class = object.
        if assign.sum() > values.size / 2:
            assign = ~assign
        return assign.reshape(height, width)

    def refine_mask(self, patch: np.ndarray,
                    coarse_mask: np.ndarray) -> np.ndarray:
        """Refine a coarse foreground mask over ``patch``.

        Runs :meth:`partition` and keeps the SPCPE object class only where
        it overlaps the coarse mask enough; falls back to the coarse mask
        when SPCPE degenerates (e.g. a flat patch).
        """
        coarse = np.asarray(coarse_mask, dtype=bool)
        if coarse.shape != patch.shape:
            raise PipelineError(
                f"mask shape {coarse.shape} != patch shape {patch.shape}"
            )
        obj = self.partition(patch)
        if not obj.any():
            return coarse
        overlap = (obj & coarse).sum() / obj.sum()
        if overlap < 0.3:
            return coarse
        return obj | coarse
