"""Video clip abstraction consumed by the vision pipeline.

A :class:`VideoClip` is a sequence of grayscale uint8 frames plus the
metadata the database layer stores (clip id, fps, location, camera).
Frames can be held eagerly (an ``(n, h, w)`` array) or produced lazily by a
renderer, which matters for the paper-scale 2500-frame tunnel clip.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import PipelineError

__all__ = ["VideoClip"]


class VideoClip:
    """A grayscale video clip: indexed frame access plus metadata."""

    def __init__(
        self,
        clip_id: str,
        n_frames: int,
        frame_getter: Callable[[int], np.ndarray],
        *,
        fps: float = 25.0,
        metadata: dict | None = None,
    ) -> None:
        if n_frames <= 0:
            raise PipelineError(f"clip {clip_id!r} has no frames")
        if fps <= 0:
            raise PipelineError(f"clip {clip_id!r} has non-positive fps")
        self.clip_id = str(clip_id)
        self.n_frames = int(n_frames)
        self.fps = float(fps)
        self.metadata = dict(metadata or {})
        self._getter = frame_getter
        self._shape: tuple[int, int] | None = None

    @classmethod
    def from_array(cls, clip_id: str, frames: np.ndarray,
                   **kwargs) -> "VideoClip":
        """Wrap an eager ``(n, h, w)`` uint8 array."""
        frames = np.asarray(frames)
        if frames.ndim != 3:
            raise PipelineError(
                f"expected (n_frames, h, w) array, got shape {frames.shape}"
            )
        return cls(clip_id, len(frames), lambda i: frames[i], **kwargs)

    @classmethod
    def from_simulation(cls, result, *,
                        noise_sigma: "float | np.ndarray" = 2.0,
                        render_seed: int = 7, fps: float = 25.0,
                        camera=None,
                        illumination_drift: float = 0.0) -> "VideoClip":
        """Render a :class:`~repro.sim.world.SimulationResult` lazily.

        Each frame is rendered on demand with a per-frame-seeded noise
        stream, so random access stays deterministic without holding the
        whole clip in memory.  ``camera`` (a
        :class:`~repro.sim.camera.CameraModel`) shoots the scenario
        through a projective camera instead of the identity view.
        """
        from repro.sim.render import Renderer

        base = Renderer(result, noise_sigma=0.0, flicker_sigma=0.0,
                        camera=camera,
                        illumination_drift=illumination_drift)

        sigma = np.asarray(noise_sigma, dtype=float)

        def get(i: int) -> np.ndarray:
            rng = np.random.default_rng((render_seed, i))
            img = base.clean_frame(i)
            if np.any(sigma > 0):
                img += rng.normal(0.0, 1.0, size=img.shape) * sigma
            return np.clip(img, 0, 255).astype(np.uint8)

        metadata = dict(result.metadata)
        metadata.setdefault("width", result.width)
        metadata.setdefault("height", result.height)
        if camera is not None:
            metadata["camera_matrix"] = camera.matrix.tolist()
        return cls(result.name, result.n_frames, get, fps=fps,
                   metadata=metadata)

    def get(self, index: int) -> np.ndarray:
        """Return frame ``index`` as a uint8 array."""
        if not 0 <= index < self.n_frames:
            raise IndexError(
                f"frame {index} out of range [0, {self.n_frames})"
            )
        frame = np.asarray(self._getter(index))
        if frame.ndim != 2:
            raise PipelineError(
                f"frame {index} of clip {self.clip_id!r} is not grayscale "
                f"2-D (shape {frame.shape})"
            )
        if self._shape is None:
            self._shape = frame.shape
        elif frame.shape != self._shape:
            raise PipelineError(
                f"frame {index} shape {frame.shape} differs from earlier "
                f"frames {self._shape}"
            )
        return frame

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width) of the frames."""
        if self._shape is None:
            self.get(0)
        assert self._shape is not None
        return self._shape

    def __len__(self) -> int:
        return self.n_frames

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(self.n_frames):
            yield self.get(i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VideoClip(id={self.clip_id!r}, n_frames={self.n_frames}, "
                f"fps={self.fps})")
