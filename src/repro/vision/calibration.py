"""Camera calibration and trajectory normalization.

The paper's closing discussion: retrieval is performed per camera because
clips "taken at different locations with different camera parameters"
would need normalization first.  This module supplies that step:

* :func:`estimate_homography` — DLT estimation of the road-plane -> image
  homography from >= 4 point correspondences (e.g. lane markings with
  known geometry), so a camera need not be known a priori.
* :class:`PlaneNormalizedTrack` — a track adapter that back-projects an
  image-plane track onto the road plane, making features (velocities,
  distances, angles) comparable across cameras.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.camera import CameraModel

__all__ = ["estimate_homography", "PlaneNormalizedTrack", "normalize_tracks"]


def estimate_homography(world_points: np.ndarray,
                        image_points: np.ndarray) -> CameraModel:
    """Direct Linear Transform: fit H with image ~ H [X, Y, 1].

    Needs at least 4 non-degenerate correspondences.  Points are Hartley-
    normalized (centroid at origin, mean distance sqrt(2)) for numerical
    stability before the SVD solve.
    """
    world = np.atleast_2d(np.asarray(world_points, dtype=float))
    image = np.atleast_2d(np.asarray(image_points, dtype=float))
    if world.shape != image.shape or world.shape[1] != 2:
        raise ConfigurationError(
            f"correspondences must be two equal (n, 2) arrays, got "
            f"{world.shape} and {image.shape}"
        )
    if len(world) < 4:
        raise ConfigurationError(
            f"need >= 4 correspondences, got {len(world)}"
        )

    def hartley(pts):
        centroid = pts.mean(axis=0)
        centered = pts - centroid
        mean_dist = np.mean(np.linalg.norm(centered, axis=1))
        scale = np.sqrt(2.0) / max(mean_dist, 1e-12)
        t = np.array([
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ])
        return (centered * scale), t

    wn, tw = hartley(world)
    im, ti = hartley(image)

    rows = []
    for (x, y), (u, v) in zip(wn, im):
        rows.append([-x, -y, -1, 0, 0, 0, u * x, u * y, u])
        rows.append([0, 0, 0, -x, -y, -1, v * x, v * y, v])
    a = np.asarray(rows)
    _, singular, vt = np.linalg.svd(a)
    if singular[-2] < 1e-10:
        raise ConfigurationError(
            "degenerate correspondences (collinear points?)"
        )
    h_normalized = vt[-1].reshape(3, 3)
    h = np.linalg.inv(ti) @ h_normalized @ tw
    return CameraModel(h)


class PlaneNormalizedTrack:
    """Track adapter whose positions live on the road plane.

    Wraps any object with the :class:`~repro.tracking.track.Track`
    reading interface and back-projects every position through the
    camera's inverse homography.  Satisfies the interface the feature
    extractor needs (``track_id``, ``first_frame``, ``last_frame``,
    ``position_at``), so it drops straight into
    :func:`repro.events.features.extract_series`.
    """

    def __init__(self, track, camera: CameraModel) -> None:
        self._track = track
        self.camera = camera
        self.track_id = track.track_id

    @property
    def first_frame(self) -> int:
        return self._track.first_frame

    @property
    def last_frame(self) -> int:
        return self._track.last_frame

    def __len__(self) -> int:
        return len(self._track)

    def covers(self, frame: int) -> bool:
        return self._track.covers(frame)

    def position_at(self, frame: int) -> np.ndarray:
        image_pos = self._track.position_at(frame)
        return self.camera.unproject([image_pos])[0]

    def frame_array(self) -> np.ndarray:
        return self._track.frame_array()

    def point_array(self) -> np.ndarray:
        return self.camera.unproject(self._track.point_array())


def normalize_tracks(tracks, camera: CameraModel) -> list[PlaneNormalizedTrack]:
    """Back-project a batch of image-plane tracks onto the road plane."""
    return [PlaneNormalizedTrack(t, camera) for t in tracks]
