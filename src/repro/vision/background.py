"""Background learning and subtraction (paper Section 3.1).

The paper enhances SPCPE with "a background learning and subtraction
method" to identify vehicles in traffic video.  This module implements the
standard recipe: bootstrap the background as a per-pixel median over an
initial frame sample, then keep it fresh with a selective running average
that only updates pixels currently classified as background (so stopped
vehicles bleed into the background slowly, moving ones never do).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, PipelineError
from repro.utils import check_in_range, check_positive

__all__ = ["BackgroundModel", "GaussianBackgroundModel"]


class BackgroundModel:
    """Median-bootstrapped, selectively-updated background estimator.

    Parameters
    ----------
    threshold:
        Absolute gray-level difference above which a pixel is foreground.
    learning_rate:
        Blend factor of the selective running average (0 freezes the
        background after bootstrap).
    bootstrap_frames:
        How many frames :meth:`learn` samples for the median bootstrap.
    """

    def __init__(self, *, threshold: float = 18.0, learning_rate: float = 0.02,
                 bootstrap_frames: int = 25) -> None:
        check_positive("threshold", threshold)
        check_in_range("learning_rate", learning_rate, 0.0, 1.0)
        check_positive("bootstrap_frames", bootstrap_frames)
        self.threshold = float(threshold)
        self.learning_rate = float(learning_rate)
        self.bootstrap_frames = int(bootstrap_frames)
        self.background: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.background is not None

    def learn(self, clip) -> "BackgroundModel":
        """Bootstrap the background from a clip (or any indexable frames).

        Takes a uniform sample of ``bootstrap_frames`` frames and uses the
        per-pixel median, which is robust to vehicles passing through as
        long as no pixel is occupied in more than half the sample.
        """
        n = len(clip)
        if n == 0:
            raise PipelineError("cannot learn a background from 0 frames")
        read = clip.get if hasattr(clip, "get") else clip.__getitem__
        take = min(self.bootstrap_frames, n)
        indices = np.linspace(0, n - 1, take).round().astype(int)
        sample = np.stack(
            [np.asarray(read(int(i)), dtype=np.float32) for i in indices]
        )
        self.background = np.median(sample, axis=0)
        return self

    def set_background(self, background: np.ndarray) -> "BackgroundModel":
        """Install an explicit background image (e.g. from a prior run)."""
        self.background = np.asarray(background, dtype=np.float32).copy()
        return self

    def subtract(self, frame: np.ndarray) -> np.ndarray:
        """Foreground mask of ``frame`` (bool array, True = foreground)."""
        if self.background is None:
            raise NotFittedError("call learn() or set_background() first")
        frame = np.asarray(frame, dtype=np.float32)
        if frame.shape != self.background.shape:
            raise PipelineError(
                f"frame shape {frame.shape} does not match background "
                f"{self.background.shape}"
            )
        return np.abs(frame - self.background) > self.threshold

    def update(self, frame: np.ndarray, foreground: np.ndarray) -> None:
        """Selectively blend ``frame`` into the background.

        Only background pixels are updated, so moving vehicles never
        contaminate the model; a vehicle must stand still for roughly
        ``3 / learning_rate`` frames before it starts to disappear.
        """
        if self.background is None:
            raise NotFittedError("call learn() or set_background() first")
        if self.learning_rate == 0.0:
            return
        frame = np.asarray(frame, dtype=np.float32)
        rate = self.learning_rate
        blend = (1.0 - rate) * self.background + rate * frame
        self.background = np.where(foreground, self.background, blend)

    def apply(self, frame: np.ndarray, *, update: bool = True) -> np.ndarray:
        """Subtract and (optionally) update in one call; returns the mask."""
        mask = self.subtract(frame)
        if update:
            self.update(frame, mask)
        return mask


class GaussianBackgroundModel:
    """Per-pixel Gaussian background: adaptive, noise-aware thresholds.

    Instead of one global gray-level threshold, each pixel keeps a
    running mean and variance; a pixel is foreground when it deviates by
    more than ``k_sigma`` standard deviations.  Pixels under camera noise
    or flicker get wider tolerances automatically, quiet pixels stay
    sensitive — the classic single-Gaussian adaptive model.

    Shares the :class:`BackgroundModel` interface (``learn`` /
    ``subtract`` / ``update`` / ``apply`` / ``is_fitted``), so it drops
    into :class:`~repro.vision.pipeline.SegmentationPipeline` unchanged.
    """

    #: Lower bound on the per-pixel std, in gray levels: keeps freshly
    #: bootstrapped pixels from flagging quantization noise.
    MIN_STD = 1.5

    def __init__(self, *, k_sigma: float = 4.0, learning_rate: float = 0.02,
                 bootstrap_frames: int = 25) -> None:
        check_positive("k_sigma", k_sigma)
        check_in_range("learning_rate", learning_rate, 0.0, 1.0)
        check_positive("bootstrap_frames", bootstrap_frames)
        self.k_sigma = float(k_sigma)
        self.learning_rate = float(learning_rate)
        self.bootstrap_frames = int(bootstrap_frames)
        self.mean: np.ndarray | None = None
        self.var: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    @property
    def background(self) -> np.ndarray | None:
        """Alias for the mean image (interface parity)."""
        return self.mean

    def learn(self, clip) -> "GaussianBackgroundModel":
        """Bootstrap mean and variance from a uniform frame sample."""
        n = len(clip)
        if n == 0:
            raise PipelineError("cannot learn a background from 0 frames")
        read = clip.get if hasattr(clip, "get") else clip.__getitem__
        take = min(self.bootstrap_frames, n)
        indices = np.linspace(0, n - 1, take).round().astype(int)
        sample = np.stack(
            [np.asarray(read(int(i)), dtype=np.float32) for i in indices]
        )
        # Median/MAD estimators: robust to vehicles inside the sample.
        self.mean = np.median(sample, axis=0)
        mad = np.median(np.abs(sample - self.mean), axis=0)
        std = np.maximum(1.4826 * mad, self.MIN_STD)
        self.var = (std * std).astype(np.float32)
        return self

    def _check(self, frame: np.ndarray) -> np.ndarray:
        if self.mean is None or self.var is None:
            raise NotFittedError("call learn() first")
        frame = np.asarray(frame, dtype=np.float32)
        if frame.shape != self.mean.shape:
            raise PipelineError(
                f"frame shape {frame.shape} does not match background "
                f"{self.mean.shape}"
            )
        return frame

    def subtract(self, frame: np.ndarray) -> np.ndarray:
        """Foreground where |I - mean| > k_sigma * std."""
        frame = self._check(frame)
        dev2 = (frame - self.mean) ** 2
        return dev2 > (self.k_sigma ** 2) * self.var

    def update(self, frame: np.ndarray, foreground: np.ndarray) -> None:
        """Selective EW update of mean and variance (background only)."""
        frame = self._check(frame)
        if self.learning_rate == 0.0:
            return
        rate = self.learning_rate
        diff = frame - self.mean
        new_mean = self.mean + rate * diff
        new_var = (1.0 - rate) * (self.var + rate * diff * diff)
        keep = foreground
        self.mean = np.where(keep, self.mean, new_mean)
        self.var = np.maximum(
            np.where(keep, self.var, new_var), self.MIN_STD ** 2)

    def apply(self, frame: np.ndarray, *, update: bool = True) -> np.ndarray:
        mask = self.subtract(frame)
        if update:
            self.update(frame, mask)
        return mask
