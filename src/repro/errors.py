"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class NotFittedError(ReproError):
    """A model was used before :meth:`fit` was called."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class StorageError(ReproError):
    """A database/storage backend failed or was asked for a missing record."""


class IntegrityError(StorageError):
    """Stored bytes do not match their recorded checksum or size.

    Raised by :class:`~repro.pipeline.store.DiskArtifactStore` when a
    blob fails verification; the offending files are quarantined first,
    so catching this error and recomputing is always safe.
    """


class PipelineError(ReproError):
    """A video-processing pipeline stage received unusable input."""


class RetryableError(ReproError):
    """A transient failure: retrying the same operation may succeed.

    Raise (or wrap an external error in) this class to opt an operation
    into a :class:`~repro.reliability.RetryPolicy`'s retry loop.
    """


class TaskTimeoutError(ReproError):
    """A batch task exceeded its wall-clock budget and was abandoned."""
