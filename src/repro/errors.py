"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class NotFittedError(ReproError):
    """A model was used before :meth:`fit` was called."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class StorageError(ReproError):
    """A database/storage backend failed or was asked for a missing record."""


class IntegrityError(StorageError):
    """Stored bytes do not match their recorded checksum or size.

    Raised by :class:`~repro.pipeline.store.DiskArtifactStore` when a
    blob fails verification; the offending files are quarantined first,
    so catching this error and recomputing is always safe.
    """


class ShardUnavailableError(StorageError):
    """A corpus shard's backing storage failed and it is quarantined.

    Raised by :class:`~repro.core.sharded.ShardedCorpus` when a shard's
    loader (or a mid-session refresh) hits a
    :class:`StorageError`/:class:`IntegrityError`/``OSError``.  The
    shard enters a backoff-and-reprobe schedule; under the engine's
    ``degraded`` policy the round proceeds without it and the skipped
    coverage is reported explicitly, under ``strict`` this error
    propagates to the caller.
    """

    def __init__(self, clip_id: str, reason: str, *,
                 failures: int = 1, retry_in_s: float = 0.0) -> None:
        super().__init__(
            f"shard {clip_id!r} unavailable ({reason}); "
            f"reprobe in {retry_in_s:.2f}s after {failures} failure(s)")
        self.clip_id = clip_id
        self.reason = reason
        self.failures = failures
        self.retry_in_s = retry_in_s


class PipelineError(ReproError):
    """A video-processing pipeline stage received unusable input."""


class RetryableError(ReproError):
    """A transient failure: retrying the same operation may succeed.

    Raise (or wrap an external error in) this class to opt an operation
    into a :class:`~repro.reliability.RetryPolicy`'s retry loop.
    """


class TaskTimeoutError(ReproError):
    """A batch task exceeded its wall-clock budget and was abandoned."""


class DatabaseBusyError(StorageError, RetryableError):
    """The SQLite catalog was locked/busy beyond its ``busy_timeout``.

    WAL mode plus ``PRAGMA busy_timeout`` absorb ordinary reader/writer
    contention inside SQLite itself; this error surfaces only when a
    lock outlived the timeout (or a fault injector simulated one).  It
    is transient by nature — the :class:`RetryableError` base opts it
    into :meth:`~repro.reliability.RetryPolicy.is_retryable` loops.
    """


class SessionConflictError(StorageError):
    """Another writer committed a feedback round for this session first.

    Raised by :meth:`~repro.db.database.VideoDatabase.add_labels` when
    the optimistic ``expect_round`` guard finds that the stored label
    history has already advanced past the round the caller was about to
    persist — two workers resumed the same session id and raced.  The
    losing session must replay the winning history (see
    :meth:`~repro.db.query._QuerySessionBase.resync`) before feeding
    again; retrying the same round verbatim can never succeed, which is
    why this is *not* a :class:`RetryableError`.
    """

    def __init__(self, session_id: str, *, expected_round: int,
                 stored_next_round: int) -> None:
        super().__init__(
            f"session {session_id!r}: feedback round {expected_round} "
            f"was already committed by another worker (stored history "
            f"expects round {stored_next_round} next); resync and retry")
        self.session_id = session_id
        self.expected_round = expected_round
        self.stored_next_round = stored_next_round
