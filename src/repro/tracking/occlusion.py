"""Blob-merge detection: when two tracked vehicles share one detection.

Two vehicles that touch (a collision!) or occlude each other segment as
a single foreground blob; the tracker gives the blob to one track and
the other coasts or dies.  This module finds those moments: a
:class:`MergeEvent` marks a frame where two or more tracks' (predicted)
positions fall inside one detection's bounding box.  Merge intervals are
a useful accident cue and a tracking-quality diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tracking.track import Track
from repro.utils import check_positive

__all__ = ["MergeEvent", "MergeInterval", "detect_merge_events",
           "merge_intervals"]


@dataclass(frozen=True)
class MergeEvent:
    """One frame in which several tracks share one detection."""

    frame: int
    track_ids: tuple[int, ...]
    bbox: tuple[int, int, int, int]


@dataclass(frozen=True)
class MergeInterval:
    """A maximal run of consecutive merge events for one track group."""

    track_ids: tuple[int, ...]
    frame_lo: int
    frame_hi: int

    @property
    def duration(self) -> int:
        return self.frame_hi - self.frame_lo + 1


def _position_near(track: Track, frame: int, coast: int) -> np.ndarray | None:
    """Track position at ``frame``, coasting a little past its end."""
    if track.covers(frame):
        return track.position_at(frame)
    if 0 < frame - track.last_frame <= coast:
        return track.predict(frame)
    if 0 < track.first_frame - frame <= coast:
        return track.point_array()[0]
    return None


def detect_merge_events(
    tracks: list[Track],
    detections_per_frame,
    *,
    margin: float = 2.0,
    coast: int = 5,
) -> list[MergeEvent]:
    """Find frames where >= 2 tracks fall inside one detection's MBR.

    ``margin`` expands each bounding box (segmentation is conservative at
    blob edges); ``coast`` lets a just-ended track still claim frames via
    constant-velocity prediction, since merging is exactly what kills
    tracks.
    """
    check_positive("coast", coast)
    events: list[MergeEvent] = []
    for frame, detections in enumerate(detections_per_frame):
        if not detections:
            continue
        positions = []
        for track in tracks:
            pos = _position_near(track, frame, coast)
            if pos is not None:
                positions.append((track.track_id, pos))
        if len(positions) < 2:
            continue
        for det in detections:
            blob = det.blob
            inside = tuple(sorted(
                track_id for track_id, (x, y) in positions
                if blob.x0 - margin <= x <= blob.x1 + margin
                and blob.y0 - margin <= y <= blob.y1 + margin
            ))
            if len(inside) >= 2:
                events.append(MergeEvent(frame=frame, track_ids=inside,
                                         bbox=blob.bbox))
    return events


def merge_intervals(events: list[MergeEvent],
                    *, max_gap: int = 2) -> list[MergeInterval]:
    """Group per-frame merge events into intervals per track group."""
    by_group: dict[tuple[int, ...], list[int]] = {}
    for event in events:
        by_group.setdefault(event.track_ids, []).append(event.frame)
    intervals: list[MergeInterval] = []
    for group, frames in by_group.items():
        frames = sorted(set(frames))
        start = prev = frames[0]
        for frame in frames[1:]:
            if frame - prev > max_gap:
                intervals.append(MergeInterval(group, start, prev))
                start = frame
            prev = frame
        intervals.append(MergeInterval(group, start, prev))
    return sorted(intervals, key=lambda iv: (iv.frame_lo, iv.track_ids))
