"""Tracking substrate: per-frame detections -> per-vehicle tracks.

Implements the "tracking information ... used to determine the trails of
vehicle objects" stage of the paper (Section 3.1): greedy-optimal data
association of blob centroids across frames with constant-velocity
prediction, track birth on unmatched detections and death after a run of
misses.
"""

from repro.tracking.track import Track
from repro.tracking.tracker import CentroidTracker
from repro.tracking.smoothing import smooth_points
from repro.tracking.stitching import stitch_tracks
from repro.tracking.occlusion import (
    MergeEvent,
    MergeInterval,
    detect_merge_events,
    merge_intervals,
)

__all__ = [
    "Track",
    "CentroidTracker",
    "smooth_points",
    "stitch_tracks",
    "MergeEvent",
    "MergeInterval",
    "detect_merge_events",
    "merge_intervals",
]
