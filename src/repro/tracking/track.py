"""Track data type: one vehicle's observed trail through a clip."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.vision.blobs import Blob

__all__ = ["Track"]


class Track:
    """An ordered sequence of (frame, centroid, MBR) observations.

    Frames are strictly increasing but need not be contiguous (the tracker
    coasts through short occlusions).  :meth:`position_at` interpolates
    linearly inside gaps, which is what the event-feature sampler uses.
    """

    def __init__(self, track_id: int) -> None:
        self.track_id = int(track_id)
        self.frames: list[int] = []
        self.points: list[tuple[float, float]] = []
        self.bboxes: list[tuple[int, int, int, int]] = []
        self.areas: list[int] = []

    def add(self, frame: int, blob: Blob) -> None:
        """Append one observation (frames must arrive in order)."""
        if self.frames and frame <= self.frames[-1]:
            raise ConfigurationError(
                f"track {self.track_id}: frame {frame} not after "
                f"{self.frames[-1]}"
            )
        self.frames.append(int(frame))
        self.points.append((float(blob.cx), float(blob.cy)))
        self.bboxes.append(blob.bbox)
        self.areas.append(blob.area)

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def first_frame(self) -> int:
        return self.frames[0]

    @property
    def last_frame(self) -> int:
        return self.frames[-1]

    def frame_array(self) -> np.ndarray:
        return np.asarray(self.frames, dtype=int)

    def point_array(self) -> np.ndarray:
        return np.asarray(self.points, dtype=float).reshape(-1, 2)

    def velocity(self, lookback: int = 3) -> np.ndarray:
        """Mean per-frame displacement over the last ``lookback`` steps."""
        if len(self) < 2:
            return np.zeros(2)
        take = min(lookback + 1, len(self))
        pts = self.point_array()[-take:]
        frames = self.frame_array()[-take:]
        span = frames[-1] - frames[0]
        if span <= 0:
            return np.zeros(2)
        return (pts[-1] - pts[0]) / span

    def predict(self, frame: int) -> np.ndarray:
        """Constant-velocity position prediction for ``frame``."""
        if not self.frames:
            raise ConfigurationError("cannot predict from an empty track")
        last = self.point_array()[-1]
        return last + self.velocity() * (frame - self.last_frame)

    def covers(self, frame: int) -> bool:
        """True if ``frame`` lies inside the track's observed span."""
        return bool(self.frames) and self.first_frame <= frame <= self.last_frame

    def position_at(self, frame: int) -> np.ndarray:
        """Centroid at ``frame``, interpolating linearly inside gaps."""
        if not self.covers(frame):
            raise ConfigurationError(
                f"frame {frame} outside track span "
                f"[{self.first_frame}, {self.last_frame}]"
            )
        frames = self.frame_array()
        pts = self.point_array()
        idx = int(np.searchsorted(frames, frame))
        if idx < len(frames) and frames[idx] == frame:
            return pts[idx]
        lo, hi = idx - 1, idx
        t = (frame - frames[lo]) / (frames[hi] - frames[lo])
        return pts[lo] * (1.0 - t) + pts[hi] * t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.frames:
            return f"Track(id={self.track_id}, empty)"
        return (f"Track(id={self.track_id}, frames={self.first_frame}.."
                f"{self.last_frame}, n={len(self)})")
