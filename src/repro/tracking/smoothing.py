"""Light positional smoothing to damp segmentation jitter."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["smooth_points"]


def smooth_points(points: np.ndarray, window: int = 3) -> np.ndarray:
    """Centered moving average over an (n, 2) point sequence.

    The window shrinks symmetrically near the ends so the output has the
    same length and no phase lag.  ``window`` must be odd.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if window < 1 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 1, got {window}")
    if window == 1 or len(points) <= 2:
        return points.copy()
    half = window // 2
    out = np.empty_like(points)
    for i in range(len(points)):
        reach = min(half, i, len(points) - 1 - i)
        out[i] = points[i - reach : i + reach + 1].mean(axis=0)
    return out
