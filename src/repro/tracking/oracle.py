"""Oracle tracks: build Track objects straight from simulator truth.

Lets the learning stack be exercised without the vision front end (unit
tests, fast ablations), optionally with observation noise that mimics
segmentation jitter.  The full benchmarks use the real vision pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.sim.world import SimulationResult
from repro.tracking.track import Track
from repro.utils import as_rng
from repro.vision.blobs import Blob

__all__ = ["tracks_from_simulation"]


def tracks_from_simulation(
    result: SimulationResult,
    *,
    jitter: float = 0.0,
    min_track_length: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> list[Track]:
    """One Track per simulated vehicle, with optional centroid jitter."""
    rng = as_rng(seed)
    tracks: list[Track] = []
    for vid in result.vehicle_ids():
        rows = result.trajectory_of(vid)
        if len(rows) < min_track_length:
            continue
        track = Track(vid)
        for frame, x, y in rows:
            if jitter > 0:
                x += rng.normal(0.0, jitter)
                y += rng.normal(0.0, jitter)
            blob = Blob(cx=float(x), cy=float(y),
                        x0=int(x) - 7, y0=int(y) - 4,
                        x1=int(x) + 7, y1=int(y) + 4,
                        area=98, mean_intensity=200.0)
            track.add(int(frame), blob)
        tracks.append(track)
    return tracks
