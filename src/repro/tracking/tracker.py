"""Centroid tracker: Hungarian data association with velocity prediction."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import ConfigurationError
from repro.tracking.track import Track
from repro.vision.pipeline import Detection

__all__ = ["CentroidTracker"]


class CentroidTracker:
    """Associate per-frame detections into tracks.

    Each frame, active tracks predict their centroid under a
    constant-velocity model; the predicted-to-detected distance matrix is
    solved optimally (Hungarian algorithm), matches beyond
    ``max_match_dist`` are rejected, unmatched detections open new tracks
    and tracks unmatched for more than ``max_misses`` consecutive frames
    are closed.  Tracks shorter than ``min_track_length`` observations are
    dropped as noise.
    """

    def __init__(
        self,
        *,
        max_match_dist: float = 28.0,
        max_misses: int = 4,
        min_track_length: int = 5,
    ) -> None:
        if max_match_dist <= 0:
            raise ConfigurationError("max_match_dist must be > 0")
        if max_misses < 0:
            raise ConfigurationError("max_misses must be >= 0")
        if min_track_length < 1:
            raise ConfigurationError("min_track_length must be >= 1")
        self.max_match_dist = float(max_match_dist)
        self.max_misses = int(max_misses)
        self.min_track_length = int(min_track_length)
        self._next_id = 0
        self._active: list[tuple[Track, int]] = []  # (track, misses)
        self._finished: list[Track] = []

    def _new_track(self, frame: int, detection: Detection) -> None:
        track = Track(self._next_id)
        self._next_id += 1
        track.add(frame, detection.blob)
        self._active.append((track, 0))

    def update(self, frame: int, detections: Sequence[Detection]) -> None:
        """Advance one frame of association."""
        if not self._active:
            for det in detections:
                self._new_track(frame, det)
            return

        tracks = [t for t, _ in self._active]
        misses = [m for _, m in self._active]
        matched_tracks: set[int] = set()
        matched_dets: set[int] = set()

        if detections:
            predicted = np.stack([t.predict(frame) for t in tracks])
            observed = np.stack([d.centroid for d in detections])
            cost = np.linalg.norm(
                predicted[:, None, :] - observed[None, :, :], axis=2)
            rows, cols = linear_sum_assignment(cost)
            for r, c in zip(rows, cols):
                if cost[r, c] <= self.max_match_dist:
                    tracks[r].add(frame, detections[c].blob)
                    matched_tracks.add(r)
                    matched_dets.add(c)

        next_active: list[tuple[Track, int]] = []
        for i, track in enumerate(tracks):
            if i in matched_tracks:
                next_active.append((track, 0))
            elif misses[i] + 1 > self.max_misses:
                self._retire(track)
            else:
                next_active.append((track, misses[i] + 1))
        self._active = next_active

        for c, det in enumerate(detections):
            if c not in matched_dets:
                self._new_track(frame, det)

    def _retire(self, track: Track) -> None:
        if len(track) >= self.min_track_length:
            self._finished.append(track)

    @property
    def open_tracks(self) -> list[Track]:
        """Tracks still eligible for matches (read-only view for the
        streaming frontier — do not mutate)."""
        return [t for t, _ in self._active]

    @property
    def finished_tracks(self) -> list[Track]:
        """Retired tracks that passed the ``min_track_length`` gate, in
        retirement order (``finish()`` returns them sorted by id)."""
        return list(self._finished)

    def finish(self) -> list[Track]:
        """Close all active tracks and return every kept track."""
        for track, _ in self._active:
            self._retire(track)
        self._active = []
        return sorted(self._finished, key=lambda t: t.track_id)

    def track(self, detections_per_frame:
              Sequence[Sequence[Detection]]) -> list[Track]:
        """Convenience: run :meth:`update` over a whole clip and finish."""
        for frame, dets in enumerate(detections_per_frame):
            self.update(frame, dets)
        return self.finish()
