"""Track stitching: re-join tracks split by occlusion or dropouts.

A static occluder (pole, gantry), a long detector dropout or a merge of
two blobs can end a track mid-scene and start a new one moments later.
:func:`stitch_tracks` links such fragments when the kinematics agree:
the earlier fragment's constant-velocity prediction lands near the later
fragment's start, and the headings are compatible.  Fragments are joined
greedily, closest prediction first, each fragment used at most once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.tracking.track import Track
from repro.utils import check_positive
from repro.vision.blobs import Blob

__all__ = ["stitch_tracks"]


def _heading_compatible(tail: Track, head: Track,
                        min_cos: float) -> bool:
    """True when the two fragments travel in compatible directions."""
    v_tail = tail.velocity()
    v_head = head.velocity()
    speed_tail = float(np.hypot(*v_tail))
    speed_head = float(np.hypot(*v_head))
    if speed_tail < 0.3 or speed_head < 0.3:
        return True  # slow fragments: direction is noise, allow
    cos = float(v_tail @ v_head) / (speed_tail * speed_head)
    return cos >= min_cos


def _join(tail: Track, head: Track) -> Track:
    """Concatenate two fragments, keeping the earlier track's identity."""
    joined = Track(tail.track_id)
    for src in (tail, head):
        for frame, (x, y), bbox, area in zip(src.frames, src.points,
                                             src.bboxes, src.areas):
            blob = Blob(cx=x, cy=y, x0=bbox[0], y0=bbox[1], x1=bbox[2],
                        y1=bbox[3], area=area, mean_intensity=float("nan"))
            joined.add(frame, blob)
    return joined


def stitch_tracks(
    tracks: list[Track],
    *,
    max_gap: int = 15,
    max_dist: float = 25.0,
    min_cos: float = 0.5,
) -> list[Track]:
    """Join track fragments across short gaps.

    Parameters
    ----------
    tracks:
        Tracker output (fragments included).
    max_gap:
        Largest frame gap (exclusive of endpoints) bridged.
    max_dist:
        Largest distance between the tail's constant-velocity prediction
        and the head's first observation.
    min_cos:
        Minimum cosine between the fragments' velocity directions (only
        enforced when both fragments are actually moving).

    Stitching repeats until no more joins apply, so chains A-B-C collapse
    into one track.  Output is sorted by track id.
    """
    check_positive("max_gap", max_gap)
    check_positive("max_dist", max_dist)
    if not -1.0 <= min_cos <= 1.0:
        raise ConfigurationError(
            f"min_cos must be in [-1, 1], got {min_cos}"
        )

    pool = list(tracks)
    changed = True
    while changed:
        changed = False
        pool.sort(key=lambda t: (t.first_frame, t.track_id))
        candidates: list[tuple[float, int, int]] = []
        for i, tail in enumerate(pool):
            for j, head in enumerate(pool):
                if i == j:
                    continue
                gap = head.first_frame - tail.last_frame
                if not 0 < gap <= max_gap:
                    continue
                predicted = tail.predict(head.first_frame)
                dist = float(np.hypot(*(predicted
                                        - head.point_array()[0])))
                if dist > max_dist:
                    continue
                if not _heading_compatible(tail, head, min_cos):
                    continue
                candidates.append((dist, i, j))
        used: set[int] = set()
        joins: list[tuple[int, int]] = []
        for dist, i, j in sorted(candidates):
            if i in used or j in used:
                continue
            used.update((i, j))
            joins.append((i, j))
        if joins:
            changed = True
            joined = {i: _join(pool[i], pool[j]) for i, j in joins}
            consumed = {j for _, j in joins}
            pool = [
                joined.get(k, track)
                for k, track in enumerate(pool)
                if k not in consumed
            ]
    return sorted(pool, key=lambda t: t.track_id)
