"""repro: reproduction of "A Multiple Instance Learning Framework for
Incident Retrieval in Transportation Surveillance Video Databases"
(Chen, Zhang & Chen, ICDE 2007 Workshops).

Quick tour
----------
>>> from repro import (tunnel, build_artifacts, MILRetrievalEngine,
...                    OracleUser, RetrievalSession)
>>> sim = tunnel(n_frames=700, seed=3, spawn_interval=(50.0, 80.0),
...              n_wall_crashes=2, n_sudden_stops=2)
>>> artifacts = build_artifacts(sim, mode="oracle")
>>> engine = MILRetrievalEngine(artifacts.dataset)
>>> session = RetrievalSession(engine, OracleUser(artifacts.ground_truth),
...                            top_k=10)
>>> accuracies = [r.accuracy() for r in session.run(3)]

Subpackages
-----------
``repro.sim``
    Synthetic traffic world + renderer (substitute for the paper's clips).
``repro.vision``
    Background learning/subtraction, SPCPE segmentation, blob extraction,
    PCA vehicle classification.
``repro.tracking``
    Multi-object data association into vehicle tracks.
``repro.trajectory``
    Least-squares polynomial trajectory modeling (paper Eq. 1-2).
``repro.events``
    Event models, sampling-point features, sliding-window VS extraction.
``repro.svm``
    From-scratch one-class SVM (Schoelkopf nu-OCSVM, SMO solver).
``repro.core``
    The paper's contribution: MIL + relevance-feedback retrieval.
``repro.db``
    Surveillance video database layer (catalog, storage, queries).
``repro.eval``
    Metrics, the 5-round RF protocol, and experiment runners.
"""

__version__ = "1.0.0"

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    NotFittedError,
    PipelineError,
    ReproError,
    StorageError,
)

# Convenience re-exports of the most used entry points.
from repro.sim import GroundTruth, Renderer, highway, intersection, tunnel
from repro.vision import SegmentationPipeline, VideoClip
from repro.tracking import CentroidTracker, Track
from repro.trajectory import PolynomialCurve, TrajectoryModel
from repro.events import (
    AccidentModel,
    SamplingConfig,
    build_dataset,
    event_model_for,
    extract_series,
)
from repro.svm import OneClassSVM
from repro.core import (
    Bag,
    Instance,
    MILDataset,
    MILRetrievalEngine,
    OracleUser,
    RetrievalSession,
    WeightedRFEngine,
)
from repro.db import SemanticQuerySession, VideoDatabase
from repro.eval import build_artifacts, figure8, figure9, run_protocol

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "ConvergenceError",
    "StorageError",
    "PipelineError",
    # sim
    "tunnel",
    "intersection",
    "highway",
    "Renderer",
    "GroundTruth",
    # vision / tracking / trajectory
    "VideoClip",
    "SegmentationPipeline",
    "CentroidTracker",
    "Track",
    "PolynomialCurve",
    "TrajectoryModel",
    # events
    "SamplingConfig",
    "extract_series",
    "build_dataset",
    "AccidentModel",
    "event_model_for",
    # svm
    "OneClassSVM",
    # core
    "Bag",
    "Instance",
    "MILDataset",
    "MILRetrievalEngine",
    "WeightedRFEngine",
    "OracleUser",
    "RetrievalSession",
    # db
    "VideoDatabase",
    "SemanticQuerySession",
    # eval
    "build_artifacts",
    "run_protocol",
    "figure8",
    "figure9",
]
