"""Multi-tenant retrieval service over the video database.

The paper's retrieval loop is inherently multi-user — "the training set
... is built up gradually with the help of the user's feedback", and
relevance is user-specific (Section 1) — so the natural deployment is a
long-running service many analysts query concurrently, not a
per-process library session.  This package provides that service with
zero new dependencies:

* :class:`~repro.service.core.RetrievalService` — the framework-
  agnostic core: session create / feed / results / explain routed from
  ``(method, path, body)`` to JSON responses, sessions persisted in the
  catalog (any worker can resume any session), one shared read-only
  :class:`~repro.core.sharded.ShardedCorpus` per ``(corpus, event)``
  via :class:`~repro.core.sharded.CorpusPool` so concurrent users
  amortize shard loads and Gram-cache kernel columns.
* :class:`~repro.service.http.RetrievalHTTPServer` — a stdlib
  ``asyncio`` HTTP/1.1 front end running in a background thread,
  dispatching request handling to a worker thread pool.

``repro serve`` (the CLI) wires the two together.
"""

from repro.service.core import RetrievalService
from repro.service.http import RetrievalHTTPServer

__all__ = ["RetrievalService", "RetrievalHTTPServer"]
