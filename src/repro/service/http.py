"""Stdlib asyncio HTTP/1.1 front end for the retrieval service.

One background thread runs an ``asyncio`` event loop whose
``start_server`` connections do nothing but frame HTTP — read a head,
read a ``Content-Length`` body, write a response — while the actual
request handling (:meth:`RetrievalService.handle`: SVM rounds, catalog
I/O) runs on a ``ThreadPoolExecutor`` so a slow round never stalls the
accept loop or other clients' framing.  Keep-alive is supported, so a
load driver (or the benchmark) can push many rounds down one
connection.

Client disconnects mid-response are swallowed and counted via the same
``obs.live.client_disconnects`` counter the hardened
:class:`~repro.obs.LiveMetricsServer` handler uses — a hung-up client
is the client's business, not a server error.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS

from repro.obs import count_client_disconnect, get_telemetry

__all__ = ["RetrievalHTTPServer"]

_MAX_BODY = 8 * 1024 * 1024


class _BadRequest(Exception):
    pass


def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]]:
    """``(method, target, version, headers)`` from one request head."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise _BadRequest("undecodable request head") from exc
    lines = text.split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise _BadRequest(f"malformed request line {lines[0]!r}") from exc
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise _BadRequest(f"unsupported version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


def _response(status: int, content_type: str, body: bytes, *,
              keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


class RetrievalHTTPServer:
    """Threaded-asyncio HTTP host for one :class:`RetrievalService`.

    ``port=0`` binds an ephemeral port (see :attr:`port`/:attr:`url`
    after :meth:`start`).  ``max_workers`` bounds concurrent in-flight
    requests — the service layer is thread-safe, so this is purely a
    throughput/memory knob.  Usable as a context manager.
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = 8) -> None:
        self.service = service
        self.host = host
        self.requested_port = int(port)
        self.max_workers = int(max_workers)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._bound_port = 0
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------ control
    def start(self) -> "RetrievalHTTPServer":
        if self._thread is not None:
            return self
        self._started.clear()
        self._startup_error = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-service")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("service event loop failed to start")
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self.stop()
            raise error
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            server = self._loop.run_until_complete(asyncio.start_server(
                self._client, self.host, self.requested_port))
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._bound_port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            server.close()
            self._loop.run_until_complete(server.wait_closed())
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    def stop(self) -> None:
        if self._thread is None:
            return
        assert self._loop is not None
        if not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self._thread = None
        self._loop = None
        self._pool = None
        self._bound_port = 0

    @property
    def port(self) -> int:
        return self._bound_port or self.requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "RetrievalHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # --------------------------------------------------------- connection
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client closed between requests
                except asyncio.LimitOverrunError:
                    writer.write(_response(
                        431, "text/plain", b"request head too large\n",
                        keep_alive=False))
                    await writer.drain()
                    return
                try:
                    method, target, version, headers = _parse_head(head)
                    length = int(headers.get("content-length", "0"))
                except (_BadRequest, ValueError) as exc:
                    writer.write(_response(
                        400, "text/plain", f"{exc}\n".encode(),
                        keep_alive=False))
                    await writer.drain()
                    return
                if length > _MAX_BODY:
                    writer.write(_response(
                        413, "text/plain", b"request body too large\n",
                        keep_alive=False))
                    await writer.drain()
                    return
                body = b""
                if length:
                    try:
                        body = await reader.readexactly(length)
                    except (asyncio.IncompleteReadError, ConnectionError):
                        return
                loop = asyncio.get_running_loop()
                status, ctype, payload = await loop.run_in_executor(
                    self._pool, self.service.handle, method, target, body)
                keep = (version == "HTTP/1.1"
                        and headers.get("connection", "").lower()
                        != "close")
                writer.write(_response(status, ctype, payload,
                                       keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (BrokenPipeError, ConnectionResetError):
            count_client_disconnect(get_telemetry())
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
