"""Framework-agnostic core of the multi-tenant retrieval service.

:class:`RetrievalService` owns the worker-side state — a thread-local
catalog facade, a refcounted pool of shared read-only corpora, and an
in-memory cache of live session objects — and routes
``(method, path, body)`` triples to JSON responses.  It knows nothing
about sockets; :mod:`repro.service.http` (or any other front end, or a
test calling :meth:`RetrievalService.handle` directly) supplies the
transport.

Session lifecycle
-----------------
``POST /sessions`` registers a durable :class:`~repro.db.SessionRecord`
in the catalog and materializes the session in this worker.  The
session *object* is a cache: any worker that receives a request for an
unknown session id reconstructs it from the record and the stored label
history (the library's normal resume path), so workers are
interchangeable.  Two workers feeding the same session race on the
optimistic round guard — the loser gets 409 with its session already
resynced onto the winning history.
"""

from __future__ import annotations

import json
import threading
import time
from urllib.parse import parse_qs

from repro.core.sharded import CorpusPool
from repro.db.database import ThreadLocalVideoDatabase
from repro.db.query import ENGINE_FACTORIES, MultiClipQuerySession, \
    sharded_corpus
from repro.db.schema import SessionRecord
from repro.errors import (
    ConfigurationError,
    DatabaseBusyError,
    ReproError,
    SessionConflictError,
    StorageError,
)
from repro.obs import get_telemetry, render_healthz, render_metrics
from repro.obs.slo import DEFAULT_SLOS

__all__ = ["RetrievalService"]

_JSON = "application/json"

#: Engine parameters a client may set per session (everything else in
#: ``params`` is rejected at the boundary — the payload is persisted and
#: replayed into :class:`MultiClipQuerySession` kwargs on every resume).
_ALLOWED_PARAMS = frozenset({
    "candidates_per_shard", "nominator", "index_cells", "nprobe",
    "failure_policy",
})


class _HTTPError(ReproError):
    """Internal: carry an HTTP status through the dispatch path."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _SessionEntry:
    """One resident session: the object plus its serialization lock."""

    __slots__ = ("lock", "session", "corpus_key", "last_used")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.session: MultiClipQuerySession | None = None
        self.corpus_key: str | None = None
        self.last_used = 0


def _json_body(status: int, doc: dict) -> tuple[int, str, bytes]:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return status, _JSON, body


class RetrievalService:
    """Many concurrent relevance-feedback sessions over one catalog.

    Parameters
    ----------
    db_path:
        File-backed catalog (WAL mode).  ``":memory:"`` is rejected —
        worker threads each open their own connection and would see
        separate empty databases.
    max_sessions:
        Soft cap on resident session objects per worker; beyond it the
        least-recently-used idle session is evicted (its durable record
        and label history survive, so it resumes transparently on next
        touch).
    default_top_k:
        ``top_k`` for sessions whose create payload doesn't set one.
    ledger:
        Whether sessions append per-round quality-ledger rows (the
        ``explain`` endpoint reads them back).
    """

    def __init__(self, db_path, *, max_sessions: int = 256,
                 default_top_k: int = 20, ledger: bool = True,
                 slos=DEFAULT_SLOS, busy_timeout_ms: int = 5000) -> None:
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        self.db = ThreadLocalVideoDatabase(
            db_path, busy_timeout_ms=busy_timeout_ms)
        self.pool = CorpusPool()
        self.max_sessions = int(max_sessions)
        self.default_top_k = int(default_top_k)
        self.ledger = bool(ledger)
        self.slos = tuple(slos)
        self._sessions: dict[str, _SessionEntry] = {}
        self._lock = threading.Lock()
        self._seq = 0

    # ------------------------------------------------------------ routing
    def handle(self, method: str, target: str,
               body: bytes | None = None) -> tuple[int, str, bytes]:
        """Serve one request; returns ``(status, content_type, body)``.

        Error taxonomy → status: bad input 400, unknown session or
        record 404, optimistic round conflict 409, catalog busy beyond
        its timeout 503, anything unexpected 500.  Every request is
        spanned and counted under a bounded route template.
        """
        obs = get_telemetry()
        path, _, query = target.partition("?")
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        route = self._route_template(method, path)
        t0 = time.perf_counter()
        status = 500
        try:
            with obs.span("service.request", route=route):
                status, ctype, payload = self._dispatch(
                    method, path, params, body)
        except _HTTPError as exc:
            status, ctype, payload = _json_body(
                exc.status, {"error": "bad_request" if exc.status == 400
                             else "not_found", "message": str(exc)})
        except SessionConflictError as exc:
            status, ctype, payload = _json_body(409, {
                "error": "session_conflict", "message": str(exc),
                "round": exc.stored_next_round})
        except ConfigurationError as exc:
            status, ctype, payload = _json_body(
                400, {"error": "bad_request", "message": str(exc)})
        except DatabaseBusyError as exc:
            status, ctype, payload = _json_body(
                503, {"error": "busy", "message": str(exc)})
        except StorageError as exc:
            # The routine storage failure at this boundary is a lookup
            # of something that isn't there (unknown session record,
            # missing dataset); surface it as 404 with the reason.
            status, ctype, payload = _json_body(
                404, {"error": "not_found", "message": str(exc)})
        except ReproError as exc:
            status, ctype, payload = _json_body(
                400, {"error": "bad_request", "message": str(exc)})
        except Exception as exc:  # noqa: BLE001 - service boundary
            obs.event("service.request_failed", level="error",
                      route=route, reason=f"{type(exc).__name__}: {exc}")
            status, ctype, payload = _json_body(
                500, {"error": "internal",
                      "message": f"{type(exc).__name__}: {exc}"})
        finally:
            wall_ms = (time.perf_counter() - t0) * 1000.0
            obs.counter("service.requests").inc(route=route,
                                                status=str(status))
            obs.histogram("service.request.latency_ms").observe(
                wall_ms, route=route)
        return status, ctype, payload

    @staticmethod
    def _route_template(method: str, path: str) -> str:
        """Collapse paths onto a bounded label set for metrics."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            return f"{method} /"
        if parts[0] in ("healthz", "metrics") and len(parts) == 1:
            return f"{method} /{parts[0]}"
        if parts[0] == "sessions":
            if len(parts) == 1:
                return f"{method} /sessions"
            if len(parts) == 2:
                return f"{method} /sessions/:id"
            if len(parts) == 3 and parts[2] in ("feed", "results",
                                                "explain"):
                return f"{method} /sessions/:id/{parts[2]}"
        return f"{method} other"

    def _dispatch(self, method: str, path: str, params: dict,
                  body: bytes | None) -> tuple[int, str, bytes]:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and not parts:
            return self._index()
        if method == "GET" and parts == ["healthz"]:
            return render_healthz(get_telemetry(), self.slos)
        if method == "GET" and parts == ["metrics"]:
            return render_metrics(get_telemetry())
        if parts and parts[0] == "sessions":
            if len(parts) == 1:
                if method == "POST":
                    return self._create(self._payload(body))
                if method == "GET":
                    return self._list_sessions()
            elif len(parts) == 2:
                if method == "GET":
                    return self._session_info(parts[1])
                if method == "DELETE":
                    return self._close(parts[1])
            elif len(parts) == 3:
                sid, op = parts[1], parts[2]
                if method == "POST" and op == "feed":
                    return self._feed(sid, self._payload(body))
                if method == "GET" and op == "results":
                    return self._results(sid, params)
                if method == "GET" and op == "explain":
                    return self._explain(sid, params)
        raise _HTTPError(404, f"no route for {method} {path}")

    @staticmethod
    def _payload(body: bytes | None) -> dict:
        if not body:
            return {}
        try:
            doc = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, f"request body is not JSON: {exc}") \
                from exc
        if not isinstance(doc, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return doc

    # ---------------------------------------------------------- endpoints
    def _index(self) -> tuple[int, str, bytes]:
        return _json_body(200, {
            "service": "repro-retrieval",
            "endpoints": [
                "POST /sessions", "GET /sessions",
                "GET /sessions/<id>", "DELETE /sessions/<id>",
                "POST /sessions/<id>/feed",
                "GET /sessions/<id>/results",
                "GET /sessions/<id>/explain",
                "GET /healthz", "GET /metrics",
            ],
        })

    @staticmethod
    def _validate_user(user: str) -> None:
        """The service's auth boundary for tenant identifiers.

        Mirrors the session-level check: the ledger key is
        ``user:corpus:event`` and the corpus id legitimately contains
        ``:``, so a ``:`` in the user field would let two tenants
        collide into one feedback history.
        """
        if not user or len(user) > 128 or ":" in user \
                or any(c.isspace() or not c.isprintable() for c in user):
            raise _HTTPError(
                400, f"invalid user id {user!r}: must be 1-128 printable "
                     f"characters with no whitespace and no ':'")

    def _create(self, payload: dict) -> tuple[int, str, bytes]:
        user = str(payload.get("user", "default"))
        self._validate_user(user)
        clips = payload.get("clips")
        if (not isinstance(clips, list) or not clips
                or not all(isinstance(c, str) and c for c in clips)):
            raise _HTTPError(
                400, "'clips' must be a non-empty list of clip ids")
        event = str(payload.get("event", "accident"))
        engine = str(payload.get("engine", "mil_ocsvm"))
        if engine not in ENGINE_FACTORIES:
            raise _HTTPError(
                400, f"unknown engine {engine!r}; available: "
                     f"{sorted(ENGINE_FACTORIES)}")
        extra = payload.get("params", {})
        if not isinstance(extra, dict):
            raise _HTTPError(400, "'params' must be a JSON object")
        unknown = sorted(set(extra) - _ALLOWED_PARAMS)
        if unknown:
            raise _HTTPError(
                400, f"unknown session params {unknown}; allowed: "
                     f"{sorted(_ALLOWED_PARAMS)}")
        corpus_id = "merged:" + "+".join(clips)
        record = SessionRecord(
            session_id=f"{user}:{corpus_id}:{event}", user_id=user,
            corpus_id=corpus_id, event_name=event,
            clip_ids=tuple(clips), engine=engine,
            top_k=int(payload.get("top_k", self.default_top_k)),
            params=dict(extra))
        entry, created = self._materialize(record)
        with entry.lock:
            self.db.register_session(record)
            session = entry.session
            return _json_body(201 if created else 200, {
                "session": record.session_id,
                "round": session.round_index,
                "resumed": session.round_index > 0,
                "clips": list(record.clip_ids),
                "event": record.event_name,
                "engine": record.engine,
                "top_k": record.top_k,
            })

    def _feed(self, sid: str, payload: dict) -> tuple[int, str, bytes]:
        raw = payload.get("labels")
        if not isinstance(raw, dict) or not raw:
            raise _HTTPError(
                400, "'labels' must be a non-empty object of "
                     "bag_id -> relevant")
        try:
            labels = {int(k): bool(v) for k, v in raw.items()}
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad label key: {exc}") from exc
        entry = self._resolve(sid)
        with entry.lock:
            session = entry.session
            try:
                session.feed(labels)
            except SessionConflictError as exc:
                # feed() already resynced the session onto the winning
                # history; tell the client which round to retry against.
                return _json_body(409, {
                    "error": "session_conflict", "message": str(exc),
                    "round": session.round_index})
            return _json_body(200, {"session": sid,
                                    "round": session.round_index})

    def _results(self, sid: str, params: dict) -> tuple[int, str, bytes]:
        entry = self._resolve(sid)
        vehicle_class = params.get("vehicle_class")
        top_k = int(params["top_k"]) if "top_k" in params else None
        with entry.lock:
            session = entry.session
            previous = session.top_k
            if top_k is not None:
                if top_k <= 0:
                    raise _HTTPError(400, "top_k must be positive")
                session.top_k = top_k
            try:
                ids = session.results(vehicle_class=vehicle_class)
            finally:
                session.top_k = previous
            coverage = session.last_coverage
            doc = {
                "session": sid,
                "round": session.round_index,
                "results": [{
                    "bag_id": b,
                    "clip_id": session.dataset.bag_by_id(b).clip_id,
                    "frame_lo": session.dataset.bag_by_id(b).frame_lo,
                    "frame_hi": session.dataset.bag_by_id(b).frame_hi,
                } for b in ids],
            }
            if coverage is not None:
                doc["coverage"] = coverage.summary()
                doc["degraded"] = coverage.degraded
            return _json_body(200, doc)

    def _explain(self, sid: str, params: dict) -> tuple[int, str, bytes]:
        entry = self._resolve(sid)
        with entry.lock:
            round_index = (int(params["round"])
                           if "round" in params else None)
            rows = self.db.query_rounds(session_id=sid,
                                        round_index=round_index)
        include_spans = params.get("spans") in ("1", "true")
        for row in rows:
            row.pop("profile", None)
            if not include_spans:
                row.pop("spans", None)
        return _json_body(200, {"session": sid, "rounds": rows})

    def _session_info(self, sid: str) -> tuple[int, str, bytes]:
        record = self.db.session_record(sid)
        with self._lock:
            entry = self._sessions.get(sid)
            active = entry is not None and entry.session is not None
        doc = {
            "session": record.session_id, "user": record.user_id,
            "corpus": record.corpus_id, "event": record.event_name,
            "clips": list(record.clip_ids), "engine": record.engine,
            "top_k": record.top_k, "params": record.params,
            "created_at": record.created_at,
            "last_seen_at": record.last_seen_at,
            "resident": active,
        }
        if active:
            doc["round"] = entry.session.round_index
        return _json_body(200, doc)

    def _list_sessions(self) -> tuple[int, str, bytes]:
        with self._lock:
            resident = {sid for sid, e in self._sessions.items()
                        if e.session is not None}
        return _json_body(200, {"sessions": [{
            "session": rec.session_id, "user": rec.user_id,
            "corpus": rec.corpus_id, "event": rec.event_name,
            "resident": rec.session_id in resident,
        } for rec in self.db.session_records()]})

    def _close(self, sid: str) -> tuple[int, str, bytes]:
        """Evict the resident session object (frees its corpus ref).

        The durable record and label history stay — a later request
        resumes the session as if on a fresh worker.
        """
        closed = self._close_session(sid)
        return _json_body(200, {"session": sid, "closed": closed})

    # ----------------------------------------------------- session cache
    def _resolve(self, sid: str) -> _SessionEntry:
        with self._lock:
            entry = self._sessions.get(sid)
            if entry is not None and entry.session is not None:
                self._seq += 1
                entry.last_used = self._seq
                return entry
        # Cross-worker resume: this worker has no live object, but the
        # catalog has the durable record (404 via StorageError if not).
        record = self.db.session_record(sid)
        entry, created = self._materialize(record)
        if created:
            get_telemetry().counter("service.session_resumes").inc()
        return entry

    def _materialize(self, record: SessionRecord
                     ) -> tuple[_SessionEntry, bool]:
        """Get-or-build the resident session for ``record``.

        Returns ``(entry, created)`` with ``entry.session`` guaranteed
        non-``None``.  A placeholder entry is published under the
        global lock first, then built under its own lock, so two
        threads racing on the same id build once while different ids
        build concurrently.
        """
        with self._lock:
            entry = self._sessions.get(record.session_id)
            if entry is None:
                entry = _SessionEntry()
                self._sessions[record.session_id] = entry
            self._seq += 1
            entry.last_used = self._seq
        with entry.lock:
            if entry.session is not None:
                return entry, False
            try:
                entry.session = self._build_session(record, entry)
            except BaseException:
                with self._lock:
                    if self._sessions.get(record.session_id) is entry:
                        del self._sessions[record.session_id]
                raise
            with self._lock:
                resident = sum(1 for e in self._sessions.values()
                               if e.session is not None)
            get_telemetry().gauge("service.sessions_active").set(resident)
        self._evict_lru(keep=record.session_id)
        return entry, True

    def _build_session(self, record: SessionRecord,
                       entry: _SessionEntry) -> MultiClipQuerySession:
        kwargs = dict(record.params)
        corpus_key = None
        if record.engine == "mil_ocsvm":
            corpus_key = f"{record.corpus_id}::{record.event_name}"
            clip_ids, event = list(record.clip_ids), record.event_name
            kwargs["corpus"] = self.pool.acquire(
                corpus_key,
                lambda: sharded_corpus(self.db, clip_ids, event))
        try:
            session = MultiClipQuerySession(
                self.db, list(record.clip_ids), record.event_name,
                user_id=record.user_id, engine=record.engine,
                top_k=record.top_k, ledger=self.ledger, **kwargs)
        except BaseException:
            if corpus_key is not None:
                self.pool.release(corpus_key)
            raise
        entry.corpus_key = corpus_key
        return session

    def _close_session(self, sid: str, *, blocking: bool = True) -> bool:
        with self._lock:
            entry = self._sessions.get(sid)
        if entry is None:
            return False
        if not entry.lock.acquire(blocking=blocking):
            return False
        try:
            with self._lock:
                if self._sessions.get(sid) is not entry:
                    return False
                del self._sessions[sid]
                resident = sum(1 for e in self._sessions.values()
                               if e.session is not None)
            if entry.corpus_key is not None:
                self.pool.release(entry.corpus_key)
                entry.corpus_key = None
            entry.session = None
            get_telemetry().gauge("service.sessions_active").set(resident)
            return True
        finally:
            entry.lock.release()

    def _evict_lru(self, *, keep: str) -> None:
        """Shed least-recently-used idle sessions beyond the cap.

        Busy entries (lock held — a round in flight, a build in
        progress) are skipped rather than waited on; the cap is soft.
        """
        with self._lock:
            excess = len(self._sessions) - self.max_sessions
            if excess <= 0:
                return
            candidates = sorted(
                (e.last_used, sid) for sid, e in self._sessions.items()
                if sid != keep)
        for _, sid in candidates:
            if excess <= 0:
                return
            if self._close_session(sid, blocking=False):
                excess -= 1

    def close(self) -> None:
        """Release every resident session and close the catalog."""
        with self._lock:
            sids = list(self._sessions)
        for sid in sids:
            self._close_session(sid)
        self.db.close_all()
