"""Incremental Video-Sequence emission with a batch-equivalence guarantee.

Streaming ingestion processes a clip segment by segment, but the paper's
windowing (Section 5.1) is defined over *final* tracks: smoothing looks a
few checkpoints ahead, ``inv_mdist`` depends on every vehicle present at
a checkpoint, and a window's instance set depends on which tracks end up
covering it.  Emitting a window early would risk disagreeing with the
batch pipeline.

This module computes the **stable frontier**: the highest frame index
``F`` such that every feature value at checkpoints ``<= F`` — and the
membership and emptiness of every window ending at or before ``F`` — can
no longer change, no matter what future frames contain.  Windows whose
last checkpoint is at or before the frontier are final and safe to
append to the live corpus; everything later is carried over to the next
segment boundary.

Per open (still-matchable) track the frontier is pinned by:

* an *uncertain* track — too short to survive the tracker's
  ``min_track_length`` gate, or covering fewer than ``h + 2``
  checkpoints (``h`` = smoothing half-window), so its smoothed positions
  and even its existence in the final dataset are unknown — pins the
  frontier below its first observation;
* a *certain* track pins the frontier at its last checkpoint minus
  ``h`` checkpoints: positions up to there have their full smoothing
  window observed, and every feature channel is backward-looking.

New tracks can only begin at unprocessed frames, so they can never join,
re-phase, or un-empty a window at or before the frontier.  The frontier
is monotone across boundaries, which keeps emitted bag ids stable.

:class:`StreamingWindowEmitter` re-derives the full window dataset from
the current track snapshot at each segment boundary and emits the newly
final prefix; a digest of everything already emitted is re-verified each
time, so any violation of the frontier contract fails loudly instead of
silently diverging from the batch pipeline.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.core.bags import Bag
from repro.errors import PipelineError
from repro.events.features import SamplingConfig, extract_series
from repro.events.models import EventModel
from repro.events.windows import build_dataset

__all__ = ["stable_frontier", "StreamingWindowEmitter"]


def stable_frontier(open_tracks, *, processed_frames: int,
                    min_track_length: int,
                    config: SamplingConfig | None = None) -> int:
    """Highest frame index whose checkpoint features are final.

    ``open_tracks`` are the tracker's still-active tracks after
    ``processed_frames`` frames (exclusive — frames ``< processed_frames``
    have been seen).  Closed tracks never pin the frontier: their
    observations, smoothing, and checkpoint coverage are all final.
    """
    cfg = config or SamplingConfig()
    rate = cfg.sampling_rate
    h = (cfg.smooth_window - 1) // 2
    frontier = processed_frames - 1
    for track in open_tracks:
        if len(track) == 0:  # pragma: no cover - tracker never yields these
            continue
        first_cp = -(-track.first_frame // rate) * rate
        last_cp = (track.last_frame // rate) * rate
        n_cps = (last_cp - first_cp) // rate + 1 if last_cp >= first_cp else 0
        if len(track) < min_track_length or n_cps < max(2, h + 2):
            # Might be dropped entirely, might re-phase the window grid,
            # and (n_cps < h + 2) its first smoothed positions — which
            # velocity[0] reads — are still moving targets.
            frontier = min(frontier, track.first_frame - 1)
        else:
            frontier = min(frontier, last_cp - h * rate)
    return frontier


class StreamingWindowEmitter:
    """Emit the stable prefix of a clip's bags as segments arrive.

    One emitter instance lives for one clip's ingest (picklable, so a
    resumed ingest restores it mid-clip).  At each segment boundary,
    :meth:`emit` recomputes the window dataset over the current track
    snapshot (closed tracks + open tracks — ``extract_series`` skips
    those covering < 2 checkpoints) and returns the bags beyond the last
    emitted one whose windows end at or before the stable frontier.
    Concatenating every emission plus the ``final=True`` flush yields,
    bag for bag and feature for feature, the batch pipeline's dataset.
    """

    def __init__(self, model: EventModel, *, clip_id: str,
                 window_size: int = 3, step: int | None = None,
                 config: SamplingConfig | None = None,
                 keep_empty: bool = False,
                 min_track_length: int = 5) -> None:
        self.model = model
        self.clip_id = clip_id
        self.window_size = int(window_size)
        self.step = step
        self.sampling = config or SamplingConfig()
        self.keep_empty = bool(keep_empty)
        self.min_track_length = int(min_track_length)
        self.n_emitted = 0
        self.n_instances_emitted = 0
        self.last_frontier = -1
        #: Full dataset from the most recent snapshot; after the
        #: ``final=True`` flush this is the clip's batch-identical
        #: :class:`~repro.core.bags.MILDataset`.
        self.last_dataset = None
        self._emitted_digest = hashlib.sha256().hexdigest()

    @staticmethod
    def _digest(bags: list[Bag]) -> str:
        h = hashlib.sha256()
        for bag in bags:
            h.update(repr((bag.bag_id, bag.frame_lo, bag.frame_hi)).encode())
            for inst in bag.instances:
                h.update(repr((inst.instance_id, inst.track_id)).encode())
                h.update(inst.matrix.tobytes())
        return h.hexdigest()

    def _snapshot_dataset(self, tracks):
        ordered = sorted(tracks, key=lambda t: t.track_id)
        series = extract_series(ordered, self.sampling)
        return build_dataset(
            series, self.model, clip_id=self.clip_id,
            window_size=self.window_size, step=self.step,
            config=self.sampling, keep_empty=self.keep_empty,
        )

    def emit(self, finished_tracks, open_tracks, *,
             processed_frames: int, final: bool = False) -> list[Bag]:
        """Newly final bags after ``processed_frames`` frames.

        ``finished_tracks`` are the tracker's kept retired tracks;
        ``open_tracks`` its still-active ones (empty when ``final`` —
        pass the tracker's ``finish()`` output as finished instead).
        """
        if final and open_tracks:
            raise PipelineError(
                "final emission must come after the tracker's finish()"
            )
        dataset = self._snapshot_dataset(
            list(finished_tracks) + list(open_tracks))
        self.last_dataset = dataset
        if final:
            frontier = max(processed_frames - 1, self.last_frontier)
            cut = len(dataset.bags)
        else:
            frontier = stable_frontier(
                open_tracks, processed_frames=processed_frames,
                min_track_length=self.min_track_length,
                config=self.sampling)
            frontier = max(frontier, self.last_frontier)
            cut = bisect_right([b.frame_hi for b in dataset.bags], frontier)
        if cut < self.n_emitted:
            raise PipelineError(
                f"clip {self.clip_id!r}: stable frontier regressed "
                f"({cut} < {self.n_emitted} emitted bags)"
            )
        # Re-derive the digest of the already-emitted prefix from this
        # snapshot: if any emitted bag's span, membership, or features
        # changed, the frontier contract was violated — fail loudly.
        prefix = self._digest(dataset.bags[:self.n_emitted])
        if prefix != self._emitted_digest:
            raise PipelineError(
                f"clip {self.clip_id!r}: emitted windows changed after "
                f"emission (streaming/batch divergence at bag "
                f"<{self.n_emitted})"
            )
        fresh = dataset.bags[self.n_emitted:cut]
        self.n_emitted = cut
        self.n_instances_emitted += sum(b.n_instances for b in fresh)
        self.last_frontier = frontier
        self._emitted_digest = self._digest(dataset.bags[:cut])
        return fresh
