"""Sliding-window extraction of Video Sequences (paper Section 5.1).

A window of ``window_size`` checkpoints (the paper uses 3, i.e. 15 frames
at 5 frames/checkpoint — "the typical length of an event") slides along
the clip-global checkpoint grid.  Each window becomes a bag; every track
whose feature series covers the whole window contributes one instance.
The paper's TS counts (109 and 168 for its two clips) imply non-
overlapping windows, so the default ``step`` equals the window size;
``step=1`` gives the fully-overlapped variant.
"""

from __future__ import annotations

import numpy as np

from repro.core.bags import Bag, Instance, MILDataset
from repro.errors import ConfigurationError
from repro.events.features import SamplingConfig, TrackSeries
from repro.events.models import EventModel
from repro.utils import check_positive

__all__ = ["window_frame_span", "build_dataset"]


def window_frame_span(first_checkpoint_frame: int, window_size: int,
                      sampling_rate: int) -> tuple[int, int]:
    """Frame interval covered by a checkpoint window.

    A window of w checkpoints spaced r frames apart represents the
    ``w * r`` frames ending at its last checkpoint (e.g. 3 checkpoints at
    rate 5 = one 15-frame Video Sequence, as in the paper).
    """
    last = first_checkpoint_frame + (window_size - 1) * sampling_rate
    return (max(0, last - window_size * sampling_rate + 1), last)


def build_dataset(
    series_list: list[TrackSeries],
    model: EventModel,
    *,
    clip_id: str = "clip",
    window_size: int = 3,
    step: int | None = None,
    config: SamplingConfig | None = None,
    keep_empty: bool = False,
) -> MILDataset:
    """Cut feature series into a MIL dataset of bags and instances.

    Parameters
    ----------
    series_list:
        Output of :func:`repro.events.features.extract_series`.
    model:
        Event model naming the feature channels.
    window_size / step:
        Checkpoints per window and window stride (default: non-overlap).
    keep_empty:
        Keep windows with no full-coverage track (they can never be
        retrieved, but keep bag ids aligned with wall-clock time).
    """
    check_positive("window_size", window_size)
    cfg = config or SamplingConfig()
    step = window_size if step is None else int(step)
    check_positive("step", step)

    dataset = MILDataset(
        clip_id=clip_id,
        event_name=model.name,
        feature_names=model.feature_names,
        window_size=int(window_size),
        sampling_rate=cfg.sampling_rate,
    )
    if not series_list:
        return dataset

    rate = cfg.sampling_rate
    for series in series_list:
        if int(series.checkpoint_frames[0]) % rate != 0:
            raise ConfigurationError(
                f"track {series.track_id}: checkpoints not on the global "
                f"{rate}-frame grid"
            )

    grid_lo = min(int(s.checkpoint_frames[0]) for s in series_list) // rate
    grid_hi = max(int(s.checkpoint_frames[-1]) for s in series_list) // rate

    # Pre-slice per-series grid offsets for O(1) window lookup.
    feature_cache = {
        id(s): model.feature_matrix(s) for s in series_list
    }

    bag_id = 0
    instance_id = 0
    for start in range(grid_lo, grid_hi - window_size + 2, step):
        first_frame = start * rate
        frame_lo, frame_hi = window_frame_span(first_frame, window_size,
                                               rate)
        instances: list[Instance] = []
        for series in series_list:
            s_lo = int(series.checkpoint_frames[0]) // rate
            s_hi = int(series.checkpoint_frames[-1]) // rate
            if s_lo > start or s_hi < start + window_size - 1:
                continue  # track does not cover the whole window
            offset = start - s_lo
            matrix = feature_cache[id(series)][offset : offset + window_size]
            instances.append(
                Instance(
                    instance_id=instance_id,
                    bag_id=bag_id,
                    track_id=series.track_id,
                    matrix=np.asarray(matrix),
                )
            )
            instance_id += 1
        if instances or keep_empty:
            dataset.bags.append(
                Bag(
                    bag_id=bag_id,
                    clip_id=clip_id,
                    frame_lo=frame_lo,
                    frame_hi=frame_hi,
                    instances=tuple(instances),
                )
            )
            bag_id += 1
    return dataset
