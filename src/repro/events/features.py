"""Per-checkpoint trajectory features (paper Section 4).

Every track is sampled on a clip-global checkpoint grid (one checkpoint
every ``sampling_rate`` frames, the paper uses 5).  At checkpoint ``i``
the paper records, per vehicle:

* ``velocity``  — speed between checkpoints i-1 and i (pixels/frame);
* ``vdiff``     — *signed* change of velocity vs the previous checkpoint
  ("deducting the velocity sampled at the previous checking point from
  the current velocity"); the sign is what distinguishes a braking
  pattern that resumes from one that ends in a standstill;
* ``theta``     — absolute angle between the current and previous motion
  vectors, in [0, pi];
* ``inv_mdist`` — 1 / (distance to the nearest other vehicle at the same
  checkpoint), 0 when the vehicle is alone in the frame.

We additionally expose ``theta_cum`` (heading change accumulated over a
short trailing horizon), the natural channel for the paper's U-turn
remark.  The grid is global — every track is sampled at the same frame
numbers — so inter-vehicle distances and window slicing line up across
tracks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.tracking.smoothing import smooth_points
from repro.utils import check_positive

__all__ = ["CHANNEL_NAMES", "SamplingConfig", "TrackSeries", "extract_series"]

#: All feature channels computed per checkpoint.
CHANNEL_NAMES = ("velocity", "vdiff", "theta", "inv_mdist", "theta_cum")

#: Speed (pixels/frame) below which a motion vector's direction is
#: considered undefined.  Must sit above centroid-jitter level: a parked
#: vehicle whose segmented centroid wobbles by a fraction of a pixel
#: produces pure-noise motion vectors, and without this gate its "heading
#: changes" of up to pi would dominate every theta-based score.
_SPEED_EPS = 0.15


@dataclass(frozen=True)
class SamplingConfig:
    """Sampling parameters (paper: 5 frames/checkpoint, window handled by
    :mod:`repro.events.windows`)."""

    sampling_rate: int = 5
    smooth_window: int = 3
    mdist_floor: float = 2.0
    theta_cum_horizon: int = 4

    def __post_init__(self) -> None:
        check_positive("sampling_rate", self.sampling_rate)
        check_positive("mdist_floor", self.mdist_floor)
        check_positive("theta_cum_horizon", self.theta_cum_horizon)
        if self.smooth_window < 1 or self.smooth_window % 2 == 0:
            raise ConfigurationError(
                f"smooth_window must be odd and >= 1, got {self.smooth_window}"
            )


@dataclass
class TrackSeries:
    """One track's checkpoint-aligned feature time series."""

    track_id: int
    checkpoint_frames: np.ndarray          # (n,) global grid frames
    positions: np.ndarray                  # (n, 2)
    channels: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.checkpoint_frames)

    @property
    def first_checkpoint(self) -> int:
        """Index of the first checkpoint on the global grid."""
        return int(self.checkpoint_frames[0])

    def channel_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Stack the named channels into an (n, len(names)) matrix."""
        missing = [n for n in names if n not in self.channels]
        if missing:
            raise ConfigurationError(
                f"unknown feature channels {missing}; available: "
                f"{sorted(self.channels)}"
            )
        return np.column_stack([self.channels[n] for n in names])


def _grid_checkpoints(first: int, last: int, rate: int) -> np.ndarray:
    """Global-grid checkpoint frames inside [first, last]."""
    start = int(np.ceil(first / rate)) * rate
    stop = (last // rate) * rate
    if stop < start:
        return np.empty(0, dtype=int)
    return np.arange(start, stop + 1, rate, dtype=int)


def _kinematic_channels(positions: np.ndarray, rate: int,
                        horizon: int) -> dict[str, np.ndarray]:
    """velocity / vdiff / theta / theta_cum from checkpoint positions."""
    n = len(positions)
    motion = np.diff(positions, axis=0)               # (n-1, 2)
    speed = np.linalg.norm(motion, axis=1) / rate     # per frame

    velocity = np.empty(n)
    velocity[1:] = speed
    velocity[0] = speed[0] if n > 1 else 0.0

    vdiff = np.zeros(n)
    if n > 2:
        vdiff[2:] = np.diff(speed)  # signed, per the paper's Section 4

    theta = np.zeros(n)
    for i in range(2, n):
        prev_vec, cur_vec = motion[i - 2], motion[i - 1]
        norm_prev = np.linalg.norm(prev_vec)
        norm_cur = np.linalg.norm(cur_vec)
        if norm_prev / rate < _SPEED_EPS or norm_cur / rate < _SPEED_EPS:
            continue
        cos_angle = np.clip(
            prev_vec @ cur_vec / (norm_prev * norm_cur), -1.0, 1.0)
        theta[i] = float(np.arccos(cos_angle))

    theta_cum = np.zeros(n)
    for i in range(n):
        lo = max(0, i - horizon + 1)
        theta_cum[i] = theta[lo : i + 1].sum()

    return {"velocity": velocity, "vdiff": vdiff, "theta": theta,
            "theta_cum": theta_cum}


def extract_series(tracks, config: SamplingConfig | None = None
                   ) -> list[TrackSeries]:
    """Compute checkpoint feature series for every (long enough) track.

    ``tracks`` is any sequence of objects with the
    :class:`~repro.tracking.track.Track` interface.  Tracks covering fewer
    than two grid checkpoints are skipped.  The ``inv_mdist`` channel is
    computed in a second pass across all tracks, since it needs every
    vehicle's position at each shared checkpoint.
    """
    cfg = config or SamplingConfig()
    series_list: list[TrackSeries] = []
    for track in tracks:
        grid = _grid_checkpoints(track.first_frame, track.last_frame,
                                 cfg.sampling_rate)
        if len(grid) < 2:
            continue
        raw = np.stack([track.position_at(int(f)) for f in grid])
        positions = smooth_points(raw, cfg.smooth_window)
        channels = _kinematic_channels(positions, cfg.sampling_rate,
                                       cfg.theta_cum_horizon)
        series_list.append(
            TrackSeries(
                track_id=track.track_id,
                checkpoint_frames=grid,
                positions=positions,
                channels=channels,
            )
        )

    # Second pass: nearest-neighbour distances on the shared grid.
    by_frame: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
    for idx, series in enumerate(series_list):
        for j, frame in enumerate(series.checkpoint_frames):
            by_frame[int(frame)].append((idx, series.positions[j]))

    inv_mdist = [np.zeros(len(s)) for s in series_list]
    for frame, entries in by_frame.items():
        if len(entries) < 2:
            continue
        pos = np.stack([p for _, p in entries])
        dists = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
        np.fill_diagonal(dists, np.inf)
        nearest = dists.min(axis=1)
        for (idx, _), dist in zip(entries, nearest):
            series = series_list[idx]
            j = int(np.searchsorted(series.checkpoint_frames, frame))
            inv_mdist[idx][j] = 1.0 / max(float(dist), cfg.mdist_floor)
    for series, channel in zip(series_list, inv_mdist):
        series.channels["inv_mdist"] = channel

    return series_list
