"""Event models: which feature channels characterise which incident type.

Paper Section 4 builds a spatio-temporal model for traffic accidents with
the property vector alpha_i = [1/mdist_i, vdiff_i, theta_i] and notes the
model "may also be adjusted to detect U-turns, speeding and any other
event that involves the abnormal behavior of a vehicle".  An
:class:`EventModel` is exactly that adjustment point: it names the
channels, and maps a query event type to ground-truth incident kinds for
the simulated user.
"""

from __future__ import annotations

from abc import ABC

from repro.errors import ConfigurationError
from repro.events.features import CHANNEL_NAMES, TrackSeries

__all__ = [
    "EventModel",
    "AccidentModel",
    "SpeedingModel",
    "UTurnModel",
    "event_model_for",
    "register_event_model",
    "registered_event_models",
]


class EventModel(ABC):
    """A named selection of feature channels plus its ground-truth kinds."""

    #: Query name, e.g. "accident".
    name: str = ""
    #: Feature channels, in order, e.g. ("inv_mdist", "vdiff", "theta").
    feature_names: tuple[str, ...] = ()
    #: Ground-truth incident kinds a user with this query marks relevant.
    relevant_kinds: frozenset[str] = frozenset()

    def __init_subclass__(cls) -> None:
        unknown = set(cls.feature_names) - set(CHANNEL_NAMES)
        if unknown:
            raise ConfigurationError(
                f"{cls.__name__} uses unknown channels {sorted(unknown)}"
            )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def feature_matrix(self, series: TrackSeries):
        """(n_checkpoints, n_features) matrix for one track series."""
        return series.channel_matrix(self.feature_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(features={self.feature_names})"


class AccidentModel(EventModel):
    """Paper Section 4: alpha_i = [1/mdist_i, vdiff_i, theta_i]."""

    name = "accident"
    feature_names = ("inv_mdist", "vdiff", "theta")
    relevant_kinds = frozenset({"wall_crash", "sudden_stop", "collision"})


class SpeedingModel(EventModel):
    """Sustained excess speed: raw velocity dominates the vector."""

    name = "speeding"
    feature_names = ("velocity", "vdiff")
    relevant_kinds = frozenset({"speeding"})


class UTurnModel(EventModel):
    """Large accumulated heading change over a short horizon."""

    name = "u_turn"
    feature_names = ("theta_cum", "theta")
    relevant_kinds = frozenset({"u_turn"})


_REGISTRY: dict[str, type[EventModel]] = {
    AccidentModel.name: AccidentModel,
    SpeedingModel.name: SpeedingModel,
    UTurnModel.name: UTurnModel,
}


def event_model_for(name: str) -> EventModel:
    """Instantiate the event model registered under ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown event model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def register_event_model(model_cls: type[EventModel], *,
                         replace: bool = False) -> type[EventModel]:
    """Register a custom event model under its ``name``.

    The paper's future work asks for "more generic event models"; this
    is the plugin point.  Usable as a decorator::

        @register_event_model
        class TailgatingModel(EventModel):
            name = "tailgating"
            feature_names = ("inv_mdist", "velocity")
            relevant_kinds = frozenset({"tailgating"})
    """
    if not isinstance(model_cls, type) or not issubclass(model_cls,
                                                         EventModel):
        raise ConfigurationError(
            "register_event_model expects an EventModel subclass"
        )
    if not model_cls.name:
        raise ConfigurationError("event model must define a name")
    if not model_cls.feature_names:
        raise ConfigurationError(
            f"event model {model_cls.name!r} must name >= 1 feature channel"
        )
    if model_cls.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"event model {model_cls.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[model_cls.name] = model_cls
    return model_cls


def registered_event_models() -> list[str]:
    """Names of all currently registered event models."""
    return sorted(_REGISTRY)
