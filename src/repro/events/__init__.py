"""Event modeling: sampling-point features and sliding-window extraction.

Implements paper Sections 4 and 5.1: per sampling point (one checkpoint
every ``sampling_rate`` frames) each vehicle trajectory yields velocity,
velocity change, motion-vector angle change and inverse distance to its
nearest neighbour; a sliding window over the checkpoints cuts the clip
into Video Sequences (MIL bags) whose per-vehicle Trajectory Sequences are
the MIL instances.
"""

from repro.events.features import (
    CHANNEL_NAMES,
    SamplingConfig,
    TrackSeries,
    extract_series,
)
from repro.events.models import (
    AccidentModel,
    EventModel,
    SpeedingModel,
    UTurnModel,
    event_model_for,
    register_event_model,
    registered_event_models,
)
from repro.events.streaming import StreamingWindowEmitter, stable_frontier
from repro.events.windows import build_dataset, window_frame_span

__all__ = [
    "CHANNEL_NAMES",
    "SamplingConfig",
    "TrackSeries",
    "extract_series",
    "EventModel",
    "AccidentModel",
    "SpeedingModel",
    "UTurnModel",
    "event_model_for",
    "register_event_model",
    "registered_event_models",
    "build_dataset",
    "window_frame_span",
    "stable_frontier",
    "StreamingWindowEmitter",
]
