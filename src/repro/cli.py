"""Command-line interface for the incident-retrieval system.

Subcommands mirror the lifecycle of the paper's system:

* ``simulate``   — generate a surveillance clip, run the pipeline, and
  ingest everything into a video database.
* ``ingest``     — the same, as a resumable segment stream: windows
  become queryable while later segments are still processing.
* ``clips``      — list stored clips, filterable by metadata.
* ``info``       — show one clip's tracks/datasets/labels.
* ``query``      — show the current top-k of a semantic query session.
* ``label``      — record one round of relevance feedback.
* ``experiment`` — run a named paper experiment and print its table.
* ``verify-db``  — integrity-check a database (``PRAGMA quick_check``
  plus catalog/array cross-checks); ``--repair`` rebuilds damaged
  datasets from the artifact cache or prunes them to consistency.

Multi-clip queries take ``--strict`` (default: a failing clip aborts
the query) or ``--degraded`` (serve the healthy shards and print an
explicit coverage report).

Example session::

    repro simulate --scenario tunnel --frames 800 --db videos.db
    repro query --db videos.db --clip tunnel --event accident --top-k 8
    repro label --db videos.db --clip tunnel --event accident \\
          --relevant 3,7 --irrelevant 1,2
    repro query --db videos.db --clip tunnel --event accident --top-k 8
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]

_SCENARIOS = ("tunnel", "intersection", "highway", "curve", "city_grid")
_EXPERIMENTS = (
    "figure8", "figure9", "ablation_z", "ablation_normalization",
    "ablation_window", "ablation_sampling_rate", "ablation_step",
    "ablation_learner", "other_events", "mil_algorithms", "cross_camera",
    "sharded_nomination",
)


def _add_cache_args(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument(
        "--artifact-cache", default=None, metavar="DIR",
        help="directory for the content-addressed pipeline artifact "
             "store (reuses Render/Segment/Track outputs across runs)")
    parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="disable artifact reuse entirely (force the cold path)")
    parser.add_argument(
        "--resume", default=None, metavar="MANIFEST",
        help="run-manifest JSON recording completed ingestion tasks; "
             "work already in the manifest is not re-ingested, so a "
             "killed run restarts where it died (pair with "
             "--artifact-cache so completed clips replay from the store)")


def _add_nominator_args(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument(
        "--nominator", default=None, choices=("heuristic", "ivf"),
        help="stage-one candidate nominator for the sharded path: "
             "'heuristic' (static prefilter, default) or 'ivf' (probe "
             "a per-shard vector index near the relevant bags)")
    parser.add_argument(
        "--index-cells", type=int, default=None, metavar="K",
        help="IVF k-means cells per shard (requires --nominator ivf)")
    parser.add_argument(
        "--nprobe", type=int, default=None, metavar="P",
        help="IVF cells probed per query (requires --nominator ivf)")


def _add_policy_args(parser: "argparse.ArgumentParser") -> None:
    policy = parser.add_mutually_exclusive_group()
    policy.add_argument(
        "--strict", dest="failure_policy", action="store_const",
        const="strict", default=None,
        help="fail the query if any member clip's storage is "
             "unavailable (default)")
    policy.add_argument(
        "--degraded", dest="failure_policy", action="store_const",
        const="degraded",
        help="serve partial results over the healthy shards when a "
             "clip's storage fails, with an explicit coverage report; "
             "failed shards rejoin automatically once they heal")


def _nominator_kwargs(args) -> dict:
    """Validate and collect the --nominator flag family.

    Mirrors the candidates_per_shard guard in
    :class:`repro.db.query.MultiClipQuerySession`: tuning knobs without
    the path that reads them are rejected, not ignored.
    """
    from repro.errors import ConfigurationError

    if (args.nprobe is not None or args.index_cells is not None) \
            and args.nominator != "ivf":
        raise ConfigurationError(
            "--nprobe/--index-cells require --nominator ivf")
    out: dict = {}
    if args.nominator is not None:
        out["nominator"] = args.nominator
    if args.index_cells is not None:
        out["index_cells"] = args.index_cells
    if args.nprobe is not None:
        out["nprobe"] = args.nprobe
    return out


def _add_obs_args(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL telemetry trace (one event per span/metric; "
             "worker-process sidecars are merged on exit)")
    parser.add_argument(
        "--metrics-dump", default=None, metavar="PATH",
        help="write a Prometheus text dump of every metric after the "
             "command finishes")
    parser.add_argument(
        "--live-metrics", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text) and /healthz (SLO "
             "health) on this port for the duration of the command "
             "(0 picks a free port)")


def _start_obs(args, command: str):
    """Arm the process-wide telemetry for one CLI command.

    Returns the ``(telemetry, span_cm)`` pair; the caller enters the
    span around the command body and hands both to :func:`_finish_obs`.
    """
    from repro import obs

    telemetry = obs.get_telemetry()
    if args.trace:
        telemetry.configure(trace_path=args.trace)
    args._live_server = None
    if getattr(args, "live_metrics", None) is not None:
        args._live_server = obs.LiveMetricsServer(
            port=args.live_metrics).start()
        print(f"live metrics at {args._live_server.url}/metrics "
              f"(health: /healthz)")
    return telemetry, telemetry.span(f"cli.{command}")


def _finish_obs(args, telemetry, *, command: str,
                db_path: str | None = None) -> None:
    """Flush exporters and persist the run summary once a command ends."""
    from repro.obs.report import run_summary

    if getattr(args, "_live_server", None) is not None:
        args._live_server.stop()
    telemetry.flush()
    telemetry.merge_worker_traces()
    summary = run_summary(telemetry)
    if args.metrics_dump:
        from repro.obs import write_prometheus

        write_prometheus(telemetry, args.metrics_dump)
        print(f"metrics dump written to {args.metrics_dump}")
    if args.trace:
        print(f"telemetry trace written to {args.trace}")
    if db_path:
        import time

        from repro.db import VideoDatabase

        run_id = (f"{command}-{time.strftime('%Y%m%dT%H%M%S')}"
                  f"-{os.getpid()}")
        try:
            with VideoDatabase(db_path) as db:
                db.record_run_metrics(
                    run_id, command, summary,
                    created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
                    wall_ms=summary["spans"]["total_wall_ms"])
        except Exception as exc:  # telemetry must never mask the command
            print(f"warning: could not record run metrics: {exc}",
                  file=sys.stderr)
        else:
            print(f"run metrics recorded as {run_id!r} "
                  f"(inspect with: repro stats --db {db_path})")


def _add_session_obs_args(parser: "argparse.ArgumentParser") -> None:
    parser.add_argument(
        "--profile-threshold-ms", type=float, default=None, metavar="MS",
        help="arm the sampling tail profiler: rounds slower than MS "
             "keep a collapsed-stack profile in the quality ledger")
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not persist per-round quality-ledger rows")


def _session_obs_kwargs(args) -> dict:
    out: dict = {}
    if getattr(args, "no_ledger", False):
        out["ledger"] = False
    threshold = getattr(args, "profile_threshold_ms", None)
    if threshold is not None:
        out["profiler"] = threshold
    return out


def _cache_store(args):
    """Resolve the --artifact-cache/--no-artifact-cache pair.

    Returns ``False`` (reuse disabled), a directory path, or ``None``
    (command default: no on-disk store; sweeps may still use an
    ephemeral in-memory one).
    """
    from repro.errors import ConfigurationError

    if args.no_artifact_cache:
        if args.artifact_cache:
            raise ConfigurationError(
                "--artifact-cache and --no-artifact-cache are mutually "
                "exclusive")
        return False
    return args.artifact_cache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIL incident retrieval for surveillance video "
                    "databases (ICDE 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate",
                         help="simulate a clip and ingest it into a db")
    sim.add_argument("--scenario", choices=_SCENARIOS, default="tunnel")
    sim.add_argument("--frames", type=int, default=None,
                     help="clip length (scenario default if omitted)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--db", required=True, help="SQLite database path")
    sim.add_argument("--mode", choices=("vision", "oracle"),
                     default="vision",
                     help="full vision pipeline or oracle tracks")
    sim.add_argument("--event", default="accident",
                     help="event model for the stored dataset")
    sim.add_argument("--clip-id", default=None,
                     help="override the stored clip id")
    _add_cache_args(sim)
    _add_obs_args(sim)

    ingest = sub.add_parser(
        "ingest", help="stream a simulated clip into a db segment by "
                       "segment (resumable, queryable mid-clip)")
    ingest.add_argument("--scenario", choices=_SCENARIOS, default="tunnel")
    ingest.add_argument("--frames", type=int, default=None,
                        help="clip length (scenario default if omitted)")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--db", required=True, help="SQLite database path")
    ingest.add_argument("--event", default="accident",
                        help="event model for the stored dataset")
    ingest.add_argument("--clip-id", default=None,
                        help="override the stored clip id")
    ingest.add_argument("--stream", action="store_true",
                        help="segment-incremental ingestion (required; "
                             "whole-clip batch is 'repro simulate')")
    ingest.add_argument("--segment-frames", type=int, default=200,
                        metavar="N",
                        help="frames per streamed segment (default 200)")
    ingest.add_argument("--resume", action="store_true",
                        help="skip segments already durably appended per "
                             "the db's ingest_events journal (pair with "
                             "--artifact-cache to also replay the "
                             "pipeline work of finished segments)")
    ingest.add_argument(
        "--artifact-cache", default=None, metavar="DIR",
        help="directory for the content-addressed per-segment artifact "
             "store")
    ingest.add_argument("--no-artifact-cache", action="store_true",
                        help="disable artifact reuse entirely")
    _add_obs_args(ingest)

    clips = sub.add_parser("clips", help="list clips in a database")
    clips.add_argument("--db", required=True)
    clips.add_argument("--location", default=None)
    clips.add_argument("--camera", default=None)

    info = sub.add_parser("info", help="show one clip's contents")
    info.add_argument("--db", required=True)
    info.add_argument("--clip", required=True)

    query = sub.add_parser("query", help="show the current top-k results")
    query.add_argument("--db", required=True)
    query.add_argument("--clip", default=None, help="single clip id")
    query.add_argument("--clips", default=None,
                       help="comma-separated clip ids for a sharded "
                            "multi-clip query")
    query.add_argument("--event", default="accident")
    query.add_argument("--user", default="default")
    query.add_argument("--top-k", type=int, default=20)
    query.add_argument("--engine", default="mil_ocsvm",
                       choices=("mil_ocsvm", "weighted_rf"))
    _add_policy_args(query)
    query.add_argument("--candidates-per-shard", type=int, default=None,
                       help="exact-score at most M bags per shard "
                            "(multi-clip only; rest keep heuristic order)")
    _add_nominator_args(query)
    _add_session_obs_args(query)

    label = sub.add_parser("label", help="record a feedback round")
    label.add_argument("--db", required=True)
    label.add_argument("--clip", default=None, help="single clip id")
    label.add_argument("--clips", default=None,
                       help="comma-separated clip ids of a multi-clip "
                            "query session")
    label.add_argument("--event", default="accident")
    label.add_argument("--user", default="default")
    label.add_argument("--relevant", default="",
                       help="comma-separated relevant bag ids")
    _add_policy_args(label)
    label.add_argument("--irrelevant", default="",
                       help="comma-separated irrelevant bag ids")
    _add_session_obs_args(label)

    experiment = sub.add_parser("experiment",
                                help="run a paper experiment")
    experiment.add_argument("--name", choices=_EXPERIMENTS,
                            required=True)
    experiment.add_argument("--mode", choices=("vision", "oracle"),
                            default=None,
                            help="override the experiment's default mode")
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument("--seeds", default=None,
                            help="comma-separated seed list for "
                                 "multi-seed experiments")
    experiment.add_argument("--workers", type=int, default=None,
                            help="parallel ingestion workers for "
                                 "multi-seed experiments")
    _add_nominator_args(experiment)
    experiment.add_argument("--chart", action="store_true",
                            help="append an ASCII chart of the curves")
    _add_cache_args(experiment)
    _add_obs_args(experiment)

    stats = sub.add_parser(
        "stats", help="show telemetry run reports stored in a database")
    stats.add_argument("--db", required=True)
    stats.add_argument("run", nargs="?", default=None,
                       help="run id to render (default: latest run)")
    stats.add_argument("--list", action="store_true",
                       help="only list stored runs, do not render one")

    explain = sub.add_parser(
        "explain",
        help="reconstruct a query session's per-round span trees from "
             "the quality ledger (why was round 7 slow?)")
    explain.add_argument("--db", required=True)
    explain.add_argument("session", nargs="?", default=None,
                         help="session id (user:corpus:event) or query "
                              "id; omit to list ledgered sessions")
    explain.add_argument("--round", type=int, default=None,
                         help="only this round index")
    explain.add_argument("--trace", default=None, metavar="PATH",
                         help="also fold in spans from this JSONL trace "
                              "(adds worker-process spans sharing the "
                              "round's query_id)")

    report = sub.add_parser(
        "report", help="run the whole experiment suite, emit markdown")
    report.add_argument("--out", default=None,
                        help="write the report to this file")
    report.add_argument("--only", default=None,
                        help="comma-separated experiment names")

    delete = sub.add_parser("delete-clip",
                            help="remove a clip and its derived data")
    delete.add_argument("--db", required=True)
    delete.add_argument("--clip", required=True)

    export = sub.add_parser("export-clip",
                            help="write a clip to a portable bundle")
    export.add_argument("--db", required=True)
    export.add_argument("--clip", required=True)
    export.add_argument("--out", required=True)

    import_ = sub.add_parser("import-clip",
                             help="load a clip bundle into a database")
    import_.add_argument("--db", required=True)
    import_.add_argument("--bundle", required=True)
    import_.add_argument("--replace", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant retrieval HTTP service")
    serve.add_argument("--db", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=8,
                       help="request-handling thread pool size")
    serve.add_argument("--max-sessions", type=int, default=256,
                       help="resident session soft cap (LRU-evicted "
                            "sessions resume from the catalog)")
    serve.add_argument("--no-ledger", action="store_true",
                       help="skip per-round history persistence "
                            "(disables /explain)")

    verify = sub.add_parser(
        "verify-db",
        help="check catalog integrity and dataset/array consistency")
    verify.add_argument("--db", required=True)
    verify.add_argument(
        "--repair", action="store_true",
        help="fix damaged datasets: rebuild from the artifact cache "
             "when possible, otherwise prune to the consistent subset")
    verify.add_argument(
        "--artifact-cache", default=None, metavar="DIR",
        help="content-addressed pipeline store to rebuild damaged "
             "window datasets from (the same directory past ingest "
             "runs were pointed at)")
    return parser


def _ids(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _scenario_kwargs(scenario: str, frames: int | None, seed: int) -> dict:
    """Builder kwargs for one scenario, scaling incident counts with
    clip length so short clips stay feasible and long ones interesting."""
    kwargs: dict = {"seed": seed}
    if frames is not None:
        kwargs["n_frames"] = frames
        if scenario == "tunnel":
            factor = frames / 2500
            kwargs["n_wall_crashes"] = max(1, round(7 * factor))
            kwargs["n_sudden_stops"] = max(1, round(5 * factor))
        elif scenario == "intersection":
            factor = frames / 600
            kwargs["n_collisions"] = max(1, round(5 * factor))
            kwargs["n_near_misses"] = max(1, round(4 * factor))
        elif scenario == "highway":
            factor = frames / 800
            kwargs["n_uturns"] = max(1, round(5 * factor))
            kwargs["n_speeding"] = max(1, round(4 * factor))
        elif scenario == "curve":
            factor = frames / 1200
            kwargs["n_sudden_stops"] = max(1, round(4 * factor))
        else:  # city_grid
            factor = frames / 900
            kwargs["n_collisions"] = max(1, round(3 * factor))
            kwargs["n_sudden_stops"] = max(1, round(3 * factor))
    return kwargs


def _cmd_simulate(args) -> int:
    telemetry, span_cm = _start_obs(args, "simulate")
    try:
        with span_cm:
            code = _run_simulate(args)
    finally:
        _finish_obs(args, telemetry, command="simulate", db_path=args.db)
    return code


def _run_simulate(args) -> int:
    from repro.db import VideoDatabase
    from repro.eval import build_artifacts
    from repro.sim import city_grid, curve, highway, intersection, tunnel

    builders = {"tunnel": tunnel, "intersection": intersection,
                "highway": highway, "curve": curve,
                "city_grid": city_grid}
    store = _cache_store(args)  # validate the flags before simulating
    if store is False:
        store = None
    kwargs = _scenario_kwargs(args.scenario, args.frames, args.seed)
    manifest, fingerprint = None, None
    if args.resume:
        from repro.reliability import RunManifest, task_fingerprint

        sim_kwargs = {k: v for k, v in kwargs.items() if k != "seed"}
        fingerprint = task_fingerprint(
            args.scenario, args.seed, sim_kwargs,
            {"event": args.event, "mode": args.mode, "db": args.db,
             "clip_id": args.clip_id})
        manifest = RunManifest(args.resume)
        if manifest.is_done(fingerprint):
            print(f"already completed per manifest {args.resume} "
                  f"(fingerprint {fingerprint[:12]}); skipping")
            return 0
    sim = builders[args.scenario](**kwargs)
    if args.clip_id:
        sim.name = args.clip_id
    print(f"simulated {sim.name!r}: {sim.n_frames} frames, "
          f"{len(sim.incidents)} incidents")
    artifacts = build_artifacts(sim, event=args.event, mode=args.mode,
                                store=store)
    replayed = [name for name, runs in artifacts.stage_runs.items()
                if runs == 0]
    if replayed:
        print(f"artifact cache replayed stages: {', '.join(replayed)}")
    with VideoDatabase(args.db) as db:
        db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset)
        if store is not None:
            from repro.pipeline import resolve_store

            db.record_artifact_entries(resolve_store(store).entries())
    print(f"ingested into {args.db}: {len(artifacts.tracks)} tracks, "
          f"{len(artifacts.dataset)} video sequences, "
          f"{artifacts.dataset.n_instances} trajectory sequences")
    if manifest is not None:
        manifest.mark_done(fingerprint, {"scenario": args.scenario,
                                         "seed": args.seed,
                                         "clip_id": sim.name,
                                         "db": args.db})
        print(f"recorded completion in {args.resume}")
    return 0


def _cmd_ingest(args) -> int:
    telemetry, span_cm = _start_obs(args, "ingest")
    try:
        with span_cm:
            code = _run_ingest(args)
    finally:
        _finish_obs(args, telemetry, command="ingest", db_path=args.db)
    return code


def _run_ingest(args) -> int:
    import time

    from repro.db import StreamingIngest, VideoDatabase
    from repro.errors import ConfigurationError
    from repro.sim import city_grid, curve, highway, intersection, tunnel

    if not args.stream:
        raise ConfigurationError(
            "repro ingest is the streaming path: pass --stream "
            "(whole-clip batch ingestion is 'repro simulate')")
    store = _cache_store(args)
    if store is False:
        store = None
    builders = {"tunnel": tunnel, "intersection": intersection,
                "highway": highway, "curve": curve,
                "city_grid": city_grid}
    sim = builders[args.scenario](
        **_scenario_kwargs(args.scenario, args.frames, args.seed))
    if args.clip_id:
        sim.name = args.clip_id
    print(f"simulated {sim.name!r}: {sim.n_frames} frames, "
          f"{len(sim.incidents)} incidents")
    started = time.perf_counter()
    first_window_s: float | None = None

    def progress(e) -> None:
        nonlocal first_window_s
        if e.bags and first_window_s is None:
            first_window_s = time.perf_counter() - started
        how = "cached" if e.cached else "built"
        print(f"  segment {e.index} [{e.frame_lo},{e.frame_hi}): "
              f"{len(e.bags)} new windows ({how}), "
              f"frontier={e.frontier}, open tracks={e.n_open_tracks}")

    with VideoDatabase(args.db) as db:
        ingest = StreamingIngest(db, sim, event=args.event,
                                 segment_frames=args.segment_frames,
                                 store=store)
        artifacts = ingest.run(resume=args.resume, progress=progress)
    total_s = time.perf_counter() - started
    print(f"streamed into {args.db}: {len(artifacts.dataset)} video "
          f"sequences over {ingest.segments_appended} appended segments "
          f"({ingest.segments_skipped} already durable), "
          f"{len(artifacts.tracks)} tracks")
    if first_window_s is not None:
        print(f"first windows queryable after {first_window_s:.2f}s "
              f"(full stream: {total_s:.2f}s)")
    return 0


def _cmd_clips(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        rows = db.clips(location=args.location, camera=args.camera)
        if not rows:
            print("(no clips)")
            return 0
        for clip in rows:
            print(f"{clip.clip_id}: location={clip.location or '-'} "
                  f"camera={clip.camera or '-'} frames={clip.n_frames} "
                  f"start={clip.start_time or '-'}")
    return 0


def _cmd_info(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        clip = db.clip(args.clip)
        tracks = db.track_records(args.clip)
        events = db.events_for(args.clip)
        print(f"clip {clip.clip_id}: {clip.n_frames} frames "
              f"{clip.width}x{clip.height} @ {clip.fps} fps")
        print(f"  location={clip.location or '-'} camera="
              f"{clip.camera or '-'} start={clip.start_time or '-'}")
        print(f"  tracks: {len(tracks)}")
        for event in events:
            dataset = db.dataset(args.clip, event)
            labels = db.labels(args.clip, event)
            print(f"  dataset {event!r}: {len(dataset)} VSs, "
                  f"{dataset.n_instances} TSs, {len(labels)} stored labels")
    return 0


def _clip_selection(args) -> tuple[str | None, list[str] | None]:
    """(clip, clips) from ``--clip`` / ``--clips`` (exactly one)."""
    clips = [c for c in (args.clips or "").split(",") if c]
    if bool(args.clip) == bool(clips):
        print("pass exactly one of --clip or --clips", file=sys.stderr)
        return None, None
    return args.clip, clips or None


def _open_session(db, args, **kwargs):
    from repro.db import MultiClipQuerySession, SemanticQuerySession

    clip, clips = _clip_selection(args)
    if clip is None and clips is None:
        return None
    if clips is not None:
        if kwargs.get("failure_policy") is None:
            kwargs.pop("failure_policy", None)
        return MultiClipQuerySession(db, clips, args.event,
                                     user_id=args.user, **kwargs)
    if kwargs.pop("failure_policy", None) == "degraded":
        print("--degraded needs a multi-clip query (--clips): the shard "
              "is the failure domain", file=sys.stderr)
        return None
    if kwargs.pop("candidates_per_shard", None) is not None:
        print("--candidates-per-shard needs a multi-clip query (--clips)",
              file=sys.stderr)
        return None
    if any(kwargs.pop(k, None) is not None
           for k in ("nominator", "index_cells", "nprobe")):
        print("--nominator/--index-cells/--nprobe need a multi-clip "
              "query (--clips)", file=sys.stderr)
        return None
    return SemanticQuerySession(db, clip, args.event,
                                user_id=args.user, **kwargs)


def _cmd_query(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        session = _open_session(
            db, args, engine=args.engine, top_k=args.top_k,
            candidates_per_shard=args.candidates_per_shard,
            failure_policy=args.failure_policy,
            **_nominator_kwargs(args), **_session_obs_kwargs(args))
        if session is None:
            return 2
        target = args.clip or args.clips
        print(f"query clip={target} event={args.event} "
              f"user={args.user} round={session.round_index}")
        for rank, (bag_id, lo, hi) in enumerate(session.result_windows(),
                                                start=1):
            print(f"  {rank:2d}. VS {bag_id:4d}  frames {lo}-{hi}")
        coverage = getattr(session, "last_coverage", None)
        if coverage is not None and coverage.degraded:
            print(f"  ** {coverage.summary()}")
        _report_session_obs(args, session)
    return 0


def _report_session_obs(args, session) -> None:
    """Point the user at the ledger/profiles a session just produced."""
    if session.ledger:
        print(f"  (ledgered as session {session.session_id!r}; inspect "
              f"with: repro explain --db {args.db} "
              f"{session.session_id})")
    profiler = session.profiler
    if profiler is not None and profiler.profiles:
        worst = max(p.wall_ms for p in profiler.profiles)
        print(f"  ** {len(profiler.profiles)} tail profile(s) captured "
              f"(worst {worst:.1f} ms >= "
              f"{profiler.threshold_ms:g} ms threshold); stored in the "
              f"quality ledger")


def _cmd_label(args) -> int:
    from repro.db import VideoDatabase

    labels = {b: True for b in _ids(args.relevant)}
    labels.update({b: False for b in _ids(args.irrelevant)})
    if not labels:
        print("nothing to label: pass --relevant and/or --irrelevant",
              file=sys.stderr)
        return 2
    with VideoDatabase(args.db) as db:
        session = _open_session(db, args,
                                failure_policy=args.failure_policy,
                                **_session_obs_kwargs(args))
        if session is None:
            return 2
        session.feed(labels)
        print(f"recorded round {session.round_index - 1}: "
              f"{sum(labels.values())} relevant, "
              f"{len(labels) - sum(labels.values())} irrelevant")
        _report_session_obs(args, session)
    return 0


def _cmd_experiment(args) -> int:
    telemetry, span_cm = _start_obs(args, "experiment")
    try:
        with span_cm:
            code = _run_experiment(args)
    finally:
        _finish_obs(args, telemetry, command="experiment")
    return code


def _run_experiment(args) -> int:
    from repro.errors import ConfigurationError
    from repro.eval import experiments
    from repro.eval.reporting import comparison_table

    import inspect

    runner = getattr(experiments, args.name)
    accepted = inspect.signature(runner).parameters
    kwargs = {}
    if args.mode is not None and "mode" in accepted:
        kwargs["mode"] = args.mode
    if args.seed is not None and "seed" in accepted:
        kwargs["seed"] = args.seed
    if args.seeds is not None:
        if "seeds" not in accepted:
            raise ConfigurationError(
                f"experiment {args.name!r} does not take --seeds")
        kwargs["seeds"] = tuple(_ids(args.seeds))
    if args.workers is not None and "max_workers" in accepted:
        kwargs["max_workers"] = args.workers
    nominator_kwargs = _nominator_kwargs(args)
    for flag, name in (("--nominator", "nominator"),
                       ("--index-cells", "index_cells"),
                       ("--nprobe", "nprobe")):
        if name not in nominator_kwargs:
            continue
        if name not in accepted:
            raise ConfigurationError(
                f"experiment {args.name!r} does not take {flag}")
        kwargs[name] = nominator_kwargs[name]
    if args.resume is not None:
        if "manifest" not in accepted:
            raise ConfigurationError(
                f"experiment {args.name!r} does not support --resume")
        kwargs["manifest"] = args.resume
    store = _cache_store(args)
    if store is not None and "store" in accepted:
        kwargs["store"] = store
    result = runner(**kwargs)
    print(comparison_table(result, with_chart=args.chart))
    return 0


def _cmd_stats(args) -> int:
    from repro.db import VideoDatabase
    from repro.obs import render_run_report

    with VideoDatabase(args.db) as db:
        runs = db.run_metrics(args.run)
    if not runs:
        if args.run:
            print(f"error: no run {args.run!r} in {args.db}",
                  file=sys.stderr)
            return 1
        print("(no recorded runs; run simulate/experiment with this db "
              "to collect telemetry)")
        return 0
    if args.list or (args.run is None and len(runs) > 1):
        print(f"{len(runs)} recorded run(s):")
        for run in runs:
            print(f"  {run['run_id']}: command={run['command']} "
                  f"at={run['created_at'] or '-'} "
                  f"wall={run['wall_ms']:.0f}ms")
        if args.list:
            return 0
        print()
    run = runs[0]
    print(f"run {run['run_id']} ({run['command']}, "
          f"{run['created_at'] or 'unknown time'})")
    print(render_run_report(run["summary"]))
    return 0


def _cmd_explain(args) -> int:
    from repro.db import VideoDatabase
    from repro.obs.explain import (
        load_trace_spans,
        render_round,
        render_session_listing,
    )

    with VideoDatabase(args.db) as db:
        if args.session is None:
            print(render_session_listing(db.query_sessions()))
            return 0
        rows = db.query_rounds(session_id=args.session)
        if not rows:
            rows = db.query_rounds(query_id=args.session)
        if not rows:
            print(f"error: no ledgered rounds for {args.session!r} in "
                  f"{args.db} (list sessions with: repro explain "
                  f"--db {args.db})", file=sys.stderr)
            return 1
        if args.round is not None:
            rows = [r for r in rows if r["round_index"] == args.round]
            if not rows:
                print(f"error: no ledgered round {args.round} for "
                      f"{args.session!r}", file=sys.stderr)
                return 1
    head = rows[0]
    print(f"session {head['session_id']} · corpus {head['corpus_id']} · "
          f"event {head['event']} · user {head['user_id']} · "
          f"{len(rows)} round(s)")
    trace_spans_by_query: dict = {}
    for row in rows:
        extra = ()
        if args.trace:
            qid = row["query_id"]
            if qid not in trace_spans_by_query:
                trace_spans_by_query[qid] = load_trace_spans(
                    args.trace, query_id=qid)
            extra = [e for e in trace_spans_by_query[qid]
                     if e.get("attrs", {}).get("query_round")
                     == row["round_index"]]
        print()
        print(render_round(row, extra_spans=extra))
    return 0


def _cmd_report(args) -> int:
    from repro.eval.report import generate_report

    names = ([part.strip() for part in args.only.split(",") if part.strip()]
             if args.only else None)
    text = generate_report(names=names, out_path=args.out,
                           progress=lambda line: print(line))
    if args.out:
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_delete_clip(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        db.delete_clip(args.clip)
    print(f"deleted clip {args.clip!r} from {args.db}")
    return 0


def _cmd_export_clip(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        db.export_clip(args.clip, args.out)
    print(f"exported clip {args.clip!r} to {args.out}")
    return 0


def _cmd_import_clip(args) -> int:
    from repro.db import VideoDatabase

    with VideoDatabase(args.db) as db:
        record = db.import_clip(args.bundle, replace=args.replace)
    print(f"imported clip {record.clip_id!r} into {args.db}")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.service import RetrievalHTTPServer, RetrievalService

    service = RetrievalService(args.db, max_sessions=args.max_sessions,
                               ledger=not args.no_ledger)
    server = RetrievalHTTPServer(service, host=args.host, port=args.port,
                                 max_workers=args.workers)
    try:
        server.start()
    except OSError as exc:
        service.close()
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"serving retrieval API on {server.url}")
    print("  POST /sessions                  create or resume a session")
    print("  POST /sessions/<id>/feed        submit a feedback round")
    print("  GET  /sessions/<id>/results     current ranking")
    print("  GET  /sessions/<id>/explain     per-round history")
    print("  GET  /metrics | /healthz        live telemetry")
    print("press Ctrl-C to stop")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        service.close()
    return 0


def _cmd_verify_db(args) -> int:
    from repro.db import VideoDatabase
    from repro.pipeline.store import DiskArtifactStore

    store = (DiskArtifactStore(args.artifact_cache)
             if args.artifact_cache else None)
    # quick_check=False: verify-db must be able to open a database that
    # the on-open check would reject — verify() re-runs the check and
    # reports it instead of refusing to look.
    with VideoDatabase(args.db, quick_check=False) as db:
        report = db.verify(repair=args.repair, artifact_store=store)
    print(f"quick_check: {report['quick_check']}")
    print(f"datasets checked: {report['datasets_checked']}")
    for issue in report["issues"]:
        action = issue.get("action") or "detected"
        print(f"  {issue['clip_id']}/{issue['event']}: "
              f"{issue['problem']} [{action}]")
    if report["issues"] and not args.repair:
        print("re-run with --repair (and --artifact-cache DIR) to "
              "rebuild or prune damaged datasets")
    print(f"repaired: {report['repaired']}")
    print("healthy" if report["healthy"] else "NOT healthy")
    return 0 if report["healthy"] else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "ingest": _cmd_ingest,
    "clips": _cmd_clips,
    "info": _cmd_info,
    "query": _cmd_query,
    "label": _cmd_label,
    "experiment": _cmd_experiment,
    "stats": _cmd_stats,
    "explain": _cmd_explain,
    "report": _cmd_report,
    "delete-clip": _cmd_delete_clip,
    "export-clip": _cmd_export_clip,
    "import-clip": _cmd_import_clip,
    "serve": _cmd_serve,
    "verify-db": _cmd_verify_db,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
