"""Unified telemetry for the retrieval system (zero dependencies).

The cross-cutting observability layer the performance PRs cite numbers
from: hierarchical **spans** around the pipeline/retrieval/reliability
hot paths, typed **metrics** (Counter / Gauge / Histogram with bounded
label sets), discrete warning **events**, and pluggable **exporters**
(always-on in-memory registry, JSONL trace files that survive process
pools, Prometheus text dumps).  ``repro.obs.report`` reduces a run to
the summary ``repro stats`` renders and ``repro.db`` persists.

Instrumented code talks to the module-level default registry::

    from repro.obs import get_telemetry

    t = get_telemetry()
    with t.span("segment", clip=clip_id):
        ...
    t.counter("pipeline.stage.cache_hit").inc(stage="segment")

Tests and benchmarks isolate themselves with :func:`set_telemetry` (or
``configure(enabled=False)`` to measure the uninstrumented baseline).
The registry is fork-inherited: ProcessPool workers record into their
own per-pid JSONL sidecars, merged into the parent trace on join.
"""

from repro.obs.bench import BENCH_SCHEMA, flatten_metrics, merge_bench
from repro.obs.context import (
    ContextTask,
    QueryContext,
    carry_context,
    current_attrs,
    current_context,
    new_query_id,
    query_context,
)
from repro.obs.explain import (
    build_span_tree,
    load_trace_spans,
    merge_span_events,
    render_round,
    render_session_listing,
    render_span_tree,
)
from repro.obs.exporters import (
    TraceWriter,
    merge_worker_traces,
    prometheus_text,
    write_prometheus,
)
from repro.obs.live import (
    LiveMetricsServer,
    count_client_disconnect,
    render_healthz,
    render_metrics,
)
from repro.obs.metrics import (
    MAX_LABEL_SETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    bucket_quantile,
    quantile_from_snapshot,
)
from repro.obs.profile import RoundProfile, TailProfiler
from repro.obs.registry import DEFAULT_METRICS, Telemetry
from repro.obs.report import SUMMARY_SCHEMA, render_run_report, run_summary
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLObjective,
    SLOStatus,
    evaluate_slos,
    evaluate_slos_from_summary,
    render_slos,
)
from repro.obs.spans import Span

__all__ = [
    "Telemetry",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MAX_LABEL_SETS",
    "DEFAULT_METRICS",
    "TraceWriter",
    "merge_worker_traces",
    "prometheus_text",
    "write_prometheus",
    "run_summary",
    "render_run_report",
    "SUMMARY_SCHEMA",
    "BENCH_SCHEMA",
    "flatten_metrics",
    "merge_bench",
    "bucket_quantile",
    "quantile_from_snapshot",
    "QueryContext",
    "query_context",
    "current_context",
    "current_attrs",
    "new_query_id",
    "carry_context",
    "ContextTask",
    "TailProfiler",
    "RoundProfile",
    "LiveMetricsServer",
    "render_metrics",
    "render_healthz",
    "count_client_disconnect",
    "build_span_tree",
    "render_span_tree",
    "render_round",
    "render_session_listing",
    "load_trace_spans",
    "merge_span_events",
    "SLObjective",
    "SLOStatus",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "evaluate_slos_from_summary",
    "render_slos",
    "get_telemetry",
    "set_telemetry",
    "configure",
]

_default = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide registry the instrumentation layer records into."""
    return _default


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-wide registry (returns the previous one)."""
    global _default
    previous, _default = _default, telemetry
    return previous


def configure(*, enabled: bool | None = None, trace_path=None) -> Telemetry:
    """Configure the process-wide registry in place (see
    :meth:`Telemetry.configure`)."""
    return _default.configure(enabled=enabled, trace_path=trace_path)
