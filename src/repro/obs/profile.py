"""Tail-latency capture: a zero-dependency sampling profiler.

Why sampling, why tail-only: instrumenting every round with a tracing
profiler would blow the telemetry overhead budget, and profiling *fast*
rounds answers nothing.  So :class:`TailProfiler` arms a cheap ticker
thread around each round — ``sys._current_frames()`` every few
milliseconds, stack walked and folded — and at round exit *keeps* the
samples only when the round's wall time beat the latency threshold.
The first tick is deferred until the round has already run half the
keep threshold, so a fast round costs zero wakeups; a slow round
leaves a collapsed-stack profile (the ``func (file:line);...  count``
format flamegraph tooling eats) attached to the trace and the quality
ledger.

The sampler targets the arming thread only: ``sys._current_frames``
returns every thread's frame, but profiling the round means profiling
the thread running it, not the live-metrics server or the ticker
itself.
"""

from __future__ import annotations

import os.path
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = ["TailProfiler", "RoundProfile", "collapse_frame"]


def collapse_frame(frame) -> str:
    """One sampled stack, root-first, in collapsed-stack notation."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append(f"{code.co_name} "
                     f"({os.path.basename(code.co_filename)}:"
                     f"{frame.f_lineno})")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class RoundProfile:
    """Samples from one armed round, resolved at round exit."""

    def __init__(self, threshold_ms: float) -> None:
        self.threshold_ms = threshold_ms
        self.samples: dict[str, int] = {}
        self.wall_ms = 0.0
        self.kept = False

    def sample_count(self) -> int:
        return sum(self.samples.values())

    def collapsed(self) -> str:
        """Profile as collapsed-stack text, heaviest stacks first."""
        lines = sorted(self.samples.items(),
                       key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {n}" for stack, n in lines)


class _Sampler:
    """One persistent daemon ticker, armed per round.

    Spawning a thread per round costs ~100 µs — enough to blow the
    combined-observability budget on millisecond rounds.  So the ticker
    is created once per profiler and parks on an Event between rounds:
    arming is an Event set plus two reference stores, disarming an
    Event clear, both microseconds.  All sampling writes happen under
    ``_lock``, and ``disarm`` nulls the targets under the same lock, so
    once ``disarm`` returns no further sample lands in the round's dict.
    """

    def __init__(self, interval_s: float) -> None:
        self.interval_s = interval_s
        self._armed = threading.Event()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._target_ident: int | None = None
        self._samples: dict[str, int] | None = None
        self._first_delay_s = interval_s
        self._thread: threading.Thread | None = None

    def arm(self, target_ident: int, samples: dict[str, int],
            first_delay_s: float | None = None) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-sampler", daemon=True)
            self._thread.start()
        with self._lock:
            self._target_ident = target_ident
            self._samples = samples
            self._first_delay_s = (self.interval_s if first_delay_s is None
                                   else first_delay_s)
        self._armed.set()

    def disarm(self) -> None:
        self._armed.clear()
        with self._lock:
            self._target_ident = None
            self._samples = None

    def shutdown(self) -> None:
        self._stop.set()
        self._armed.set()  # release a parked ticker so it can exit
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while True:
            self._armed.wait()
            if self._stop.is_set():
                return
            # The first wait per armed round is the keep-threshold grace
            # period: a round disarmed before it elapses was never going
            # to keep its profile, and it costs zero ticks.
            if self._stop.wait(self._first_delay_s):
                return
            while True:
                with self._lock:
                    target, samples = self._target_ident, self._samples
                    if target is None or samples is None:
                        break  # disarmed; park on the outer wait
                    frame = sys._current_frames().get(target)
                    if frame is not None:
                        stack = collapse_frame(frame)
                        samples[stack] = samples.get(stack, 0) + 1
                if self._stop.wait(self.interval_s):
                    return


class TailProfiler:
    """Arms a sampler per round; keeps the profile only for slow rounds.

    Parameters
    ----------
    threshold_ms:
        Rounds at or above this wall time keep their profile; faster
        rounds discard it (that is the "tail capture" contract).
    interval_s:
        Sampling period.  5 ms ≈ 200 Hz — coarse enough to be nearly
        free, fine enough to localise a 100 ms stall.
    max_profiles:
        Kept profiles are a bounded deque — a pathological session
        can't grow memory through its own profiler.
    """

    def __init__(self, threshold_ms: float, *, interval_s: float = 0.005,
                 clock=time.perf_counter, max_profiles: int = 16) -> None:
        if threshold_ms <= 0:
            raise ConfigurationError(
                f"threshold_ms must be > 0, got {threshold_ms}")
        if interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be > 0, got {interval_s}")
        self.threshold_ms = float(threshold_ms)
        self.interval_s = float(interval_s)
        self.clock = clock
        self.max_profiles = int(max_profiles)
        #: Kept (tail) profiles, oldest first.
        self.profiles: list[RoundProfile] = []
        self._sampler = _Sampler(self.interval_s)

    @contextmanager
    def round(self, **attrs) -> Iterator[RoundProfile]:
        """Sample the calling thread for the duration of the block."""
        profile = RoundProfile(self.threshold_ms)
        t0 = self.clock()
        first_delay_s = max(self.interval_s, self.threshold_ms / 2000.0)
        self._sampler.arm(threading.get_ident(), profile.samples,
                          first_delay_s)
        try:
            yield profile
        finally:
            self._sampler.disarm()
            profile.wall_ms = (self.clock() - t0) * 1000.0
            self._resolve(profile, attrs)

    def close(self) -> None:
        """Stop the ticker thread (long-lived services shutting down)."""
        self._sampler.shutdown()

    def _resolve(self, profile: RoundProfile, attrs: dict) -> None:
        from repro.obs import get_telemetry  # late: avoids module cycle

        obs = get_telemetry()
        if profile.wall_ms >= self.threshold_ms:
            profile.kept = True
            self.profiles.append(profile)
            if len(self.profiles) > self.max_profiles:
                del self.profiles[0]
            obs.counter("obs.profiles.captured").inc()
            obs.event("obs.profile_captured", level="warning",
                      wall_ms=round(profile.wall_ms, 3),
                      threshold_ms=self.threshold_ms,
                      samples=profile.sample_count(),
                      profile=profile.collapsed(), **attrs)
        else:
            profile.samples.clear()
            obs.counter("obs.profiles.discarded").inc()

    def write_profiles(self, directory) -> list[str]:
        """Dump kept profiles as ``.collapsed`` files; returns paths."""
        import pathlib

        out = pathlib.Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths = []
        for i, profile in enumerate(self.profiles):
            path = out / f"profile-{i:03d}-{int(profile.wall_ms)}ms.collapsed"
            path.write_text(profile.collapsed() + "\n", encoding="utf-8")
            paths.append(str(path))
        return paths
