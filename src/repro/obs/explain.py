"""Offline span-tree reconstruction: the engine behind ``repro explain``.

The quality ledger (:meth:`repro.db.VideoDatabase.record_query_round`)
stores each round's serialized span events; a JSONL trace adds the spans
worker processes recorded into their sidecars (same ``query_id``,
different pid).  This module folds both back into the tree the live
span stack built — ``span_id``/``parent_id`` are pid-prefixed, so
cross-process records never collide — and renders a flame-style
per-round breakdown: wall time, share of the round, nesting, and the
attrs that explain *why* (clip, candidates, nprobe, ...).

Everything here is pure data → text, no registry access, so the CLI can
explain a database from a process that never ran a query.
"""

from __future__ import annotations

import json

__all__ = ["build_span_tree", "render_span_tree", "render_round",
           "render_session_listing", "load_trace_spans", "merge_span_events"]

#: Context attrs stamped on every span of a round — noise when the
#: whole tree shares them, so the renderer drops them per line.
_CONTEXT_ATTRS = ("query_id", "session_id", "query_round")


def load_trace_spans(path, query_id: str | None = None) -> list[dict]:
    """Span events from a JSONL trace, optionally one query's only.

    Torn or non-JSON lines are skipped (the merge tool already drops
    them, but an explain over a live trace must not crash on the tail).
    """
    spans: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or record.get("type") != "span":
                continue
            if query_id is not None and \
                    record.get("attrs", {}).get("query_id") != query_id:
                continue
            spans.append(record)
    return spans


def merge_span_events(*groups) -> list[dict]:
    """Union span-event lists, deduplicated by ``(pid, span_id)``."""
    seen: set = set()
    merged: list[dict] = []
    for group in groups:
        for event in group:
            key = (event.get("pid"), event.get("span_id"))
            if key in seen:
                continue
            seen.add(key)
            merged.append(event)
    return merged


def build_span_tree(events) -> list[dict]:
    """Nest span events into ``{"event", "children"}`` nodes.

    A span whose parent is not in ``events`` (e.g. the enclosing CLI
    span was not harvested) becomes a root.  Siblings are ordered by
    start time, so the tree reads in execution order.
    """
    nodes = {e["span_id"]: {"event": e, "children": []} for e in events}
    roots: list[dict] = []
    for event in events:
        node = nodes[event["span_id"]]
        parent = nodes.get(event.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def order(items):
        items.sort(key=lambda n: n["event"].get("started_at", 0.0))
        for item in items:
            order(item["children"])
    order(roots)
    return roots


def _attr_text(event: dict) -> str:
    attrs = {k: v for k, v in event.get("attrs", {}).items()
             if k not in _CONTEXT_ATTRS}
    if not attrs:
        return ""
    return " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_span_tree(events, *, total_ms: float | None = None) -> str:
    """Flame-style indented rendering of one round's spans."""
    roots = build_span_tree(events)
    if not roots:
        return "  (no spans recorded)"
    if total_ms is None:
        total_ms = sum(r["event"]["wall_ms"] for r in roots)
    root_pid = roots[0]["event"].get("pid")
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        event = node["event"]
        wall = event.get("wall_ms", 0.0)
        pct = (100.0 * wall / total_ms) if total_ms else 0.0
        marker = ""
        if event.get("pid") != root_pid:
            marker = f" [pid {event.get('pid')}]"
        if event.get("status") == "error":
            marker += f" !ERROR {event.get('error_type', '')}"
        lines.append(f"  {wall:9.2f} ms {pct:5.1f}%  "
                     f"{'  ' * depth}{event['name']}"
                     f"{_attr_text(event)}{marker}")
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def _percent(value) -> str:
    return "n/a" if value is None else f"{100.0 * value:.1f}%"


def render_round(row: dict, *, extra_spans=()) -> str:
    """One quality-ledger row as a human-readable round report."""
    detail = row.get("detail") or {}
    lines = [
        f"round {row['round_index']} · {row['op']} · "
        f"{row['latency_ms']:.1f} ms · {row['created_at']} · "
        f"query {row['query_id']}"
    ]
    quality: list[str] = []
    recall = detail.get("nomination_recall")
    if recall is not None:
        quality.append(f"nomination recall {recall:.3f}")
    engine = detail.get("engine") or {}
    if engine.get("bags_total"):
        quality.append(
            f"bags scored {engine['bags_scored']}/{engine['bags_total']} "
            f"({_percent(detail.get('bags_scanned_fraction'))} scanned)")
    cache = detail.get("cache") or {}
    if cache.get("hit_rate") is not None:
        quality.append(f"gram cache hit-rate "
                       f"{_percent(cache['hit_rate'])}")
    if quality:
        lines.append("  " + " | ".join(quality))
    coverage = detail.get("coverage")
    if coverage:
        lines.append(f"  coverage: {coverage['summary']}")
    spans = merge_span_events(row.get("spans") or [], extra_spans)
    lines.append(render_span_tree(spans, total_ms=row["latency_ms"]))
    for shard in engine.get("shards", ()):
        recall_txt = ("n/a" if shard.get("nomination_recall") is None
                      else f"{shard['nomination_recall']:.3f}")
        wall = shard.get("wall_ms")
        wall_txt = "n/a" if wall is None else f"{wall:.2f} ms"
        lines.append(
            f"    shard {shard['clip_id']}: {shard['candidates']}"
            f"/{shard['n_bags']} candidates, recall {recall_txt}, "
            f"{wall_txt}")
    if row.get("profile"):
        stacks = row["profile"].splitlines()
        samples = detail.get("profile_wall_ms")
        suffix = f" ({samples:.1f} ms profiled)" if samples else ""
        lines.append(f"  tail profile captured — "
                     f"{len(stacks)} distinct stack(s){suffix}:")
        lines.extend(f"    {s}" for s in stacks[:5])
        if len(stacks) > 5:
            lines.append(f"    ... {len(stacks) - 5} more")
    return "\n".join(lines)


def render_session_listing(sessions) -> str:
    """The index ``repro explain`` prints when no session is named."""
    if not sessions:
        return ("(no ledgered query rounds; run 'repro query'/'repro "
                "label' against this database first)")
    lines = [f"{len(sessions)} ledgered session(s):"]
    for s in sessions:
        lines.append(
            f"  {s['session_id']}  query={s['query_id']}  "
            f"rounds={s['rounds']} (last round {s['last_round']} "
            f"at {s['last_at']})")
    return "\n".join(lines)
