"""Query correlation context: who a span belongs to, carried implicitly.

Spans already form per-thread trees (PR 4), but a tree without identity
cannot answer "show me round 7 of *this* query".  This module holds a
:class:`QueryContext` — query id, session id, round index — in a
:mod:`contextvars` variable; :meth:`Telemetry.span` and
:meth:`Telemetry.event` read it on every record, so the whole call chain
(session → engine → shard → nominator → cache) is stamped with one
``query_id`` without threading arguments through ten layers.

Process pools do not inherit contextvars, so :func:`carry_context`
wraps a task callable in a picklable :class:`ContextTask` that re-enters
the submitting context inside the worker — the worker's sidecar spans
then carry the same ``query_id`` and correlate after
``merge_worker_traces`` folds them into the main trace.

Context attrs land on *spans and events only*, never on metric label
sets: a per-query metric label is unbounded cardinality and would trip
:data:`~repro.obs.metrics.MAX_LABEL_SETS` by design.  The per-query
dimension lives in the quality ledger (:mod:`repro.db`) instead.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

__all__ = ["QueryContext", "query_context", "current_context",
           "current_attrs", "new_query_id", "carry_context", "ContextTask"]

_CONTEXT: ContextVar["QueryContext | None"] = ContextVar(
    "repro_query_context", default=None)


def new_query_id() -> str:
    """A fresh, short, url/filename-safe query identifier."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class QueryContext:
    """Immutable correlation identity for one query's call chain.

    The attribute names (``query_id``/``session_id``/``query_round``)
    are chosen not to collide with existing span attrs (``rf.round``
    already uses ``round=``); explicit span attrs win on collision.
    """

    query_id: str
    session_id: str = ""
    query_round: int | None = None

    def attrs(self) -> dict:
        out = {"query_id": self.query_id}
        if self.session_id:
            out["session_id"] = self.session_id
        if self.query_round is not None:
            out["query_round"] = self.query_round
        return out


def current_context() -> QueryContext | None:
    return _CONTEXT.get()


def current_attrs() -> dict:
    """Attrs of the active context; ``{}`` when none (the hot path)."""
    ctx = _CONTEXT.get()
    return ctx.attrs() if ctx is not None else {}


@contextmanager
def query_context(query_id: str | None = None, *, session_id: str = "",
                  query_round: int | None = None) -> Iterator[QueryContext]:
    """Enter a correlation context; nested calls inherit unset fields.

    A nested ``query_context(query_round=3)`` keeps the enclosing
    query/session identity and only advances the round — which is
    exactly how a session wraps each feedback round.
    """
    parent = _CONTEXT.get()
    if query_id is None:
        query_id = parent.query_id if parent is not None else new_query_id()
    if not session_id and parent is not None:
        session_id = parent.session_id
    if query_round is None and parent is not None:
        query_round = parent.query_round
    ctx = QueryContext(query_id=query_id, session_id=session_id,
                       query_round=query_round)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


class ContextTask:
    """Picklable callable that re-enters a context in a worker process.

    Process-pool workers start with an empty contextvars context, so the
    submitting side freezes its :class:`QueryContext` into this wrapper;
    the worker re-enters it around the real callable and every span it
    records into its JSONL sidecar carries the submitting query_id.
    """

    __slots__ = ("fn", "context")

    def __init__(self, fn, context: QueryContext) -> None:
        self.fn = fn
        self.context = context

    def __call__(self, *args, **kwargs):
        ctx = self.context
        with query_context(ctx.query_id, session_id=ctx.session_id,
                           query_round=ctx.query_round):
            return self.fn(*args, **kwargs)


def carry_context(fn):
    """``fn`` wrapped to carry the active context, or unchanged if none."""
    ctx = _CONTEXT.get()
    if ctx is None:
        return fn
    return ContextTask(fn, ctx)
