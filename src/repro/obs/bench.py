"""One schema for every ``BENCH_*.json`` file at the repo root.

Benchmarks record their numbers as telemetry gauges/counters and merge
them here, so ``BENCH_pipeline.json``, ``BENCH_obs.json`` (and future
perf PRs) all serialize identically::

    {
      "<section>": {
        "schema": "repro-bench-v1",
        "meta": {...free-form context...},
        "metrics": {"bench.cold_total_s": 4.21,
                    "bench.cold_s{window=2}": 1.07, ...}
      }
    }

``metrics`` is a flat name->number map — histograms contribute
``<name>.count`` / ``<name>.sum`` / ``<name>.mean`` entries — because
benchmark diffs should be greppable without a parser.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["BENCH_SCHEMA", "flatten_metrics", "merge_bench"]

BENCH_SCHEMA = "repro-bench-v1"


def _series_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}"
                          for k, v in sorted(labels.items())) + "}"


def flatten_metrics(telemetry) -> dict[str, float]:
    """Flatten a registry's sampled series to ``name{labels} -> number``."""
    flat: dict[str, float] = {}
    for snap in telemetry.metrics_snapshot():
        for series in snap["series"]:
            key = snap["name"] + _series_suffix(series.get("labels", {}))
            if snap["kind"] == "histogram":
                flat[key + ".count"] = series["count"]
                flat[key + ".sum"] = round(series["sum"], 6)
                if series["count"]:
                    flat[key + ".mean"] = round(series["mean"], 6)
            else:
                flat[key] = round(series["value"], 6)
    return flat


def merge_bench(path: str | Path, section: str, telemetry,
                meta: dict | None = None) -> dict:
    """Write one benchmark section (read-modify-write, other sections
    kept) and return the full document."""
    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = {}
    data[section] = {
        "schema": BENCH_SCHEMA,
        "meta": dict(meta or {}),
        "metrics": flatten_metrics(telemetry),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data
