"""Live scrape endpoint: ``/metrics`` and ``/healthz`` over stdlib HTTP.

The stepping stone to the multi-tenant service: a daemon
``ThreadingHTTPServer`` thread that renders the process-wide registry on
demand — ``/metrics`` is Prometheus text (the exact output of
:func:`~repro.obs.exporters.prometheus_text`, so scrape and file dump
never disagree) and ``/healthz`` is a JSON health document that folds in
the declared SLOs (:mod:`repro.obs.slo`): status ``ok`` while every
objective with samples is met, ``degraded`` otherwise.

The rendering itself lives in :func:`render_metrics` /
:func:`render_healthz` so the retrieval service (:mod:`repro.service`)
serves byte-identical ``/metrics`` and ``/healthz`` documents without
duplicating the logic.

The server resolves the registry *per request* (via a callable, default
:func:`repro.obs.get_telemetry`), so tests that swap registries and the
CLI's per-command registries are always the thing scraped.  ``port=0``
binds an ephemeral port — the chosen one is in :attr:`port`/:attr:`url`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.exporters import prometheus_text
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos

__all__ = ["LiveMetricsServer", "render_metrics", "render_healthz",
           "count_client_disconnect"]


def render_metrics(telemetry) -> tuple[int, str, bytes]:
    """``(status, content_type, body)`` for a ``/metrics`` scrape."""
    body = prometheus_text(telemetry).encode("utf-8")
    return 200, "text/plain; version=0.0.4", body


def render_healthz(telemetry, slos=DEFAULT_SLOS) -> tuple[int, str, bytes]:
    """``(status, content_type, body)`` for a ``/healthz`` probe.

    Healthy (200/``ok``) while every SLO *with samples* is met; 503 /
    ``degraded`` once any sampled objective is breached.  Unsampled
    objectives are listed but never fail the probe — an idle service is
    not a broken one.
    """
    statuses = evaluate_slos(telemetry, slos)
    sampled = [st for st in statuses if st.samples > 0]
    healthy = all(st.met for st in sampled)
    doc = {
        "status": "ok" if healthy else "degraded",
        "slos": [{
            "name": st.name,
            "met": st.met,
            "samples": st.samples,
            "measured": None if st.samples == 0 else st.measured,
            "burn_rate": st.burn_rate,
        } for st in statuses],
    }
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return (200 if healthy else 503), "application/json", body


def count_client_disconnect(telemetry) -> None:
    """Account a response abandoned because the client hung up.

    A scraper or service client closing its socket mid-response is the
    client's business, not a server fault: the write error is swallowed
    and the occurrence counted so a disconnect storm is still visible
    on the very endpoint that survives it.
    """
    telemetry.counter("obs.live.client_disconnects").inc()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "LiveMetricsServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        telemetry = owner.resolve_telemetry()
        bucket = path if path in ("/metrics", "/healthz") else "other"
        telemetry.counter("obs.live.requests").inc(path=bucket)
        if path == "/metrics":
            self._reply(*render_metrics(telemetry))
        elif path == "/healthz":
            self._reply(*render_healthz(telemetry, owner.slos))
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-scrape.  Without this guard the
            # error escapes the handler thread and socketserver dumps a
            # traceback to stderr for every abandoned request.
            owner: "LiveMetricsServer" = self.server.owner  # type: ignore[attr-defined]
            count_client_disconnect(owner.resolve_telemetry())
            self.close_connection = True

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # scrapes must not spam the console


class LiveMetricsServer:
    """Background scrape endpoint for one process.

    Usable as a context manager; ``stop()`` (or exiting the ``with``
    block) shuts the listener down and joins the serving thread.  By
    default the *current* process-wide registry is served, whatever
    :func:`~repro.obs.set_telemetry` has made current by scrape time.
    """

    def __init__(self, telemetry=None, *, host: str = "127.0.0.1",
                 port: int = 0, slos=DEFAULT_SLOS) -> None:
        self._fixed_telemetry = telemetry
        self.host = host
        self.requested_port = port
        self.slos = tuple(slos)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def resolve_telemetry(self):
        if self._fixed_telemetry is not None:
            return self._fixed_telemetry
        from repro.obs import get_telemetry  # late: avoids module cycle

        return get_telemetry()

    # ------------------------------------------------------------ control
    def start(self) -> "LiveMetricsServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self.requested_port),
                                    _Handler)
        httpd.daemon_threads = True
        httpd.owner = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-obs-live", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "LiveMetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
