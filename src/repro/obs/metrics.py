"""Typed metrics: Counter, Gauge, Histogram with bounded label sets.

A metric is a named family of time series, one per distinct label set
(``counter.inc(stage="segment")`` and ``counter.inc(stage="track")`` are
two series of one family).  Label *values* are always coerced to
strings, label *keys* are sorted, so a series identity is stable no
matter the call-site keyword order.

Cardinality is guarded: a family refuses to grow past
:data:`MAX_LABEL_SETS` distinct label sets and raises
:class:`~repro.errors.ConfigurationError` instead — an unbounded label
(a timestamp, a key hash) is an instrumentation bug, and silently
materialising millions of series is how telemetry takes a process down.

Everything is in-process and dependency-free; exporters
(:mod:`repro.obs.exporters`) turn the snapshot into JSONL or
Prometheus text.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

from repro.errors import ConfigurationError

__all__ = ["MAX_LABEL_SETS", "Metric", "Counter", "Gauge", "Histogram",
           "bucket_quantile", "quantile_from_snapshot"]

#: Hard ceiling on distinct label sets per metric family.
MAX_LABEL_SETS = 64


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """One named metric family; subclasses define the series payload."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _series_for(self, labels: dict):
        key = _label_key(labels)
        try:
            return self._series[key]
        except KeyError:
            pass
        with self._lock:
            if key not in self._series:
                if len(self._series) >= MAX_LABEL_SETS:
                    raise ConfigurationError(
                        f"metric {self.name!r} would exceed "
                        f"{MAX_LABEL_SETS} label sets; unbounded labels "
                        f"(offending set: {dict(key)!r}) are an "
                        f"instrumentation bug")
                self._series[key] = self._new_series()
            return self._series[key]

    def _new_series(self):
        raise NotImplementedError

    # ------------------------------------------------------------ export
    def series(self) -> list[tuple[dict, object]]:
        """``(labels, payload)`` per series, sorted by label set."""
        with self._lock:
            items = sorted(self._series.items())
        return [(dict(key), payload) for key, payload in items]

    def snapshot(self) -> dict:
        """JSON-ready description of the whole family."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [dict(labels=labels, **self._payload_dict(payload))
                       for labels, payload in self.series()],
        }

    def _payload_dict(self, payload) -> dict:
        return {"value": payload}


class _Cell:
    """Mutable float holder (a plain float can't live in a dict slot
    and be incremented without replacing it under races)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(Metric):
    """Monotonically increasing count (events, hits, retries)."""

    kind = "counter"

    def _new_series(self) -> _Cell:
        return _Cell()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self._series_for(labels).value += amount

    def value(self, **labels) -> float:
        return self._series_for(labels).value

    def total(self) -> float:
        """Sum over every label set."""
        return sum(cell.value for _, cell in self.series())

    def _payload_dict(self, payload: _Cell) -> dict:
        return {"value": payload.value}


class Gauge(Metric):
    """Point-in-time value (sizes, ratios, last-seen quantities)."""

    kind = "gauge"

    def _new_series(self) -> _Cell:
        return _Cell()

    def set(self, value: float, **labels) -> None:
        self._series_for(labels).value = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self._series_for(labels).value += amount

    def value(self, **labels) -> float:
        return self._series_for(labels).value

    def _payload_dict(self, payload: _Cell) -> dict:
        return {"value": payload.value}


#: Default bucket bounds: latencies in ms and solver iteration counts
#: both fit a 0.1..1e5 log-ish spread.  The sub-millisecond rungs keep
#: fast feedback rounds (~2-3 ms) from collapsing into one bucket, and
#: the 25000/50000 rungs close what used to be a 10x gap before +Inf —
#: both matter once quantiles are interpolated from bucket counts.
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0,
                   100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
                   10000.0, 25000.0, 50000.0, 100000.0)


def bucket_quantile(bounds, cumulative, total: int, q: float) -> float:
    """Prometheus-style linear interpolation inside the target bucket.

    ``bounds`` are the finite upper bounds, ``cumulative`` the running
    counts aligned with them (``cumulative[i]`` = observations <=
    ``bounds[i]``) and ``total`` the overall count including the +Inf
    bucket.  Observations landing past the last finite bound clamp to
    it — an honest "at least this much" rather than a fabricated tail.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    if total <= 0 or not bounds:
        return math.nan
    target = q * total
    prev_cum = 0
    for i, (bound, cum) in enumerate(zip(bounds, cumulative)):
        if cum >= target:
            lo = bounds[i - 1] if i > 0 else 0.0
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return bound
            return lo + (bound - lo) * (target - prev_cum) / in_bucket
        prev_cum = cum
    return bounds[-1]


def quantile_from_snapshot(series: dict, q: float) -> float:
    """Quantile from one snapshot-series dict (``buckets``/``count``).

    Accepts the ``_payload_dict`` shape persisted in run summaries and
    the ledger, so ``repro stats`` and the SLO layer can interpolate
    quantiles from saved JSON exactly like from a live histogram.
    """
    buckets = series.get("buckets") or {}
    total = int(series.get("count") or 0)
    finite = sorted((float(k), int(v)) for k, v in buckets.items()
                    if k != "+Inf")
    bounds = tuple(b for b, _ in finite)
    cumulative = tuple(c for _, c in finite)
    return bucket_quantile(bounds, cumulative, total, q)


class _HistSeries:
    __slots__ = ("count", "sum", "counts")

    def __init__(self, n_buckets: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket


class Histogram(Metric):
    """Distribution of observations over fixed bucket upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be sorted and unique")
        self.buckets = bounds

    def _new_series(self) -> _HistSeries:
        return _HistSeries(len(self.buckets))

    def observe(self, value: float, **labels) -> None:
        series = self._series_for(labels)
        value = float(value)
        series.count += 1
        series.sum += value
        series.counts[bisect_left(self.buckets, value)] += 1

    def quantile(self, q: float, **labels) -> float:
        """Bucket-interpolated quantile for one series (NaN if absent).

        Looks the series up without materialising it, so probing an
        unsampled histogram never creates an empty series.
        """
        with self._lock:
            payload = self._series.get(_label_key(labels))
        if payload is None:
            return math.nan
        cumulative, running = [], 0
        for n in payload.counts[:-1]:
            running += n
            cumulative.append(running)
        return bucket_quantile(self.buckets, cumulative, payload.count, q)

    def _payload_dict(self, payload: _HistSeries) -> dict:
        cumulative, running = {}, 0
        for bound, n in zip(self.buckets, payload.counts):
            running += n
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = payload.count
        mean = payload.sum / payload.count if payload.count else math.nan
        return {"count": payload.count, "sum": payload.sum,
                "mean": mean, "buckets": cumulative}
