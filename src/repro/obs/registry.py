"""The telemetry registry: spans, metrics, events, and exporters.

One :class:`Telemetry` object owns everything the instrumentation layer
records: the per-thread span stack, the metric families, a bounded
buffer of finished spans, warning/info events, and an optional JSONL
:class:`~repro.obs.exporters.TraceWriter`.  The module-level default
instance (see :mod:`repro.obs`) is what the hot paths talk to; tests and
benchmarks swap in a fresh instance or disable it wholesale.

Design constraints, in order:

* **Cheap when idle.**  With ``enabled=False`` every operation is a
  couple of attribute checks — the <3% overhead budget on the vision
  pipeline (``BENCH_obs.json``) is enforced by benchmark.
* **Zero dependencies.**  Standard library only; importable from any
  layer without cycles (only :mod:`repro.errors` is touched).
* **Fork-safe.**  A worker process inherits the registry; its spans and
  trace lines stay process-local (per-worker JSONL sidecars merged on
  join), so parent counters are never silently half-updated.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.context import current_attrs
from repro.obs.exporters import TraceWriter, merge_worker_traces
from repro.obs.metrics import Counter, Gauge, Histogram, Metric
from repro.obs.spans import Span

__all__ = ["Telemetry", "DEFAULT_METRICS"]

#: The system's core metric surface, declared up front so exporters
#: always name the full schema even for families with no samples yet.
#: ``(kind, name, help)`` — labels are free-form at call sites.
DEFAULT_METRICS: tuple[tuple[str, str, str], ...] = (
    ("counter", "pipeline.stage.cache_hit",
     "stage artifacts replayed from the artifact store, by stage"),
    ("counter", "pipeline.stage.cache_miss",
     "stage executions that could not be served from the store, by stage"),
    ("counter", "pipeline.integrity_recoveries",
     "resume loads demoted to a full recompute by a failed verification"),
    ("counter", "store.quarantined",
     "artifact blobs moved to quarantine/, by failure reason"),
    ("counter", "svm.gram.columns_reused",
     "kernel columns served from the GramCache across RF rounds"),
    ("counter", "svm.gram.columns_computed",
     "kernel columns evaluated because the GramCache missed"),
    ("histogram", "svm.solver.iterations",
     "SMO solver iterations per one-class fit, by learner"),
    ("histogram", "rf.round.latency_ms",
     "wall-clock latency of one relevance-feedback round"),
    ("gauge", "rf.round.ranking_size",
     "bags returned to the user in the latest feedback round"),
    ("histogram", "sharded.shard.candidates",
     "candidate bags nominated per shard per ranking round"),
    ("histogram", "sharded.shard.score_span",
     "max-min spread of the exact candidate scores within one shard"),
    ("counter", "sharded.bags_scored",
     "bags scored exactly (SVM or heuristic fallback) across all shards"),
    ("counter", "sharded.bags_pruned",
     "bags the heuristic prefilter kept out of exact scoring"),
    ("counter", "index.builds",
     "IVF indexes built (k-means cells over a shard's instance rows)"),
    ("counter", "index.cells_probed",
     "IVF cells gathered across all probe calls"),
    ("counter", "index.rows_gathered",
     "instance rows touched by IVF probes (the sublinear scan cost)"),
    ("counter", "index.bags_nominated",
     "bags nominated by IVF probes before the top-M cap"),
    ("gauge", "index.nomination_recall",
     "fraction of the heuristic top-M set the latest IVF probe kept"),
    ("counter", "index.stale_tail_routed",
     "un-indexed appended bags routed around a stale IVF index"),
    ("counter", "index.rebuilds",
     "IVF indexes re-clustered after the appended tail crossed the "
     "rebuild threshold"),
    ("counter", "ingest.segments",
     "clip segments pushed through the streaming pipeline, by outcome"),
    ("counter", "ingest.bags_emitted",
     "window bags emitted as final by the streaming frontier"),
    ("counter", "ingest.segments_appended",
     "segments whose bags were durably appended to the database"),
    ("counter", "ingest.segments_skipped",
     "already-durable segments skipped by an exactly-once resume"),
    ("gauge", "ingest.lag_frames",
     "frames processed but not yet queryable (behind the stable "
     "frontier)"),
    ("gauge", "ingest.segments_per_sec",
     "streaming ingest throughput over the current clip"),
    ("counter", "sharded.bags_appended",
     "bags absorbed in place by live corpus shards, by clip"),
    ("counter", "sharded.corpus_syncs",
     "engine cache invalidations triggered by live corpus mutations"),
    ("counter", "reliability.task.retries",
     "task attempts re-submitted after a transient failure, by reason"),
    ("counter", "reliability.task.timeouts",
     "tasks abandoned for exceeding their wall-clock budget"),
    ("counter", "reliability.task.failures",
     "tasks that exhausted retries, by error type"),
    ("counter", "reliability.pool.restarts",
     "process pools rebuilt after a BrokenExecutor"),
    ("histogram", "reliability.retry.backoff_ms",
     "total backoff slept per RetryPolicy.run call"),
    ("counter", "sharded.shard_failures",
     "shard loads/refreshes that failed and entered quarantine, by clip"),
    ("counter", "sharded.shard_recoveries",
     "quarantined shards that rejoined after a successful reprobe"),
    ("counter", "sharded.degraded_rounds",
     "ranking rounds served with >= 1 shard skipped (degraded policy)"),
    ("gauge", "sharded.quarantined_shards",
     "corpus shards currently quarantined by the backoff schedule"),
    ("counter", "ingest.segments_retried",
     "segments re-processed because their last journal state was "
     "'failed'"),
    ("counter", "faults.injected",
     "chaos-layer faults fired, by operation seam and fault kind"),
    ("counter", "sim.projection_clipped",
     "simulated track points dropped at the camera horizon during "
     "rendering"),
    ("counter", "store.tmp_unlink_failures",
     "atomic-write temp files that could not be cleaned up, by store"),
    ("histogram", "query.round.latency_ms",
     "wall-clock latency of one user-facing query-session round"),
    ("gauge", "query.coverage_fraction",
     "fraction of corpus bags actually covered by the latest round"),
    ("counter", "query.ledger_rounds",
     "per-round quality-ledger rows persisted, by operation"),
    ("counter", "obs.profiles.captured",
     "tail-latency profiles kept because the round beat the threshold"),
    ("counter", "obs.profiles.discarded",
     "armed round profiles dropped because the round was fast enough"),
    ("counter", "obs.live.requests",
     "HTTP requests served by the live metrics endpoint, by path"),
    ("counter", "obs.live.client_disconnects",
     "responses abandoned because the client hung up mid-write"),
    ("counter", "query.session_conflicts",
     "feedback rounds rejected by the optimistic session-round guard"),
    ("counter", "sharded.corpus_pool_hits",
     "shared-corpus pool acquisitions served by an already-built corpus"),
    ("counter", "service.requests",
     "retrieval-service HTTP requests handled, by route and status"),
    ("histogram", "service.request.latency_ms",
     "wall-clock latency of one retrieval-service request, by route"),
    ("gauge", "service.sessions_active",
     "relevance-feedback sessions currently resident in this worker"),
    ("counter", "service.session_resumes",
     "sessions reconstructed from the catalog by a worker that did "
     "not create them"),
    ("gauge", "slo.attainment",
     "latest measured value per declared objective"),
    ("gauge", "slo.burn_rate",
     "error-budget burn rate per declared objective (1.0 = on budget)"),
    ("counter", "slo.breaches",
     "objective evaluations that found the SLO unmet, by objective"),
)


class Telemetry:
    """Span + metric + event registry with pluggable exporters.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, ``span()`` yields ``None`` and metric
        lookups return inert no-op instruments.
    wall_clock / cpu_clock:
        Injectable monotonic clocks (tests fake time through these).
    max_spans:
        Bound on the finished-span buffer; the oldest spans are dropped
        beyond it (``spans_dropped`` counts them) so a long-lived
        process can't leak memory through its own telemetry.
    """

    def __init__(self, *, enabled: bool = True,
                 wall_clock: Callable[[], float] = time.perf_counter,
                 cpu_clock: Callable[[], float] = time.process_time,
                 max_spans: int = 20_000) -> None:
        self.enabled = bool(enabled)
        self.wall_clock = wall_clock
        self.cpu_clock = cpu_clock
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.spans_dropped = 0
        self.events: list[dict] = []
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self.writer: TraceWriter | None = None
        for kind, name, help in DEFAULT_METRICS:
            self._declare(kind, name, help)

    # ------------------------------------------------------------ config
    def configure(self, *, enabled: bool | None = None,
                  trace_path=None) -> "Telemetry":
        """Adjust the master switch and/or attach a JSONL trace writer."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if trace_path is not None:
            if self.writer is not None:
                self.writer.close()
            self.writer = TraceWriter(trace_path)
        return self

    def reset(self) -> None:
        """Drop all recorded state; keep configuration and declarations."""
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        self.spans.clear()
        self.events.clear()
        self.spans_dropped = 0
        self._next_id = 0
        declared = [(m.kind, m.name, m.help)
                    for m in self._metrics.values()]
        self._metrics.clear()
        for kind, name, help in declared:
            self._declare(kind, name, help)

    # ----------------------------------------------------------- metrics
    def _declare(self, kind: str, name: str, help: str = "") -> Metric:
        cls = {"counter": Counter, "gauge": Gauge,
               "histogram": Histogram}[kind]
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def _get(self, cls, name: str, help: str) -> Metric:
        try:
            metric = self._metrics[name]
        except KeyError:
            with self._lock:
                metric = self._metrics.setdefault(name, cls(name, help))
        if not isinstance(metric, cls):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(Histogram, name, help)

    def metric_families(self) -> list[Metric]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def metrics_snapshot(self) -> list[dict]:
        """JSON-ready snapshot of every family (declared or sampled)."""
        return [m.snapshot() for m in self.metric_families()]

    # ------------------------------------------------------------- spans
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_span_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{os.getpid():x}-{self._next_id:x}"

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span | None]:
        """Time a section; nested calls form the trace tree.

        Yields the live :class:`Span` (attach attributes via
        ``span.set(...)``) — or ``None`` when telemetry is disabled, so
        callers guard with ``if sp is not None`` before touching it.
        Exceptions mark the span ``status="error"`` and propagate.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        ctx = current_attrs()
        sp = Span(
            name=name,
            span_id=self._new_span_id(),
            parent_id=stack[-1].span_id if stack else None,
            attrs={**ctx, **attrs} if ctx else dict(attrs),
            started_at=time.time(),
        )
        stack.append(sp)
        wall0, cpu0 = self.wall_clock(), self.cpu_clock()
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.error_type = type(exc).__name__
            sp.error = str(exc)
            raise
        finally:
            sp.wall_ms = (self.wall_clock() - wall0) * 1000.0
            sp.cpu_ms = (self.cpu_clock() - cpu0) * 1000.0
            if stack and stack[-1] is sp:
                stack.pop()
            self._record_span(sp)

    def _record_span(self, sp: Span) -> None:
        self.spans.append(sp)
        if len(self.spans) > self.max_spans:
            del self.spans[0]
            self.spans_dropped += 1
        if self.writer is not None:
            self.writer.write(sp.to_event())

    # ------------------------------------------------------------ events
    def event(self, name: str, *, level: str = "info", **attrs) -> None:
        """Record a discrete occurrence (e.g. a quarantined blob)."""
        if not self.enabled:
            return
        record = {"type": "event", "name": name, "level": level,
                  "pid": os.getpid(), "ts": round(time.time(), 6)}
        record.update(current_attrs())
        record.update({k: v if isinstance(v, (str, int, float, bool))
                       or v is None else repr(v)
                       for k, v in attrs.items()})
        self.events.append(record)
        if len(self.events) > self.max_spans:
            del self.events[0]
        if self.writer is not None:
            self.writer.write(record)

    # --------------------------------------------------------- exporters
    def flush(self) -> None:
        """Write one ``metric`` trace event per family with samples."""
        if self.writer is None or not self.enabled:
            return
        for snap in self.metrics_snapshot():
            if snap["series"]:
                self.writer.write(dict(snap, type="metric"))

    def merge_worker_traces(self) -> int:
        """Fold per-worker JSONL sidecars into the main trace file."""
        if self.writer is None:
            return 0
        return merge_worker_traces(self.writer.path)


class _NullMetric:
    """Inert instrument returned while telemetry is disabled."""

    def inc(self, amount=1.0, **labels) -> None:
        pass

    def set(self, value, **labels) -> None:
        pass

    def observe(self, value, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def quantile(self, q, **labels) -> float:
        return float("nan")


_NULL_COUNTER = _NullMetric()
_NULL_GAUGE = _NullMetric()
_NULL_HISTOGRAM = _NullMetric()
