"""Hierarchical spans: timed sections with parent/child nesting.

A span measures one named section of work — wall time, CPU time, and
outcome — and records which span was active when it started, giving the
trace its tree shape.  Nesting is tracked per thread (a
``threading.local`` stack), so concurrent threads each build their own
branch; worker *processes* build entirely separate traces that the
JSONL exporter merges afterwards.

Spans are deliberately dumb data: the :class:`~repro.obs.Telemetry`
registry owns the stack, the clocks, and the finished-span buffer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["Span"]


@dataclass
class Span:
    """One finished (or in-flight) timed section."""

    name: str
    span_id: str
    parent_id: str | None = None
    attrs: dict = field(default_factory=dict)
    #: wall-clock epoch seconds at start (trace ordering across processes)
    started_at: float = 0.0
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    status: str = "ok"
    error_type: str = ""
    error: str = ""
    pid: int = field(default_factory=os.getpid)

    def set(self, **attrs) -> "Span":
        """Attach extra attributes mid-flight (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_event(self) -> dict:
        """The JSONL trace record for this span."""
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": round(self.started_at, 6),
            "wall_ms": round(self.wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "status": self.status,
            "pid": self.pid,
        }
        if self.status == "error":
            record["error_type"] = self.error_type
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = {k: _jsonable(v)
                               for k, v in self.attrs.items()}
        return record


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
