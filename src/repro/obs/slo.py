"""Service-level objectives evaluated from the in-process metrics.

An objective is a declared, checkable promise about the interactive
loop — "p99 round latency under 500 ms", "at least 95% corpus coverage",
"ingest lag under 500 frames" — evaluated straight from the metric
registry: latency quantiles are bucket-interpolated from histogram
counts (:func:`~repro.obs.metrics.bucket_quantile`), coverage and
freshness read gauges.  Evaluation also feeds the registry back:
``slo.attainment`` / ``slo.burn_rate`` gauges and an ``slo.breaches``
counter per objective, so the live ``/metrics`` endpoint exposes SLO
health without a separate pipeline.

Burn rate follows the error-budget convention: for a quantile objective
with target quantile ``q`` the budget is the ``1 - q`` fraction of
observations allowed over the threshold, and burn rate is the measured
bad fraction divided by that budget (1.0 = spending exactly on budget,
>1.0 = burning faster than the SLO allows).  Threshold objectives on
gauges burn 0 when met and ``measured/threshold`` (or its inverse)
when violated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, bucket_quantile

__all__ = ["SLObjective", "SLOStatus", "DEFAULT_SLOS", "evaluate_slos",
           "evaluate_slos_from_summary", "render_slos"]

_KINDS = ("quantile_below", "gauge_at_least", "gauge_at_most")


@dataclass(frozen=True)
class SLObjective:
    """One declared objective against one metric family.

    ``kind`` selects the evaluation rule: ``quantile_below`` checks the
    bucket-interpolated ``quantile`` of a histogram against
    ``threshold``; ``gauge_at_least`` / ``gauge_at_most`` compare the
    unlabelled series of a gauge.
    """

    name: str
    metric: str
    kind: str
    threshold: float
    quantile: float = 0.99
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown SLO kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == "quantile_below" and not 0.0 < self.quantile < 1.0:
            raise ConfigurationError(
                f"SLO quantile must be in (0, 1), got {self.quantile}")


@dataclass(frozen=True)
class SLOStatus:
    """Outcome of evaluating one objective at one instant."""

    objective: SLObjective
    measured: float
    met: bool
    samples: int
    burn_rate: float

    @property
    def name(self) -> str:
        return self.objective.name


#: The interactive loop's core promises; services may declare their own.
DEFAULT_SLOS: tuple[SLObjective, ...] = (
    SLObjective(
        name="round-latency-p99",
        metric="query.round.latency_ms",
        kind="quantile_below",
        threshold=500.0,
        quantile=0.99,
        description="99% of query-session rounds complete within 500 ms"),
    SLObjective(
        name="coverage-fraction",
        metric="query.coverage_fraction",
        kind="gauge_at_least",
        threshold=0.95,
        description="the latest round covered >= 95% of corpus bags"),
    SLObjective(
        name="ingest-freshness",
        metric="ingest.lag_frames",
        kind="gauge_at_most",
        threshold=500.0,
        description="streaming ingest stays within 500 frames of "
                    "queryable"),
)


def _unlabelled_value(metric) -> tuple[float, int]:
    """Value and sample-count of the ``{}`` series, without creating it."""
    for labels, payload in metric.series():
        if not labels:
            return float(payload.value), 1
    return math.nan, 0


def _bad_over_threshold(bounds, cumulative, total: int,
                        threshold: float) -> float:
    """Estimate observations over ``threshold`` by interpolating the
    cumulative count at it — same linear model as the quantile itself,
    so the two agree."""
    below = 0.0
    prev_bound, prev_cum = 0.0, 0
    for bound, cum in zip(bounds, cumulative):
        if threshold <= bound:
            width = bound - prev_bound
            frac = ((threshold - prev_bound) / width) if width else 1.0
            below = prev_cum + (cum - prev_cum) * frac
            break
        prev_bound, prev_cum = bound, cum
    else:
        below = float(cumulative[-1]) if cumulative else 0.0
    return max(0.0, total - below)


def _histogram_stats(metric: Histogram, slo: SLObjective):
    """(quantile, total, bad-count-over-threshold) across all series."""
    bounds = metric.buckets
    merged = [0] * (len(bounds) + 1)
    total = 0
    for _, payload in metric.series():
        total += payload.count
        for i, n in enumerate(payload.counts):
            merged[i] += n
    if total == 0:
        return math.nan, 0, 0
    cumulative, running = [], 0
    for n in merged[:-1]:
        running += n
        cumulative.append(running)
    measured = bucket_quantile(bounds, cumulative, total, slo.quantile)
    bad = _bad_over_threshold(bounds, cumulative, total, slo.threshold)
    return measured, total, bad


def _judge(slo: SLObjective, measured: float, samples: int,
           bad: float) -> SLOStatus:
    """Apply one objective's rule to its measured value."""
    if samples == 0 or math.isnan(measured):
        return SLOStatus(slo, math.nan, True, 0, 0.0)
    if slo.kind == "quantile_below":
        met = measured <= slo.threshold
        budget = 1.0 - slo.quantile
        burn = (bad / samples) / budget if samples else 0.0
    elif slo.kind == "gauge_at_least":
        met = measured >= slo.threshold
        burn = 0.0 if met else (
            slo.threshold / measured if measured > 0 else math.inf)
    else:  # gauge_at_most
        met = measured <= slo.threshold
        burn = 0.0 if met else (
            measured / slo.threshold if slo.threshold > 0 else math.inf)
    return SLOStatus(slo, measured, met, samples, burn)


def evaluate_slos(telemetry, slos=DEFAULT_SLOS,
                  *, record: bool = True) -> list[SLOStatus]:
    """Evaluate every objective against a live registry.

    With ``record=True`` (the default) attainment/burn gauges and the
    breach counter are updated so exporters publish SLO health.
    Objectives whose metric has no samples yet evaluate as *met* with
    ``samples == 0`` — an idle system has not broken any promise.
    """
    statuses: list[SLOStatus] = []
    for slo in slos:
        metric = telemetry._metrics.get(slo.metric)
        measured, samples, bad = math.nan, 0, 0.0
        if isinstance(metric, Histogram) and slo.kind == "quantile_below":
            measured, samples, bad = _histogram_stats(metric, slo)
        elif metric is not None and slo.kind != "quantile_below":
            measured, samples = _unlabelled_value(metric)
        status = _judge(slo, measured, samples, bad)
        statuses.append(status)
        if status.samples and record and telemetry.enabled:
            telemetry.gauge("slo.attainment").set(
                status.measured, slo=slo.name)
            telemetry.gauge("slo.burn_rate").set(
                status.burn_rate if math.isfinite(status.burn_rate)
                else -1.0, slo=slo.name)
            if not status.met:
                telemetry.counter("slo.breaches").inc(slo=slo.name)
    return statuses


def evaluate_slos_from_summary(summary: dict,
                               slos=DEFAULT_SLOS) -> list[SLOStatus]:
    """Evaluate objectives against a persisted run-summary dict.

    Works on the snapshot shape :func:`repro.obs.report.run_summary`
    persists (and ``repro stats`` loads back), so SLO attainment can be
    judged for historical runs without a live registry.
    """
    snaps = {snap.get("name"): snap for snap in summary.get("metrics", ())}
    statuses: list[SLOStatus] = []
    for slo in slos:
        snap = snaps.get(slo.metric) or {}
        series = snap.get("series", [])
        measured, samples, bad = math.nan, 0, 0.0
        if slo.kind == "quantile_below":
            buckets: dict[str, int] = {}
            for s in series:
                samples += int(s.get("count") or 0)
                for k, v in (s.get("buckets") or {}).items():
                    buckets[k] = buckets.get(k, 0) + int(v)
            if samples:
                finite = sorted((float(k), int(v))
                                for k, v in buckets.items() if k != "+Inf")
                bounds = tuple(b for b, _ in finite)
                cumulative = tuple(c for _, c in finite)
                measured = bucket_quantile(bounds, cumulative, samples,
                                           slo.quantile)
                bad = _bad_over_threshold(bounds, cumulative, samples,
                                          slo.threshold)
        else:
            for s in series:
                if not s.get("labels"):
                    measured = float(s.get("value", math.nan))
                    samples = 1
                    break
        statuses.append(_judge(slo, measured, samples, bad))
    return statuses


def render_slos(statuses) -> str:
    """Human-readable one-line-per-objective report."""
    lines = ["service-level objectives:"]
    for st in statuses:
        slo = st.objective
        if st.samples == 0:
            lines.append(f"  -    {slo.name:<20s} no samples yet")
            continue
        mark = "ok  " if st.met else "MISS"
        detail = {
            "quantile_below":
                f"p{int(slo.quantile * 100)}={st.measured:.1f} "
                f"(<= {slo.threshold:g}), burn {st.burn_rate:.2f}x",
            "gauge_at_least":
                f"{st.measured:.3f} (>= {slo.threshold:g})",
            "gauge_at_most":
                f"{st.measured:.1f} (<= {slo.threshold:g})",
        }[slo.kind]
        lines.append(f"  {mark} {slo.name:<20s} {detail}")
    return "\n".join(lines)
