"""Per-run reports: summarize a telemetry registry, render it for humans.

:func:`run_summary` reduces a live :class:`~repro.obs.Telemetry` to a
JSON-ready dict — the payload the CLI persists into the ``run_metrics``
table — and :func:`render_run_report` turns that dict (fresh or loaded
back from the database) into the text ``repro stats`` prints:

* the slowest spans (where the wall clock went),
* cache economics (artifact-store hit rates, Gram-column reuse,
  integrity recoveries, quarantines),
* the failure taxonomy (retries/timeouts/pool restarts by reason,
  spans that raised, warning events).
"""

from __future__ import annotations

from repro.obs.metrics import quantile_from_snapshot
from repro.obs.slo import evaluate_slos_from_summary, render_slos

__all__ = ["run_summary", "render_run_report", "SUMMARY_SCHEMA"]

SUMMARY_SCHEMA = "repro-run-summary-v1"

_TOP_SPANS = 10


def run_summary(telemetry, *, top_spans: int = _TOP_SPANS) -> dict:
    """Reduce a registry to the persistable per-run summary dict."""
    spans = list(telemetry.spans)
    slowest = sorted(spans, key=lambda s: s.wall_ms,
                     reverse=True)[:top_spans]
    error_spans = [s for s in spans if s.status == "error"]
    metrics = [snap for snap in telemetry.metrics_snapshot()
               if snap["series"]]
    return {
        "schema": SUMMARY_SCHEMA,
        "spans": {
            "count": len(spans) + telemetry.spans_dropped,
            "dropped": telemetry.spans_dropped,
            "total_wall_ms": round(sum(
                s.wall_ms for s in spans if s.parent_id is None), 3),
            "slowest": [
                {"name": s.name, "attrs": dict(s.attrs),
                 "wall_ms": round(s.wall_ms, 3),
                 "cpu_ms": round(s.cpu_ms, 3), "status": s.status}
                for s in slowest
            ],
            "errors": [
                {"name": s.name, "attrs": dict(s.attrs),
                 "error_type": s.error_type, "error": s.error}
                for s in error_spans
            ],
        },
        "metrics": metrics,
        "warnings": [e for e in telemetry.events
                     if e.get("level") == "warning"],
    }


def _series_map(summary: dict, name: str) -> list[dict]:
    for snap in summary.get("metrics", ()):
        if snap.get("name") == name:
            return snap.get("series", [])
    return []


def _total(summary: dict, name: str) -> float:
    return sum(s.get("value", 0.0) for s in _series_map(summary, name))


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) \
        + "}"


def _ratio_line(label: str, hit: float, miss: float) -> str:
    total = hit + miss
    rate = f"{hit / total:6.1%}" if total else "   n/a"
    return f"  {label:<28} {int(hit):>8} / {int(total):<8} ({rate})"


def render_run_report(summary: dict) -> str:
    """Render one run's summary dict as the ``repro stats`` report."""
    lines: list[str] = []
    spans = summary.get("spans", {})
    lines.append("== run report ==")
    lines.append(
        f"spans: {spans.get('count', 0)} recorded"
        + (f" ({spans.get('dropped')} dropped)" if spans.get("dropped")
           else "")
        + f", top-level wall {spans.get('total_wall_ms', 0.0):.0f} ms")

    slowest = spans.get("slowest", [])
    if slowest:
        lines.append("")
        lines.append("-- slowest spans --")
        for s in slowest:
            flag = "" if s.get("status") == "ok" else "  [ERROR]"
            lines.append(
                f"  {s['wall_ms']:>10.1f} ms  (cpu {s['cpu_ms']:.1f} ms)"
                f"  {s['name']}{_fmt_labels(s.get('attrs', {}))}{flag}")

    lines.append("")
    lines.append("-- cache economics --")
    hits = _series_map(summary, "pipeline.stage.cache_hit")
    misses = _series_map(summary, "pipeline.stage.cache_miss")
    by_stage: dict[str, list[float]] = {}
    for s in hits:
        stage = s.get("labels", {}).get("stage", "?")
        by_stage.setdefault(stage, [0.0, 0.0])[0] += s.get("value", 0.0)
    for s in misses:
        stage = s.get("labels", {}).get("stage", "?")
        by_stage.setdefault(stage, [0.0, 0.0])[1] += s.get("value", 0.0)
    if by_stage:
        for stage in sorted(by_stage):
            hit, miss = by_stage[stage]
            lines.append(_ratio_line(f"stage {stage} hits", hit, miss))
    else:
        lines.append("  (no artifact-store traffic)")
    reused = _total(summary, "svm.gram.columns_reused")
    computed = _total(summary, "svm.gram.columns_computed")
    if reused or computed:
        lines.append(_ratio_line("gram columns reused", reused, computed))
    recoveries = _total(summary, "pipeline.integrity_recoveries")
    if recoveries:
        lines.append(f"  integrity recoveries         {int(recoveries):>8}")
    for s in _series_map(summary, "store.quarantined"):
        reason = s.get("labels", {}).get("reason", "?")
        lines.append(f"  quarantined[{reason}]"
                     f"{'':<{max(1, 15 - len(reason))}}"
                     f"{int(s.get('value', 0)):>8}")

    lines.append("")
    lines.append("-- failure taxonomy --")
    rows = []
    for name, label_key in (("reliability.task.retries", "reason"),
                            ("reliability.task.failures", "reason")):
        for s in _series_map(summary, name):
            reason = s.get("labels", {}).get(label_key, "?")
            rows.append(f"  {name.rsplit('.', 1)[-1]}[{reason}]: "
                        f"{int(s.get('value', 0))}")
    timeouts = _total(summary, "reliability.task.timeouts")
    restarts = _total(summary, "reliability.pool.restarts")
    if timeouts:
        rows.append(f"  timeouts: {int(timeouts)}")
    if restarts:
        rows.append(f"  pool restarts: {int(restarts)}")
    for e in spans.get("errors", []):
        rows.append(f"  span {e['name']} raised {e['error_type']}: "
                    f"{e['error']}")
    for w in summary.get("warnings", []):
        detail = {k: v for k, v in w.items()
                  if k not in ("type", "name", "level", "pid", "ts")}
        rows.append(f"  warning {w.get('name')}: {detail}")
    if rows:
        lines.extend(rows)
    else:
        lines.append("  (clean run: no retries, timeouts, errors, or "
                     "quarantines)")

    # Round-latency economics, when the run had feedback/query rounds.
    # Quantiles are bucket-interpolated from the merged histogram
    # snapshot — the same math the SLO layer applies live.
    for title, name in (("relevance feedback", "rf.round.latency_ms"),
                        ("query rounds", "query.round.latency_ms")):
        stats = _latency_stats(summary, name)
        if stats:
            lines.append("")
            lines.append(f"-- {title} --")
            lines.append(
                f"  rounds: {stats['count']}, mean {stats['mean']:.1f} ms"
                f", p50 {stats['p50']:.1f} / p95 {stats['p95']:.1f}"
                f" / p99 {stats['p99']:.1f} ms")

    slo_statuses = evaluate_slos_from_summary(summary)
    if any(st.samples for st in slo_statuses):
        lines.append("")
        lines.append("-- service-level objectives --")
        lines.extend(render_slos(slo_statuses).splitlines()[1:])
    return "\n".join(lines)


def _latency_stats(summary: dict, name: str) -> dict | None:
    """count/mean/p50/p95/p99 from one histogram family's snapshot."""
    series = _series_map(summary, name)
    buckets: dict[str, int] = {}
    count, total = 0, 0.0
    for s in series:
        count += int(s.get("count") or 0)
        total += float(s.get("sum") or 0.0)
        for k, v in (s.get("buckets") or {}).items():
            buckets[k] = buckets.get(k, 0) + int(v)
    if not count:
        return None
    merged = {"buckets": buckets, "count": count}
    return {
        "count": count,
        "mean": total / count,
        "p50": quantile_from_snapshot(merged, 0.5),
        "p95": quantile_from_snapshot(merged, 0.95),
        "p99": quantile_from_snapshot(merged, 0.99),
    }
