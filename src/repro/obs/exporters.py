"""Exporters: JSONL trace files and Prometheus text dumps.

Exporter matrix
---------------

==============  =====================  ====================================
exporter        cost                   use
==============  =====================  ====================================
in-memory       always on              ``Telemetry.spans`` / ``.metrics``;
                                       feeds ``repro stats`` summaries
JSONL trace     one line per event     ``--trace PATH``; replayable,
                                       greppable, survives crashes
Prometheus      one dump per run       ``--metrics-dump PATH``; scrapeable
                                       text format, node-exporter style
==============  =====================  ====================================

The JSONL writer is safe under ``ProcessPoolExecutor`` workers: it
remembers the pid that created it, and any write from a different
process transparently lands in a per-worker sidecar file
(``trace.jsonl.worker-<pid>``) instead of interleaving into the parent's
stream.  :func:`merge_worker_traces` folds the sidecars back into the
main file after a pool joins — tolerating a torn final line from a
killed worker, which is dropped, not fatal.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

__all__ = ["TraceWriter", "merge_worker_traces", "prometheus_text",
           "write_prometheus"]


class TraceWriter:
    """Append-only JSONL event stream, fork-aware.

    Lines are flushed per event so a crash loses at most the line being
    written; the merge step tolerates exactly that torn line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._owner_pid = os.getpid()
        self._fh = None
        self._fh_pid: int | None = None

    def _target(self, pid: int) -> Path:
        if pid == self._owner_pid:
            return self.path
        return self.path.with_name(f"{self.path.name}.worker-{pid}")

    def write(self, record: dict) -> None:
        pid = os.getpid()
        if self._fh is None or self._fh_pid != pid:
            # First write in this process — or a fork inherited the
            # parent's handle, whose shared file offset must not be
            # touched.  Open this process's own target file instead.
            target = self._target(pid)
            target.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(target, "a", encoding="utf-8")
            self._fh_pid = pid
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._fh_pid == os.getpid():
            self._fh.close()
        self._fh = None
        self._fh_pid = None


def merge_worker_traces(path: str | Path) -> int:
    """Fold ``<path>.worker-*`` sidecars into ``path``; returns lines kept.

    Only complete, parseable JSON lines survive — a worker killed
    mid-write leaves a torn last line, which is silently dropped (the
    span it described never finished anyway).  Merged sidecars are
    removed.
    """
    path = Path(path)
    merged = 0
    sidecars = sorted(path.parent.glob(path.name + ".worker-*"))
    if not sidecars:
        return 0
    with open(path, "a", encoding="utf-8") as out:
        for sidecar in sidecars:
            try:
                text = sidecar.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a killed worker
                out.write(line + "\n")
                merged += 1
            try:
                os.unlink(sidecar)
            except OSError:
                pass
    return merged


# ---------------------------------------------------------- prometheus
def _prom_name(name: str, kind: str) -> str:
    base = name.replace(".", "_").replace("-", "_")
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(telemetry) -> str:
    """Render every metric family in the Prometheus text exposition
    format.  Families with no samples yet still emit their ``# HELP`` /
    ``# TYPE`` header, so a dump always names the full metric surface.
    """
    lines: list[str] = []
    for metric in telemetry.metric_families():
        pname = _prom_name(metric.name, metric.kind)
        if metric.help:
            lines.append(f"# HELP {pname} {metric.help}")
        lines.append(f"# TYPE {pname} {metric.kind}")
        for labels, payload in metric.series():
            if metric.kind == "histogram":
                running = 0
                for bound, n in zip(metric.buckets, payload.counts):
                    running += n
                    lines.append(
                        f"{pname}_bucket"
                        f"{_prom_labels(labels, {'le': _fmt(bound)})}"
                        f" {running}")
                lines.append(
                    f"{pname}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                    f" {payload.count}")
                lines.append(
                    f"{pname}_sum{_prom_labels(labels)} "
                    f"{_fmt(payload.sum)}")
                lines.append(
                    f"{pname}_count{_prom_labels(labels)} {payload.count}")
            else:
                lines.append(
                    f"{pname}{_prom_labels(labels)} {_fmt(payload.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(telemetry, path: str | Path) -> None:
    """Dump :func:`prometheus_text` to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(telemetry), encoding="utf-8")
