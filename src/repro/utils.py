"""Small shared helpers: RNG handling and argument validation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "as_rng",
    "check_positive",
    "check_in_range",
    "check_2d",
    "row_sq_norms",
    "pairwise_sq_dists",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-seeded generator).  All stochastic code in this
    library threads randomness through this helper so experiments are
    reproducible end to end.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Validate that ``value`` lies in the interval [low, high] (by default)."""
    lo_ok = value >= low if inclusive[0] else value > low
    hi_ok = value <= high if inclusive[1] else value < high
    if not (lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ConfigurationError(
            f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return value


def check_2d(name: str, array: np.ndarray) -> np.ndarray:
    """Coerce ``array`` to a 2-D float array, raising on bad shapes."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must be non-empty")
    return arr


def row_sq_norms(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean norm of every row of ``x`` (1-D, length n)."""
    x = np.asarray(x, dtype=float)
    return np.einsum("ij,ij->i", x, x)


def pairwise_sq_dists(
    a: np.ndarray,
    b: np.ndarray,
    *,
    a_sq: np.ndarray | None = None,
    b_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``.

    Uses the expansion ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` and clips tiny
    negative values produced by floating point cancellation.  ``a_sq`` /
    ``b_sq`` are optional precomputed :func:`row_sq_norms` of ``a`` / ``b``
    — the Gram cache passes them so the database norms are computed once
    per engine instead of once per kernel evaluation.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    aa = (row_sq_norms(a) if a_sq is None else np.asarray(a_sq))[:, None]
    bb = (row_sq_norms(b) if b_sq is None else np.asarray(b_sq))[None, :]
    d2 = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(d2, 0.0)


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average with a ramp-up at the start."""
    check_positive("window", window)
    arr = np.asarray(values, dtype=float)
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out
