"""Feature scalers (fit on training data, apply everywhere).

The paper is silent on scaling; its three accident features live on very
different ranges (1/mdist in [0, 0.5], vdiff in pixels/frame, theta in
[0, pi]), so both the heuristic square-sum score and the RBF kernel need
the columns commensurate.  ``StandardScaler`` feeds the SVM,
``MinMaxScaler`` feeds the heuristic/weighted-RF scores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.utils import check_2d

__all__ = ["StandardScaler", "MinMaxScaler"]

_STD_FLOOR = 1e-12


class StandardScaler:
    """Per-column standardisation to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = check_2d("x", x)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > _STD_FLOOR, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler: call fit() first")
        x = check_2d("x", x)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler: call fit() first")
        x = check_2d("x", x)
        return x * self.scale_ + self.mean_


class MinMaxScaler:
    """Per-column scaling to [0, 1] over the fit data (clipped outside)."""

    def __init__(self, clip: bool = True) -> None:
        self.clip = bool(clip)
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = check_2d("x", x)
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        self.range_ = np.where(span > _STD_FLOOR, span, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler: call fit() first")
        x = check_2d("x", x)
        out = (x - self.min_) / self.range_
        return np.clip(out, 0.0, 1.0) if self.clip else out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
