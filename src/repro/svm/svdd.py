"""Support Vector Data Description (Tax & Duin): the literal "ball".

Paper Section 5.2 describes the one-class model as a ball: "if the
origin of the ball is o and the radius is r, an instance x_i is inside
the ball iff ||x_i − o|| <= r" — which is exactly the SVDD formulation
(a minimal enclosing hypersphere in feature space), while the learner
the paper actually cites [18] is Schoelkopf's hyperplane machine.  Both
are implemented; with an RBF kernel the two are equivalent up to an
affine transform of the decision value (K(x,x) constant), which the test
suite verifies, and with non-normalized kernels (linear, polynomial)
they genuinely differ.

Dual problem::

    min_a  sum_ij a_i a_j K_ij - sum_i a_i K_ii
    s.t.   sum_i a_i = 1,  0 <= a_i <= 1/(nu*n)

solved by the generalized SMO solver with ``Q' = 2K, p = -diag(K)``.
The decision value is ``R^2 - ||phi(x) - a||^2`` (positive inside).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.obs import get_telemetry
from repro.svm.kernels import Kernel, resolve_kernel
from repro.svm.smo import _BOUND_EPS, solve_one_class_smo
from repro.utils import check_2d, check_in_range

__all__ = ["SVDD"]


class SVDD:
    """nu-parameterised Support Vector Data Description.

    Interface-compatible with :class:`~repro.svm.one_class.OneClassSVM`
    (``fit`` / ``decision_function`` / ``predict``), so it drops into the
    MIL engine via its ``kernel``-agnostic scoring path.
    """

    def __init__(
        self,
        *,
        nu: float = 0.5,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "auto",
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-5,
        max_iter: int = 100_000,
    ) -> None:
        check_in_range("nu", nu, 0.0, 1.0, inclusive=(False, True))
        self.nu = float(nu)
        self._kernel_spec = kernel
        self._gamma = gamma
        self._degree = degree
        self._coef0 = coef0
        self.tol = float(tol)
        self.max_iter = int(max_iter)

        self.kernel_: Kernel | None = None
        self.alpha_: np.ndarray | None = None
        self.support_: np.ndarray | None = None
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.radius2_: float | None = None
        self.center_norm2_: float | None = None
        self.n_iter_: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self.support_vectors_ is not None

    def fit(self, x: np.ndarray, *,
            gram: np.ndarray | None = None) -> "SVDD":
        """Find the minimal soft hypersphere enclosing ``x`` rows.

        ``gram`` is an optional precomputed ``K(x, x)`` (same contract as
        :meth:`OneClassSVM.fit`).
        """
        x = check_2d("x", x)
        kernel = resolve_kernel(self._kernel_spec, gamma=self._gamma,
                                degree=self._degree, coef0=self._coef0)
        kernel = kernel.prepare(x)
        precomputed = gram is not None
        if gram is None:
            gram = kernel.compute(x, x)
        elif np.asarray(gram).shape != (x.shape[0], x.shape[0]):
            raise ConfigurationError(
                f"precomputed gram has shape {np.asarray(gram).shape}, "
                f"expected ({x.shape[0]}, {x.shape[0]})"
            )
        diag = np.diag(gram).copy()
        obs = get_telemetry()
        with obs.span("svm.fit", learner="svdd", n=x.shape[0],
                      precomputed_gram=precomputed):
            result = solve_one_class_smo(
                2.0 * gram, self.nu, linear=-diag,
                tol=self.tol, max_iter=self.max_iter,
            )
        obs.histogram("svm.solver.iterations").observe(
            result.n_iter, learner="svdd")
        alpha = result.alpha
        # ||a||^2 = alpha^T K alpha; R^2 from the KKT offset:
        # at a free SV, G_k = 2(K alpha)_k - K_kk = ||a||^2 - R^2.
        center_norm2 = float(alpha @ gram @ alpha)
        radius2 = center_norm2 - result.rho
        if radius2 <= 0:
            # Degenerate (e.g. a single point): fall back to the largest
            # support-vector distance.
            dists = diag - 2.0 * (gram @ alpha) + center_norm2
            radius2 = float(max(dists[alpha > _BOUND_EPS].max(), 0.0))
        mask = alpha > _BOUND_EPS
        self.kernel_ = kernel
        self.alpha_ = alpha
        self.support_ = np.nonzero(mask)[0]
        self.support_vectors_ = x[mask]
        self.dual_coef_ = alpha[mask]
        self.center_norm2_ = center_norm2
        self.radius2_ = float(radius2)
        self.n_iter_ = result.n_iter
        return self

    def _distance2(self, x: np.ndarray | None = None, *,
                   cross: np.ndarray | None = None,
                   self_sim: np.ndarray | None = None) -> np.ndarray:
        """Squared feature-space distance to the sphere centre.

        ``cross`` is an optional precomputed ``K(x, support_vectors_)``
        block and ``self_sim`` the per-row self-similarities ``K(x, x)``
        (``Kernel.diag``); the engine's Gram cache supplies both so the
        database scoring pass never re-evaluates the kernel.
        """
        assert (self.kernel_ is not None and self.dual_coef_ is not None
                and self.support_vectors_ is not None
                and self.center_norm2_ is not None)
        if cross is None:
            if x is None:
                raise ConfigurationError(
                    "SVDD scoring needs x or a precomputed cross block"
                )
            x = check_2d("x", x)
            if x.shape[1] != self.support_vectors_.shape[1]:
                raise ConfigurationError(
                    f"x has {x.shape[1]} features, model was fitted with "
                    f"{self.support_vectors_.shape[1]}"
                )
            cross = self.kernel_.compute(x, self.support_vectors_)
        else:
            cross = np.asarray(cross, dtype=float)
            if cross.ndim != 2 or cross.shape[1] != len(self.dual_coef_):
                raise ConfigurationError(
                    f"cross block has shape {cross.shape}, expected "
                    f"(m, {len(self.dual_coef_)})"
                )
        if self_sim is None:
            if x is None:
                raise ConfigurationError(
                    "SVDD scoring needs x or precomputed self-similarities"
                )
            self_sim = self.kernel_.diag(x)
        projection = cross @ self.dual_coef_
        return self_sim - 2.0 * projection + self.center_norm2_

    def decision_function(self, x: np.ndarray | None = None, *,
                          cross: np.ndarray | None = None,
                          self_sim: np.ndarray | None = None) -> np.ndarray:
        """R^2 - ||phi(x) - center||^2; positive inside the ball."""
        if not self.is_fitted or self.radius2_ is None:
            raise NotFittedError("SVDD: call fit() first")
        return self.radius2_ - self._distance2(x, cross=cross,
                                               self_sim=self_sim)

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        return np.where(scores >= 0, 1, -1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return f"SVDD(nu={self.nu}, kernel={self._kernel_spec!r}, {state})"
