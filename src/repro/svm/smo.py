"""SMO solver for the one-class SVM dual (paper Eq. 7-8).

Solves

    min_alpha  1/2 alpha^T Q alpha
    s.t.       sum_i alpha_i = 1,   0 <= alpha_i <= C,   C = 1/(nu*n)

by sequential minimal optimisation: at every step the maximal-violating
pair (i from the "can grow" set, j from the "can shrink" set, chosen by
the gradient G = Q alpha) is optimised analytically subject to the box
and the equality constraint, exactly the scheme LIBSVM uses for its
one-class machine.  The offset rho is recovered from the KKT conditions:
free support vectors (0 < alpha < C) satisfy G_i = rho.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.utils import check_in_range

__all__ = ["SMOResult", "solve_one_class_smo"]

#: Numerical slack when classifying alphas against the box bounds.
_BOUND_EPS = 1e-10


@dataclass(frozen=True)
class SMOResult:
    """Solution of the one-class dual."""

    alpha: np.ndarray
    rho: float
    n_iter: int
    converged: bool

    @property
    def support_mask(self) -> np.ndarray:
        return self.alpha > _BOUND_EPS


def _initial_alpha(n: int, nu: float) -> np.ndarray:
    """LIBSVM-style feasible start: front-load alpha at the box bound."""
    alpha = np.zeros(n)
    c = 1.0 / (nu * n)
    n_full = int(np.floor(nu * n))
    alpha[:n_full] = c
    if n_full < n:
        alpha[n_full] = 1.0 - n_full * c
    return alpha


def project_feasible(alpha0: np.ndarray, c: float) -> np.ndarray:
    """Project a warm-start guess onto {0 <= a <= C, sum(a) = 1}.

    Clips to the box, then spreads the remaining surplus/deficit across
    the entries with room — cheap, and exact feasibility is all the
    solver needs (optimality is its own job).
    """
    alpha = np.clip(np.asarray(alpha0, dtype=float), 0.0, c)
    gap = 1.0 - alpha.sum()
    for _ in range(64):  # a handful of passes always suffices
        if abs(gap) < 1e-12:
            break
        if gap > 0:
            room = c - alpha
            movable = room > 1e-15
            if not movable.any():
                raise ConfigurationError(
                    "cannot reach sum(alpha)=1: box too small (nu*n < 1?)"
                )
            add = np.zeros_like(alpha)
            add[movable] = min(
                gap / movable.sum(), float(room[movable].min()))
            alpha += add
        else:
            mass = alpha > 1e-15
            take = np.zeros_like(alpha)
            take[mass] = min(-gap / mass.sum(), float(alpha[mass].min()))
            alpha -= take
        gap = 1.0 - alpha.sum()
    alpha = np.clip(alpha, 0.0, c)
    # Final exact touch-up on one entry with slack.
    gap = 1.0 - alpha.sum()
    if abs(gap) > 0:
        idx = int(np.argmax((c - alpha) if gap > 0 else alpha))
        alpha[idx] = np.clip(alpha[idx] + gap, 0.0, c)
    return alpha


def solve_one_class_smo(
    q: np.ndarray,
    nu: float,
    *,
    linear: np.ndarray | None = None,
    tol: float = 1e-4,
    max_iter: int = 100_000,
    strict: bool = False,
    alpha0: np.ndarray | None = None,
) -> SMOResult:
    """Solve the one-class dual for a precomputed Gram matrix ``q``.

    Parameters
    ----------
    q:
        (n, n) kernel Gram matrix of the training set.
    nu:
        The paper's delta: upper bound on the outlier fraction, in (0, 1].
    tol:
        KKT violation threshold for convergence.
    max_iter:
        Iteration budget; on exhaustion the current iterate is returned
        (or :class:`ConvergenceError` is raised when ``strict``).
    alpha0:
        Optional warm-start guess (e.g. the previous feedback round's
        solution); it is projected onto the feasible set first.
    linear:
        Optional linear term p: the objective becomes
        ``1/2 a^T Q a + p^T a``.  Zero for the Schoelkopf one-class
        machine; SVDD (the hypersphere formulation) uses
        ``Q' = 2K, p = -diag(K)``.
    """
    q = np.asarray(q, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1] or q.shape[0] == 0:
        raise ConfigurationError(
            f"q must be a non-empty square matrix, got shape {q.shape}"
        )
    check_in_range("nu", nu, 0.0, 1.0, inclusive=(False, True))
    n = q.shape[0]
    c = 1.0 / (nu * n)

    if linear is not None:
        linear = np.asarray(linear, dtype=float)
        if linear.shape != (n,):
            raise ConfigurationError(
                f"linear term has shape {linear.shape}, expected ({n},)"
            )
    if alpha0 is not None:
        if len(np.asarray(alpha0)) != n:
            raise ConfigurationError(
                f"alpha0 has length {len(np.asarray(alpha0))}, expected {n}"
            )
        alpha = project_feasible(alpha0, c)
    else:
        alpha = _initial_alpha(n, nu)
    gradient = q @ alpha
    if linear is not None:
        gradient = gradient + linear

    n_iter = 0
    converged = False
    while n_iter < max_iter:
        can_grow = alpha < c - _BOUND_EPS
        can_shrink = alpha > _BOUND_EPS
        if not can_grow.any() or not can_shrink.any():
            converged = True
            break
        # Maximal violating pair on the gradient.
        i = int(np.argmin(np.where(can_grow, gradient, np.inf)))
        j = int(np.argmax(np.where(can_shrink, gradient, -np.inf)))
        violation = gradient[j] - gradient[i]
        if violation < tol:
            converged = True
            break
        quad = q[i, i] + q[j, j] - 2.0 * q[i, j]
        quad = max(quad, 1e-12)
        delta = violation / quad
        delta = min(delta, c - alpha[i], alpha[j])
        alpha[i] += delta
        alpha[j] -= delta
        gradient += delta * (q[:, i] - q[:, j])
        n_iter += 1

    if not converged and strict:
        raise ConvergenceError(
            f"one-class SMO did not converge in {max_iter} iterations "
            f"(violation still above tol={tol})"
        )

    rho = _recover_rho(alpha, gradient, c)
    return SMOResult(alpha=alpha, rho=rho, n_iter=n_iter,
                     converged=converged)


def _recover_rho(alpha: np.ndarray, gradient: np.ndarray, c: float) -> float:
    """KKT offset: G_i = rho on free support vectors, else a midpoint."""
    free = (alpha > _BOUND_EPS) & (alpha < c - _BOUND_EPS)
    if free.any():
        return float(gradient[free].mean())
    # All alphas at a bound.  KKT: G_i <= rho where alpha_i = C and
    # G_i >= rho where alpha_i = 0, so rho lies in the gap between them.
    at_upper = gradient[alpha >= c - _BOUND_EPS]
    at_zero = gradient[alpha <= _BOUND_EPS]
    lo = float(at_upper.max()) if at_upper.size else None
    hi = float(at_zero.min()) if at_zero.size else None
    if lo is None and hi is None:
        return 0.0
    if lo is None:
        return hi  # type: ignore[return-value]
    if hi is None:
        return lo
    return (lo + hi) / 2.0
