"""Cross-kernel column cache for the relevance-feedback hot path.

Every feedback round the MIL engine (a) fits a one-class learner on the
training instances and (b) scores the *whole* database against the
fitted model.  Both steps only ever need kernel values between rows of
one fixed matrix — the standardized database — because the training
instances are themselves database rows.  :class:`GramCache` exploits
that: it holds the database matrix once, keeps its per-row squared
norms, and caches the full database column ``K(X, x_i)`` for every
training instance ``i`` it has seen.

Across rounds the training set mostly *grows* (labels accumulate, see
``RetrievalEngine.feed``), so a warm round computes kernel columns only
for the newly labelled instances; the training Gram block and the
scoring cross-Gram block are then pure gathers:

* training Gram  ``K(train, train) = columns[train_rows, :]``
* scoring block  ``K(X, support)   = columns[:, support_positions]``

Cached columns are keyed by ``(instance_id, kernel.params_key())``:
changing the kernel family or any parameter (e.g. a data-dependent
``gamma="scale"`` that moves as the training set grows) invalidates the
cache wholesale, so cached and uncached scores always agree to floating
point tolerance.  Column evaluation is blockwise
(:meth:`Kernel.compute_blocked`) to bound peak memory on large
databases.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.svm.kernels import DEFAULT_BLOCK_ROWS, Kernel, RBFKernel
from repro.utils import check_2d, row_sq_norms

__all__ = ["GramCache"]


class GramCache:
    """Caches kernel columns between a fixed matrix and its rows.

    Parameters
    ----------
    x:
        The (n, d) database matrix (already standardized — the cache
        never transforms).  A defensive reference is kept, not a copy;
        callers must treat the matrix as frozen for the cache's lifetime.
    block_rows:
        Row-block size for kernel evaluation (peak-memory bound).
    """

    def __init__(self, x: np.ndarray, *,
                 block_rows: int = DEFAULT_BLOCK_ROWS) -> None:
        self._x = check_2d("x", x)
        self._x_sq = row_sq_norms(self._x)
        self._block_rows = int(block_rows)
        self._params: tuple | None = None
        self._cols: dict[int, np.ndarray] = {}
        self._diag: np.ndarray | None = None
        self.hits = 0
        self.misses = 0

    # -- introspection -----------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._x.shape[0]

    @property
    def n_cached(self) -> int:
        return len(self._cols)

    @property
    def params(self) -> tuple | None:
        """Kernel params key the cached columns belong to."""
        return self._params

    # -- cache core --------------------------------------------------------
    def _sync_kernel(self, kernel: Kernel) -> None:
        key = kernel.params_key()
        if key != self._params:
            self._cols.clear()
            self._diag = None
            self._params = key

    def _kernel_columns(self, kernel: Kernel, rows: np.ndarray) -> np.ndarray:
        """(n, len(rows)) kernel block between the database and its rows."""
        b = self._x[rows]
        if isinstance(kernel, RBFKernel):
            return kernel.compute_blocked(
                self._x, b, block_rows=self._block_rows,
                a_sq=self._x_sq, b_sq=self._x_sq[rows])
        return kernel.compute_blocked(self._x, b,
                                      block_rows=self._block_rows)

    def ensure(self, kernel: Kernel, ids: list[int],
               rows: np.ndarray) -> int:
        """Make the columns ``K(X, X[rows])`` for ``ids`` available.

        ``ids`` are the training instance ids, ``rows`` their row indices
        in the database matrix (aligned).  Only columns for ids not yet
        cached under the current kernel parameters are computed (in one
        blockwise batch); returns how many columns that was.
        """
        if len(ids) != len(rows):
            raise ConfigurationError(
                f"ids and rows must align, got {len(ids)} ids / "
                f"{len(rows)} rows"
            )
        self._sync_kernel(kernel)
        rows = np.asarray(rows, dtype=int)
        missing = [k for k, i in enumerate(ids) if i not in self._cols]
        obs = get_telemetry()
        if missing:
            with obs.span("svm.gram.ensure", columns=len(missing),
                          reused=len(ids) - len(missing)):
                fresh = self._kernel_columns(kernel, rows[missing])
                for j, k in enumerate(missing):
                    self._cols[ids[k]] = np.ascontiguousarray(fresh[:, j])
        reused = len(ids) - len(missing)
        self.misses += len(missing)
        self.hits += reused
        if missing:
            obs.counter("svm.gram.columns_computed").inc(len(missing))
        if reused:
            obs.counter("svm.gram.columns_reused").inc(reused)
        return len(missing)

    def ensure_vectors(self, kernel: Kernel, ids: list[int],
                       vectors: np.ndarray) -> int:
        """Make columns ``K(X, vectors)`` available for external ``ids``.

        Unlike :meth:`ensure`, the training vectors need not be rows of
        the cached matrix: a sharded corpus scores each shard against
        support vectors owned by *other* shards.  ``vectors`` is the
        (len(ids), d) matrix aligned with ``ids`` (already in the same
        standardized space as the cached database).  Caching and
        invalidation semantics are identical to :meth:`ensure`; an id
        first seen through either entry point is served from cache by
        both afterwards.
        """
        vectors = check_2d("vectors", vectors)
        if len(ids) != vectors.shape[0]:
            raise ConfigurationError(
                f"ids and vectors must align, got {len(ids)} ids / "
                f"{vectors.shape[0]} vectors"
            )
        self._sync_kernel(kernel)
        missing = [k for k, i in enumerate(ids) if i not in self._cols]
        obs = get_telemetry()
        if missing:
            with obs.span("svm.gram.ensure", columns=len(missing),
                          reused=len(ids) - len(missing)):
                sub = np.ascontiguousarray(vectors[missing])
                if isinstance(kernel, RBFKernel):
                    fresh = kernel.compute_blocked(
                        self._x, sub, block_rows=self._block_rows,
                        a_sq=self._x_sq)
                else:
                    fresh = kernel.compute_blocked(
                        self._x, sub, block_rows=self._block_rows)
                for j, k in enumerate(missing):
                    self._cols[ids[k]] = np.ascontiguousarray(fresh[:, j])
        reused = len(ids) - len(missing)
        self.misses += len(missing)
        self.hits += reused
        if missing:
            obs.counter("svm.gram.columns_computed").inc(len(missing))
        if reused:
            obs.counter("svm.gram.columns_reused").inc(reused)
        return len(missing)

    def gram(self, ids: list[int], rows: np.ndarray) -> np.ndarray:
        """Training Gram block ``K(X[rows], X[rows])`` from cached columns.

        Requires :meth:`ensure` for ``ids`` first.  This is a (t, t)
        gather — no kernel evaluation.
        """
        rows = np.asarray(rows, dtype=int)
        out = np.empty((len(rows), len(ids)), dtype=float)
        for j, i in enumerate(ids):
            out[:, j] = self._cached_column(i)[rows]
        return out

    def cross(self, ids: list[int]) -> np.ndarray:
        """Database-vs-``ids`` block ``K(X, X[rows(ids)])``, (n, len(ids)).

        Requires :meth:`ensure` for ``ids`` first.  Callers gather only
        the columns they score against (e.g. the support vectors), so
        the per-round copy is (n, n_sv) instead of (n, n_train).
        """
        out = np.empty((self.n_rows, len(ids)), dtype=float)
        for j, i in enumerate(ids):
            out[:, j] = self._cached_column(i)
        return out

    def columns(self, kernel: Kernel, ids: list[int],
                rows: np.ndarray) -> np.ndarray:
        """Ensure + gather: the full (n, len(ids)) column matrix."""
        self.ensure(kernel, ids, rows)
        return self.cross(ids)

    def _cached_column(self, instance_id: int) -> np.ndarray:
        try:
            return self._cols[instance_id]
        except KeyError:
            raise ConfigurationError(
                f"instance {instance_id} has no cached column; call "
                f"ensure() first"
            ) from None

    def diag(self, kernel: Kernel) -> np.ndarray:
        """Per-row self-similarities ``K(x_i, x_i)`` of the database."""
        self._sync_kernel(kernel)
        if self._diag is None:
            self._diag = kernel.diag(self._x)
        return self._diag

    def drop(self, ids: list[int]) -> None:
        """Forget cached columns for specific instance ids (if present)."""
        for i in ids:
            self._cols.pop(i, None)

    def clear(self) -> None:
        """Forget everything, including the kernel binding."""
        self._cols.clear()
        self._diag = None
        self._params = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GramCache(n_rows={self.n_rows}, cached={self.n_cached}, "
                f"params={self._params!r})")
