"""Kernel functions for the one-class SVM.

The paper's Eq. (6) prints the RBF kernel as ``exp(||u-v|| / 2 sigma)``,
which is a typo (it grows without bound and is not positive definite);
following its reference [18] we implement the standard Gaussian RBF

    K(u, v) = exp(-||u - v||^2 / (2 sigma^2)) = exp(-gamma ||u - v||^2).

``RBFKernel.from_sigma`` exposes the paper's sigma parameterisation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import check_2d, check_positive, pairwise_sq_dists, row_sq_norms

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "resolve_kernel",
]

#: Default row-block size for blockwise Gram evaluation; bounds peak
#: memory of a (n_db, n_train) evaluation at ~block * n_train floats.
DEFAULT_BLOCK_ROWS = 8192


class Kernel(ABC):
    """A positive-definite kernel; callable on row matrices.

    ``compute`` is the internal entry point — callers that already hold
    validated 2-D float arrays (the SVM fit/score paths, the Gram cache)
    use it directly; the public ``__call__`` adds the shape coercion.
    """

    @abstractmethod
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix between rows of ``a`` and rows of ``b``."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.compute(check_2d("a", a), check_2d("b", b))

    def prepare(self, x: np.ndarray) -> "Kernel":
        """Hook for data-dependent parameters (e.g. gamma='scale')."""
        return self

    def params_key(self) -> tuple:
        """Hashable identity of the kernel family + parameters.

        The Gram cache keys cached columns on this: two kernels with the
        same key produce identical Gram matrices, any change invalidates.
        """
        return (type(self).__name__,)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Self-similarities ``K(x_i, x_i)`` per row, without the full Gram."""
        x = np.asarray(x, dtype=float)
        return np.array([
            float(self.compute(row[None, :], row[None, :])[0, 0]) for row in x
        ])

    def compute_blocked(self, a: np.ndarray, b: np.ndarray, *,
                        block_rows: int = DEFAULT_BLOCK_ROWS) -> np.ndarray:
        """Gram matrix evaluated in row blocks of ``a``.

        Same values as :meth:`compute`; peak intermediate memory is
        bounded by one ``(block_rows, len(b))`` tile, which keeps large
        database-vs-training evaluations from materialising huge
        distance buffers.
        """
        check_positive("block_rows", block_rows)
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape[0] <= block_rows:
            return self.compute(a, b)
        out = np.empty((a.shape[0], b.shape[0]), dtype=float)
        for lo in range(0, a.shape[0], block_rows):
            hi = min(lo + block_rows, a.shape[0])
            out[lo:hi] = self.compute(a[lo:hi], b)
        return out


class LinearKernel(Kernel):
    """K(u, v) = u . v"""

    def compute(self, a, b):
        return a @ b.T

    def params_key(self) -> tuple:
        return ("linear",)

    def diag(self, x):
        return row_sq_norms(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LinearKernel()"


class RBFKernel(Kernel):
    """Gaussian kernel with sklearn-compatible gamma conventions.

    ``gamma`` may be a positive float, ``"scale"`` (1 / (d * var(X)),
    resolved at :meth:`prepare` time) or ``"auto"`` (1 / d).
    """

    def __init__(self, gamma: float | str = "scale") -> None:
        if isinstance(gamma, str):
            if gamma not in ("scale", "auto"):
                raise ConfigurationError(
                    f"gamma must be a positive float, 'scale' or 'auto', "
                    f"got {gamma!r}"
                )
        else:
            check_positive("gamma", gamma)
        self.gamma = gamma

    @classmethod
    def from_sigma(cls, sigma: float) -> "RBFKernel":
        """Paper parameterisation: K = exp(-||u-v||^2 / (2 sigma^2))."""
        check_positive("sigma", sigma)
        return cls(gamma=1.0 / (2.0 * sigma * sigma))

    def prepare(self, x: np.ndarray) -> "RBFKernel":
        if not isinstance(self.gamma, str):
            return self
        x = check_2d("x", x)
        d = x.shape[1]
        if self.gamma == "auto":
            return RBFKernel(1.0 / d)
        var = float(x.var())
        return RBFKernel(1.0 / (d * var) if var > 1e-12 else 1.0 / d)

    def compute(self, a, b, *, a_sq=None, b_sq=None):
        """Gram matrix; ``a_sq`` / ``b_sq`` reuse precomputed row norms."""
        if isinstance(self.gamma, str):
            raise ConfigurationError(
                "gamma is still symbolic; call prepare(X) first"
            )
        return np.exp(-self.gamma * pairwise_sq_dists(a, b, a_sq=a_sq,
                                                      b_sq=b_sq))

    def compute_blocked(self, a, b, *, block_rows=DEFAULT_BLOCK_ROWS,
                        a_sq=None, b_sq=None):
        """Blockwise Gram with the norms-reuse path threaded through."""
        check_positive("block_rows", block_rows)
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a_sq is None:
            a_sq = row_sq_norms(a)
        if b_sq is None:
            b_sq = row_sq_norms(b)
        if a.shape[0] <= block_rows:
            return self.compute(a, b, a_sq=a_sq, b_sq=b_sq)
        out = np.empty((a.shape[0], b.shape[0]), dtype=float)
        for lo in range(0, a.shape[0], block_rows):
            hi = min(lo + block_rows, a.shape[0])
            out[lo:hi] = self.compute(a[lo:hi], b, a_sq=a_sq[lo:hi],
                                      b_sq=b_sq)
        return out

    def params_key(self) -> tuple:
        return ("rbf", self.gamma)

    def diag(self, x):
        if isinstance(self.gamma, str):
            raise ConfigurationError(
                "gamma is still symbolic; call prepare(X) first"
            )
        return np.ones(np.asarray(x).shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RBFKernel(gamma={self.gamma!r})"


class PolynomialKernel(Kernel):
    """K(u, v) = (gamma u.v + coef0)^degree"""

    def __init__(self, degree: int = 3, gamma: float = 1.0,
                 coef0: float = 1.0) -> None:
        check_positive("degree", degree)
        check_positive("gamma", gamma)
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def compute(self, a, b):
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree

    def params_key(self) -> tuple:
        return ("poly", self.degree, self.gamma, self.coef0)

    def diag(self, x):
        return (self.gamma * row_sq_norms(x) + self.coef0) ** self.degree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PolynomialKernel(degree={self.degree}, gamma={self.gamma}, "
                f"coef0={self.coef0})")


def resolve_kernel(kernel: str | Kernel, *, gamma: float | str = "scale",
                   degree: int = 3, coef0: float = 1.0) -> Kernel:
    """Build a kernel from a name (sklearn-style) or pass one through."""
    if isinstance(kernel, Kernel):
        return kernel
    if kernel == "rbf":
        return RBFKernel(gamma)
    if kernel == "linear":
        return LinearKernel()
    if kernel == "poly":
        g = 1.0 if isinstance(gamma, str) else float(gamma)
        return PolynomialKernel(degree=degree, gamma=g, coef0=coef0)
    raise ConfigurationError(
        f"unknown kernel {kernel!r}; expected 'rbf', 'linear', 'poly' or a "
        f"Kernel instance"
    )
