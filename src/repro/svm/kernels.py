"""Kernel functions for the one-class SVM.

The paper's Eq. (6) prints the RBF kernel as ``exp(||u-v|| / 2 sigma)``,
which is a typo (it grows without bound and is not positive definite);
following its reference [18] we implement the standard Gaussian RBF

    K(u, v) = exp(-||u - v||^2 / (2 sigma^2)) = exp(-gamma ||u - v||^2).

``RBFKernel.from_sigma`` exposes the paper's sigma parameterisation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import check_2d, check_positive, pairwise_sq_dists

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "resolve_kernel",
]


class Kernel(ABC):
    """A positive-definite kernel; callable on row matrices."""

    @abstractmethod
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix between rows of ``a`` and rows of ``b``."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.compute(check_2d("a", a), check_2d("b", b))

    def prepare(self, x: np.ndarray) -> "Kernel":
        """Hook for data-dependent parameters (e.g. gamma='scale')."""
        return self


class LinearKernel(Kernel):
    """K(u, v) = u . v"""

    def compute(self, a, b):
        return a @ b.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LinearKernel()"


class RBFKernel(Kernel):
    """Gaussian kernel with sklearn-compatible gamma conventions.

    ``gamma`` may be a positive float, ``"scale"`` (1 / (d * var(X)),
    resolved at :meth:`prepare` time) or ``"auto"`` (1 / d).
    """

    def __init__(self, gamma: float | str = "scale") -> None:
        if isinstance(gamma, str):
            if gamma not in ("scale", "auto"):
                raise ConfigurationError(
                    f"gamma must be a positive float, 'scale' or 'auto', "
                    f"got {gamma!r}"
                )
        else:
            check_positive("gamma", gamma)
        self.gamma = gamma

    @classmethod
    def from_sigma(cls, sigma: float) -> "RBFKernel":
        """Paper parameterisation: K = exp(-||u-v||^2 / (2 sigma^2))."""
        check_positive("sigma", sigma)
        return cls(gamma=1.0 / (2.0 * sigma * sigma))

    def prepare(self, x: np.ndarray) -> "RBFKernel":
        if not isinstance(self.gamma, str):
            return self
        x = check_2d("x", x)
        d = x.shape[1]
        if self.gamma == "auto":
            return RBFKernel(1.0 / d)
        var = float(x.var())
        return RBFKernel(1.0 / (d * var) if var > 1e-12 else 1.0 / d)

    def compute(self, a, b):
        if isinstance(self.gamma, str):
            raise ConfigurationError(
                "gamma is still symbolic; call prepare(X) first"
            )
        return np.exp(-self.gamma * pairwise_sq_dists(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RBFKernel(gamma={self.gamma!r})"


class PolynomialKernel(Kernel):
    """K(u, v) = (gamma u.v + coef0)^degree"""

    def __init__(self, degree: int = 3, gamma: float = 1.0,
                 coef0: float = 1.0) -> None:
        check_positive("degree", degree)
        check_positive("gamma", gamma)
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def compute(self, a, b):
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PolynomialKernel(degree={self.degree}, gamma={self.gamma}, "
                f"coef0={self.coef0})")


def resolve_kernel(kernel: str | Kernel, *, gamma: float | str = "scale",
                   degree: int = 3, coef0: float = 1.0) -> Kernel:
    """Build a kernel from a name (sklearn-style) or pass one through."""
    if isinstance(kernel, Kernel):
        return kernel
    if kernel == "rbf":
        return RBFKernel(gamma)
    if kernel == "linear":
        return LinearKernel()
    if kernel == "poly":
        g = 1.0 if isinstance(gamma, str) else float(gamma)
        return PolynomialKernel(degree=degree, gamma=g, coef0=coef0)
    raise ConfigurationError(
        f"unknown kernel {kernel!r}; expected 'rbf', 'linear', 'poly' or a "
        f"Kernel instance"
    )
