"""From-scratch One-class SVM (paper Section 5.2, Schoelkopf et al. [18]).

The library implements the nu-parameterised one-class SVM dual

    min_alpha  1/2 alpha^T Q alpha
    s.t.       sum(alpha) = 1,   0 <= alpha_i <= 1/(nu*n)

with an SMO solver (maximal-violating-pair working-set selection), RBF /
linear / polynomial kernels and standard feature scalers.  No external ML
dependency is used.
"""

from repro.svm.kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    resolve_kernel,
)
from repro.svm.gram_cache import GramCache
from repro.svm.scaling import MinMaxScaler, StandardScaler
from repro.svm.smo import SMOResult, project_feasible, solve_one_class_smo
from repro.svm.one_class import OneClassSVM
from repro.svm.svdd import SVDD

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "resolve_kernel",
    "GramCache",
    "MinMaxScaler",
    "StandardScaler",
    "SMOResult",
    "project_feasible",
    "solve_one_class_smo",
    "OneClassSVM",
    "SVDD",
]
