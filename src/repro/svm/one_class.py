"""One-class SVM estimator (Schoelkopf nu-OCSVM, paper Section 5.2).

The decision function is

    f(x) = sign( sum_i alpha_i K(x_i, x) - rho )

which is positive "in those regions of input space where the data
predominantly lies and negative elsewhere" (paper Section 5.2); in the
MIL framework positive means a Trajectory Sequence looks like the
user-confirmed relevant ones, negative means outlier/irrelevant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.obs import get_telemetry
from repro.svm.kernels import Kernel, resolve_kernel
from repro.svm.smo import solve_one_class_smo
from repro.utils import check_2d, check_in_range

__all__ = ["OneClassSVM"]


class OneClassSVM:
    """nu-parameterised one-class SVM with a from-scratch SMO solver.

    Parameters
    ----------
    nu:
        Upper bound on the fraction of training outliers / lower bound on
        the fraction of support vectors, in (0, 1].  This is the paper's
        delta from Eq. (7) and (9).
    kernel:
        ``"rbf"`` (default), ``"linear"``, ``"poly"`` or a
        :class:`~repro.svm.kernels.Kernel` instance.
    gamma:
        RBF/poly width: positive float, ``"scale"`` or ``"auto"``.
    tol / max_iter:
        SMO stopping parameters.

    Attributes (after fit)
    ----------------------
    support_:
        Indices of support vectors in the training set.
    dual_coef_:
        Their alpha values.
    rho_:
        The decision offset.
    """

    def __init__(
        self,
        *,
        nu: float = 0.5,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-4,
        max_iter: int = 100_000,
    ) -> None:
        check_in_range("nu", nu, 0.0, 1.0, inclusive=(False, True))
        if max_iter <= 0:
            raise ConfigurationError("max_iter must be positive")
        self.nu = float(nu)
        self._kernel_spec = kernel
        self._gamma = gamma
        self._degree = degree
        self._coef0 = coef0
        self.tol = float(tol)
        self.max_iter = int(max_iter)

        self.kernel_: Kernel | None = None
        self.alpha_: np.ndarray | None = None
        self.support_vectors_: np.ndarray | None = None
        self.support_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.rho_: float | None = None
        self.n_iter_: int | None = None
        self.converged_: bool | None = None

    @property
    def is_fitted(self) -> bool:
        return self.support_vectors_ is not None

    def fit(self, x: np.ndarray,
            alpha0: np.ndarray | None = None,
            *, gram: np.ndarray | None = None) -> "OneClassSVM":
        """Estimate the support of the distribution of ``x`` (rows).

        ``alpha0`` warm-starts the SMO solver (projected to feasibility
        first) — useful when refitting on a slightly grown training set,
        as the relevance-feedback loop does every round.  ``gram`` is an
        optional precomputed ``K(x, x)`` (e.g. gathered from a
        :class:`~repro.svm.gram_cache.GramCache`); it must have been
        produced by the same kernel this estimator resolves.
        """
        x = check_2d("x", x)
        kernel = resolve_kernel(self._kernel_spec, gamma=self._gamma,
                                degree=self._degree, coef0=self._coef0)
        kernel = kernel.prepare(x)
        precomputed = gram is not None
        if gram is None:
            gram = kernel.compute(x, x)
        elif np.asarray(gram).shape != (x.shape[0], x.shape[0]):
            raise ConfigurationError(
                f"precomputed gram has shape {np.asarray(gram).shape}, "
                f"expected ({x.shape[0]}, {x.shape[0]})"
            )
        obs = get_telemetry()
        with obs.span("svm.fit", learner="ocsvm", n=x.shape[0],
                      precomputed_gram=precomputed):
            result = solve_one_class_smo(gram, self.nu, tol=self.tol,
                                         max_iter=self.max_iter,
                                         alpha0=alpha0)
        obs.histogram("svm.solver.iterations").observe(
            result.n_iter, learner="ocsvm")
        mask = result.support_mask
        self.kernel_ = kernel
        self.alpha_ = result.alpha
        self.support_ = np.nonzero(mask)[0]
        self.support_vectors_ = x[mask]
        self.dual_coef_ = result.alpha[mask]
        self.rho_ = result.rho
        self.n_iter_ = result.n_iter
        self.converged_ = result.converged
        return self

    def decision_function(self, x: np.ndarray | None = None, *,
                          cross: np.ndarray | None = None) -> np.ndarray:
        """Signed distance-like score; positive inside the support.

        ``cross`` is an optional precomputed ``K(x, support_vectors_)``
        block (m, n_sv); when given, ``x`` is not needed — the retrieval
        engine's Gram cache scores the whole database this way without
        re-evaluating the kernel.
        """
        if (self.support_vectors_ is None or self.dual_coef_ is None
                or self.kernel_ is None or self.rho_ is None):
            raise NotFittedError("OneClassSVM: call fit() first")
        if cross is None:
            if x is None:
                raise ConfigurationError(
                    "decision_function needs x or a precomputed cross block"
                )
            x = check_2d("x", x)
            if x.shape[1] != self.support_vectors_.shape[1]:
                raise ConfigurationError(
                    f"x has {x.shape[1]} features, model was fitted with "
                    f"{self.support_vectors_.shape[1]}"
                )
            cross = self.kernel_.compute(x, self.support_vectors_)
        else:
            cross = np.asarray(cross, dtype=float)
            if cross.ndim != 2 or cross.shape[1] != len(self.dual_coef_):
                raise ConfigurationError(
                    f"cross block has shape {cross.shape}, expected "
                    f"(m, {len(self.dual_coef_)})"
                )
        return cross @ self.dual_coef_ - self.rho_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """+1 inside the estimated support, -1 outside."""
        scores = self.decision_function(x)
        return np.where(scores >= 0, 1, -1)

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Decision values without the offset (sum_i alpha_i K(x_i, x))."""
        if self.rho_ is None:
            raise NotFittedError("OneClassSVM: call fit() first")
        return self.decision_function(x) + self.rho_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return (f"OneClassSVM(nu={self.nu}, kernel={self._kernel_spec!r}, "
                f"{state})")
