"""Stage objects: typed units of the clip-ingestion pipeline.

Each stage consumes the previous stage's artifact and produces its own
(paper Figure 6: segmentation -> tracking -> trajectory/event modeling ->
VS/TS windowing).  A stage carries

* a ``name`` (its position in the chain key),
* a config whose ``params_key()`` is the stage fingerprint,
* an ``executions`` counter (how many times ``run`` actually computed,
  as opposed to being served from an artifact store), and
* ``cacheable``/``provides`` flags the runner uses to decide what gets
  persisted and which outputs surface in :class:`ClipArtifacts`.

The Render stage is *not* cacheable: its output is a lazily-rendered
``VideoClip`` closure (cheap to rebuild, unpicklable by design), and the
expensive work it feeds — segmentation — caches right behind it.
"""

from __future__ import annotations

from repro.pipeline.config import (
    IndexConfig,
    OracleConfig,
    PipelineConfig,
    RenderConfig,
    SegmentConfig,
    SeriesConfig,
    StageConfig,
    StitchConfig,
    TrackConfig,
    WindowConfig,
)
from repro.sim.world import SimulationResult

__all__ = [
    "StageContext",
    "Stage",
    "RenderStage",
    "SegmentStage",
    "TrackStage",
    "OracleStage",
    "StitchStage",
    "SeriesStage",
    "WindowsStage",
    "IndexStage",
    "build_stages",
]


class StageContext:
    """Per-run state shared by all stages of one clip."""

    def __init__(self, result: SimulationResult) -> None:
        self.result = result


class Stage:
    """One pipeline step: typed input artifact -> typed output artifact."""

    name: str = "stage"
    cacheable: bool = True
    #: Which :class:`ClipArtifacts` field this stage's output fills
    #: (``"tracks"``, ``"dataset"``, or None for internal artifacts).
    provides: str | None = None

    def __init__(self, config: StageConfig) -> None:
        self.config = config
        self.executions = 0

    def fingerprint(self) -> tuple:
        """Hashable identity of this stage: name + config params."""
        return (self.name, self.config.params_key())

    def run(self, ctx: StageContext, value):
        self.executions += 1
        return self._run(ctx, value)

    def _run(self, ctx: StageContext, value):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.config!r})"


class RenderStage(Stage):
    """SimulationResult -> VideoClip (lazy frames; never persisted)."""

    name = "render"
    cacheable = False
    config: RenderConfig

    def _run(self, ctx: StageContext, value):
        from repro.vision.frames import VideoClip

        return VideoClip.from_simulation(
            ctx.result,
            render_seed=self.config.render_seed,
            noise_sigma=self.config.noise_sigma,
            fps=self.config.fps,
        )


class SegmentStage(Stage):
    """VideoClip -> per-frame detection lists."""

    name = "segment"
    config: SegmentConfig

    def _run(self, ctx: StageContext, value):
        from repro.vision.pipeline import SegmentationPipeline

        return SegmentationPipeline(
            use_spcpe=self.config.use_spcpe,
            min_area=self.config.min_area,
            max_area=self.config.max_area,
            patch_margin=self.config.patch_margin,
        ).process(value)


class TrackStage(Stage):
    """Detections -> tracks (Hungarian centroid tracker)."""

    name = "track"
    config: TrackConfig

    def _run(self, ctx: StageContext, value):
        from repro.tracking.tracker import CentroidTracker

        return CentroidTracker().track(value)


class OracleStage(Stage):
    """SimulationResult -> tracks straight from simulator truth."""

    name = "oracle"
    provides = "tracks"
    config: OracleConfig

    def _run(self, ctx: StageContext, value):
        from repro.tracking.oracle import tracks_from_simulation

        return tracks_from_simulation(
            ctx.result,
            jitter=self.config.jitter,
            seed=self.config.seed,
            min_track_length=self.config.min_track_length,
        )


class StitchStage(Stage):
    """Tracks -> occlusion/dropout-stitched tracks (identity if disabled)."""

    name = "stitch"
    provides = "tracks"
    config: StitchConfig

    def _run(self, ctx: StageContext, value):
        if not self.config.enabled:
            return value
        from repro.tracking.stitching import stitch_tracks

        return stitch_tracks(value)


class SeriesStage(Stage):
    """Tracks -> checkpoint-aligned feature series."""

    name = "series"
    config: SeriesConfig

    def _run(self, ctx: StageContext, value):
        from repro.events.features import extract_series

        return extract_series(value, self.config.sampling)


class WindowsStage(Stage):
    """Feature series -> MIL dataset of VS bags / TS instances."""

    name = "windows"
    provides = "dataset"

    def __init__(self, config: WindowConfig, series: SeriesConfig,
                 pipeline: PipelineConfig) -> None:
        super().__init__(config)
        self._series = series
        self._pipeline = pipeline

    def fingerprint(self) -> tuple:
        # The event model shapes the dataset (feature channels, labels),
        # so custom models registered under the same name still separate.
        model = self._pipeline.resolve_event_model()
        return (self.name, self.config.params_key(),
                (type(model).__name__, model.name,
                 tuple(model.feature_names)))

    def _run(self, ctx: StageContext, value):
        from repro.events.windows import build_dataset

        return build_dataset(
            value,
            self._pipeline.resolve_event_model(),
            clip_id=ctx.result.name,
            window_size=self.config.window_size,
            step=self.config.step,
            config=self._series.sampling,
            keep_empty=self.config.keep_empty,
        )


class IndexStage(Stage):
    """MIL dataset -> per-clip IVF index for sublinear nomination.

    Sits after Windows in the chain, so its content address covers every
    upstream fingerprint: edit any earlier stage config (or the clip
    itself) and the cached index is invalidated along with the dataset
    it was built from.
    """

    name = "index"
    provides = "index"
    config: IndexConfig

    def _run(self, ctx: StageContext, value):
        from repro.index.ivf import build_index_for_dataset

        return build_index_for_dataset(
            value,
            n_cells=self.config.n_cells,
            seed=self.config.seed,
            iters=self.config.iters,
        )


def build_stages(config: PipelineConfig) -> list[Stage]:
    """The stage chain for one pipeline config, in execution order."""
    windows = WindowsStage(config.windows, config.series, config)
    index = IndexStage(config.index)
    if config.mode == "oracle":
        return [OracleStage(config.oracle), SeriesStage(config.series),
                windows, index]
    return [
        RenderStage(config.render),
        SegmentStage(config.segment),
        TrackStage(config.track),
        StitchStage(config.stitch),
        SeriesStage(config.series),
        windows,
        index,
    ]
