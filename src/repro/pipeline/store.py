"""Content-addressed artifact stores for pipeline stage outputs.

A store maps a *chain key* — the SHA-256 of (clip digest, fingerprints of
every stage up to and including the producing one) — to a pickled stage
artifact plus a small metadata record.  Two backends:

* :class:`MemoryArtifactStore` — per-process dict; the default sweep
  accelerator (one sweep shares one store, nothing touches disk).
* :class:`DiskArtifactStore` — a directory of ``objects/<k0:2>/<key>.pkl``
  blobs with one JSON sidecar each.  Writes are atomic (tmp + rename) so
  several ingestion workers can share a store directory, and the
  metadata survives across processes/runs (the CLI persists it through
  :mod:`repro.db`).

Artifacts are pickled Python values; a store directory is a local cache,
not an interchange format — only load store files you created.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import StorageError

__all__ = [
    "ArtifactStore",
    "MemoryArtifactStore",
    "DiskArtifactStore",
    "resolve_store",
]


class ArtifactStore(ABC):
    """Key-value store for stage artifacts, with per-entry metadata."""

    @abstractmethod
    def has(self, key: str) -> bool:
        """Whether an artifact is stored under ``key``."""

    @abstractmethod
    def load(self, key: str):
        """Return the artifact stored under ``key``."""

    @abstractmethod
    def save(self, key: str, value, meta: dict | None = None) -> None:
        """Store ``value`` under ``key`` with optional metadata."""

    @abstractmethod
    def keys(self) -> list[str]:
        """All stored keys."""

    @abstractmethod
    def entries(self) -> list[dict]:
        """Metadata records (one dict per stored artifact)."""


class MemoryArtifactStore(ArtifactStore):
    """In-process store: the default accelerator for parameter sweeps."""

    def __init__(self) -> None:
        self._objects: dict[str, object] = {}
        self._meta: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def has(self, key: str) -> bool:
        found = key in self._objects
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def load(self, key: str):
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"no artifact stored under {key!r}") from None

    def save(self, key: str, value, meta: dict | None = None) -> None:
        self._objects[key] = value
        self._meta[key] = dict(meta or {}, key=key)

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def entries(self) -> list[dict]:
        return [self._meta[k] for k in self.keys()]


class DiskArtifactStore(ArtifactStore):
    """On-disk store: ``objects/<key[:2]>/<key>.pkl`` + ``.json`` sidecar."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)

    def _blob(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _sidecar(self, key: str) -> Path:
        return self._blob(key).with_suffix(".json")

    def has(self, key: str) -> bool:
        return self._blob(key).exists()

    def load(self, key: str):
        path = self._blob(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            raise StorageError(f"no artifact stored under {key!r}") from None
        except (pickle.UnpicklingError, EOFError) as exc:
            raise StorageError(f"corrupt artifact {path}: {exc}") from exc

    def save(self, key: str, value, meta: dict | None = None) -> None:
        blob = self._blob(key)
        blob.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(blob, payload)
        record = dict(meta or {}, key=key, n_bytes=len(payload))
        self._atomic_write(
            self._sidecar(key),
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8"),
        )

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> list[str]:
        return sorted(p.stem for p in (self.root / "objects").glob("*/*.pkl"))

    def entries(self) -> list[dict]:
        records = []
        for key in self.keys():
            sidecar = self._sidecar(key)
            if sidecar.exists():
                records.append(json.loads(sidecar.read_text()))
            else:
                records.append({"key": key})
        return records


def resolve_store(store) -> ArtifactStore | None:
    """Coerce a store spec: None/False -> no store, path -> disk store."""
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if isinstance(store, (str, Path)):
        return DiskArtifactStore(store)
    raise StorageError(
        f"expected an ArtifactStore, path, or None, got "
        f"{type(store).__name__}"
    )
