"""Content-addressed artifact stores for pipeline stage outputs.

A store maps a *chain key* — the SHA-256 of (clip digest, fingerprints of
every stage up to and including the producing one) — to a pickled stage
artifact plus a small metadata record.  Two backends:

* :class:`MemoryArtifactStore` — per-process dict; the default sweep
  accelerator (one sweep shares one store, nothing touches disk).
* :class:`DiskArtifactStore` — a directory of ``objects/<k0:2>/<key>.pkl``
  blobs with one JSON sidecar each.  Writes are atomic (tmp + rename) so
  several ingestion workers can share a store directory, and the
  metadata survives across processes/runs (the CLI persists it through
  :mod:`repro.db`).

The disk store is *self-healing*: every sidecar records the blob's
SHA-256 and byte length at save time; :meth:`DiskArtifactStore.has`
cheaply rejects zero-byte/truncated/orphaned blobs (a hard crash
between blob write and sidecar write, a full disk, a killed worker) and
:meth:`DiskArtifactStore.load` verifies the full checksum.  Anything
that fails verification is moved to ``quarantine/`` — never deleted,
never served — and surfaces as a cache miss, so the
:class:`~repro.pipeline.runner.PipelineRunner` transparently recomputes
and rewrites instead of crashing.  :meth:`DiskArtifactStore.verify`
audits every entry on demand.

Artifacts are pickled Python values; a store directory is a local cache,
not an interchange format — only load store files you created.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IntegrityError, StorageError
from repro.obs import get_telemetry

__all__ = [
    "ArtifactStore",
    "MemoryArtifactStore",
    "DiskArtifactStore",
    "StoreAudit",
    "resolve_store",
]


class ArtifactStore(ABC):
    """Key-value store for stage artifacts, with per-entry metadata."""

    @abstractmethod
    def has(self, key: str) -> bool:
        """Whether an artifact is stored under ``key``."""

    @abstractmethod
    def load(self, key: str):
        """Return the artifact stored under ``key``."""

    @abstractmethod
    def save(self, key: str, value, meta: dict | None = None) -> None:
        """Store ``value`` under ``key`` with optional metadata."""

    @abstractmethod
    def keys(self) -> list[str]:
        """All stored keys."""

    @abstractmethod
    def entries(self) -> list[dict]:
        """Metadata records (one dict per stored artifact)."""


class MemoryArtifactStore(ArtifactStore):
    """In-process store: the default accelerator for parameter sweeps."""

    def __init__(self) -> None:
        self._objects: dict[str, object] = {}
        self._meta: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def has(self, key: str) -> bool:
        found = key in self._objects
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def load(self, key: str):
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"no artifact stored under {key!r}") from None

    def save(self, key: str, value, meta: dict | None = None) -> None:
        self._objects[key] = value
        self._meta[key] = dict(meta or {}, key=key)

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def entries(self) -> list[dict]:
        return [self._meta[k] for k in self.keys()]


@dataclass
class StoreAudit:
    """Outcome of a :meth:`DiskArtifactStore.verify` sweep.

    ``issues`` holds one record per unhealthy entry:
    ``{"key", "problem", "action"}`` where ``problem`` is one of
    ``missing-sidecar``, ``missing-blob``, ``bad-sidecar``,
    ``size-mismatch``, ``checksum-mismatch`` and ``action`` is
    ``quarantined`` or ``reported``.
    """

    checked: int = 0
    ok: int = 0
    issues: list[dict] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.issues


class DiskArtifactStore(ArtifactStore):
    """On-disk store: ``objects/<key[:2]>/<key>.pkl`` + ``.json`` sidecar."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        #: blobs moved aside after failing verification, for this store
        #: object's lifetime (the directory itself persists across runs)
        self.quarantined: list[dict] = []

    def _blob(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _sidecar(self, key: str) -> Path:
        return self._blob(key).with_suffix(".json")

    # ------------------------------------------------------- health
    def _read_sidecar(self, key: str) -> dict | None:
        """The sidecar record, or None if missing/unreadable."""
        try:
            return json.loads(self._sidecar(key).read_text())
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _quarantine(self, key: str, problem: str) -> None:
        """Move a failed entry's files aside; never serve them again."""
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        blob, sidecar = self._blob(key), self._sidecar(key)
        record = self._read_sidecar(key) or {"key": key}
        record["quarantined_reason"] = problem
        try:
            os.replace(blob, qdir / blob.name)
        except FileNotFoundError:
            pass
        try:
            os.unlink(sidecar)
        except FileNotFoundError:
            pass
        self._atomic_write(
            qdir / sidecar.name,
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8"),
        )
        self.quarantined.append({"key": key, "problem": problem})
        # A quarantine used to be silent unless verify() ran; surface it
        # the moment it happens so operators see corruption as it lands.
        obs = get_telemetry()
        obs.counter("store.quarantined").inc(reason=problem)
        obs.event("store.quarantined", level="warning", key=key,
                  reason=problem, store=str(self.root))

    def _check(self, key: str, *, deep: bool) -> str | None:
        """Health-check one entry; returns the problem name, or None.

        The shallow check (existence + sidecar + recorded byte length)
        is what :meth:`has` runs on every cache probe; ``deep=True``
        additionally hashes the blob against the recorded SHA-256,
        which :meth:`load` and :meth:`verify` pay for.
        """
        blob = self._blob(key)
        try:
            size = blob.stat().st_size
        except FileNotFoundError:
            return "missing-blob"
        record = self._read_sidecar(key)
        if record is None:
            # Crash between blob write and sidecar write, or a mangled
            # sidecar: the blob is unverifiable either way.
            return ("missing-sidecar" if not self._sidecar(key).exists()
                    else "bad-sidecar")
        if size == 0 or ("n_bytes" in record and size != record["n_bytes"]):
            return "size-mismatch"
        if deep and "sha256" in record:
            digest = hashlib.sha256(blob.read_bytes()).hexdigest()
            if digest != record["sha256"]:
                return "checksum-mismatch"
        return None

    # ------------------------------------------------------- store API
    def has(self, key: str) -> bool:
        """Whether ``key`` holds a *servable* artifact.

        An entry that exists but fails the shallow integrity check
        (zero-byte or truncated blob, missing/unreadable sidecar) is
        quarantined on the spot and reported as a miss, so callers fall
        through to recompute-and-rewrite.
        """
        problem = self._check(key, deep=False)
        if problem is None:
            return True
        if problem != "missing-blob":
            self._quarantine(key, problem)
        return False

    def load(self, key: str):
        problem = self._check(key, deep=True)
        if problem == "missing-blob":
            raise StorageError(f"no artifact stored under {key!r}") from None
        if problem is not None:
            self._quarantine(key, problem)
            raise IntegrityError(
                f"artifact {key!r} failed verification ({problem}); "
                f"quarantined under {self.root / 'quarantine'}")
        path = self._blob(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            raise StorageError(f"no artifact stored under {key!r}") from None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ValueError) as exc:
            self._quarantine(key, "bad-pickle")
            raise IntegrityError(
                f"corrupt artifact {path}: {exc}") from exc

    def save(self, key: str, value, meta: dict | None = None) -> None:
        blob = self._blob(key)
        blob.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(blob, payload)
        record = dict(meta or {}, key=key, n_bytes=len(payload),
                      sha256=hashlib.sha256(payload).hexdigest())
        self._atomic_write(
            self._sidecar(key),
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8"),
        )

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass  # os.replace won the race; nothing to clean up.
            except OSError as exc:
                # Read-only filesystem, permission flip, etc.  The tmp
                # file leaks — say so rather than hiding it, but keep
                # the original failure as the one that propagates.
                obs = get_telemetry()
                obs.counter("store.tmp_unlink_failures").inc(
                    error=type(exc).__name__)
                obs.event("store.tmp_unlink_failed", level="warning",
                          tmp=str(tmp), target=str(path),
                          reason=f"{type(exc).__name__}: {exc}")
            raise

    def keys(self) -> list[str]:
        return sorted(p.stem for p in (self.root / "objects").glob("*/*.pkl"))

    def entries(self) -> list[dict]:
        records = []
        for key in self.keys():
            record = self._read_sidecar(key)
            if record is not None:
                records.append(record)
            else:
                # Blob without (readable) metadata: the orphan left by a
                # crash between the two writes.  Flagged, not hidden —
                # `verify()` is the tool that quarantines it.
                records.append({"key": key, "orphan": True})
        return records

    # ------------------------------------------------------- audit
    def verify(self, *, repair: bool = True) -> StoreAudit:
        """Audit every entry: sizes, checksums, and orphaned sidecars.

        With ``repair=True`` (default) unhealthy entries are quarantined
        so the next run recomputes them; with ``repair=False`` they are
        only reported.  Returns a :class:`StoreAudit`.
        """
        audit = StoreAudit()
        objects = self.root / "objects"
        blob_keys = set(self.keys())
        sidecar_keys = {p.stem for p in objects.glob("*/*.json")}
        for key in sorted(blob_keys):
            audit.checked += 1
            problem = self._check(key, deep=True)
            if problem is None:
                audit.ok += 1
                continue
            action = "reported"
            if repair:
                self._quarantine(key, problem)
                action = "quarantined"
            audit.issues.append({"key": key, "problem": problem,
                                 "action": action})
        for key in sorted(sidecar_keys - blob_keys):
            # Sidecar without a blob: harmless metadata litter, but it
            # pollutes entries() accounting; repair removes it.
            audit.checked += 1
            action = "reported"
            if repair:
                try:
                    os.unlink(self._sidecar(key))
                except FileNotFoundError:
                    pass
                action = "quarantined"
            audit.issues.append({"key": key, "problem": "missing-blob",
                                 "action": action})
        return audit


def resolve_store(store) -> ArtifactStore | None:
    """Coerce a store spec: None/False -> no store, path -> disk store."""
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if isinstance(store, (str, Path)):
        return DiskArtifactStore(store)
    raise StorageError(
        f"expected an ArtifactStore, path, or None, got "
        f"{type(store).__name__}"
    )
