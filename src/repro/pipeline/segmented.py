"""SegmentedRunner: the batch clip pipeline as an incremental stream.

Splits a clip into fixed-size frame segments and pushes each one through
the vision stages with explicit carry-over state:

* **background statistics** — the :class:`SegmentationPipeline` (and its
  :class:`BackgroundModel`) persists across segment boundaries; the
  median bootstrap samples the whole clip exactly as the batch path
  does, and the selective running average then sees frames in the same
  global order, so per-frame detections are bit-identical to batch;
* **open tracks** — one :class:`CentroidTracker` instance advances frame
  by frame across segments and is only ``finish()``-ed at the end, so
  the final track set matches a single batch pass by construction;
* **partial windows** — a :class:`StreamingWindowEmitter` holds the
  emitted-window cursor and emits, at every segment boundary, exactly
  the windows that can no longer change (see
  :mod:`repro.events.streaming` for the stable-frontier argument).

Each segment's output (newly final bags + the carry state after the
segment) is fingerprinted into the regular content-addressed
:class:`~repro.pipeline.store.ArtifactStore` under a key chaining the
clip digest, every vision-stage fingerprint, the segment length, and the
segment index.  A rerun resumes after the deepest contiguous cached
prefix; a blob that fails checksum verification is quarantined by the
store and demotes the resume to a recompute — the same self-healing
contract as :class:`~repro.pipeline.runner.PipelineRunner`.

Stitching is rejected: the greedy global stitcher can re-join fragments
arbitrarily far back when new fragments appear, so no finite frontier
makes early emission safe.  Oracle mode has no frame stream to segment.
"""

from __future__ import annotations

import copy
import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.bags import Bag, MILDataset
from repro.errors import ConfigurationError, StorageError
from repro.events.streaming import StreamingWindowEmitter
from repro.obs import get_telemetry
from repro.pipeline.artifacts import ClipArtifacts
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import clip_digest
from repro.pipeline.stages import build_stages
from repro.pipeline.store import ArtifactStore, resolve_store
from repro.sim.ground_truth import GroundTruth
from repro.sim.world import SimulationResult, segment_bounds
from repro.tracking.track import Track

__all__ = ["SegmentedRunner", "SegmentEmission", "SegmentArtifact"]


@dataclass
class SegmentCarry:
    """Everything one segment hands to the next (picklable)."""

    segmenter: object            # SegmentationPipeline with background state
    tracker: object              # CentroidTracker with open tracks
    emitter: StreamingWindowEmitter


@dataclass
class SegmentEmission:
    """What one processed segment contributes to the live corpus."""

    index: int
    frame_lo: int
    frame_hi: int
    #: Newly final bags (clip-local ids, identical to the batch dataset's).
    bags: list[Bag]
    #: Stable frontier after this segment (highest queryable frame).
    frontier: int
    #: Served from the artifact store instead of being computed.
    cached: bool = False
    n_open_tracks: int = 0
    n_finished_tracks: int = 0
    final: bool = False


@dataclass
class SegmentArtifact:
    """Stored per-segment record: the emission plus the carry after it."""

    index: int
    frame_lo: int
    frame_hi: int
    frontier: int
    bags: list[Bag]
    carry: SegmentCarry
    n_open_tracks: int = 0
    n_finished_tracks: int = 0
    #: Final segment only: the finished track list and the full
    #: (batch-identical) dataset, so a fully-cached stream can rebuild
    #: :class:`ClipArtifacts` without recomputing anything.
    tracks: list[Track] | None = None
    dataset: MILDataset | None = field(default=None)


class SegmentedRunner:
    """Run the vision pipeline as a resumable segment stream.

    ``segment_frames`` fixes the stream granularity; ``store`` (optional)
    is any :class:`ArtifactStore` — per-segment artifacts are content
    addressed, so a killed run resumes from the last durable segment and
    a config change invalidates every segment key at once.
    """

    def __init__(self, config: PipelineConfig | None = None, *,
                 segment_frames: int = 200,
                 store: ArtifactStore | str | None = None) -> None:
        self.config = config or PipelineConfig()
        if self.config.mode != "vision":
            raise ConfigurationError(
                "streaming ingestion requires mode='vision': oracle tracks "
                "come from simulator truth, there is no frame stream to "
                "segment"
            )
        if self.config.stitch.enabled:
            raise ConfigurationError(
                "streaming ingestion requires stitch disabled: the global "
                "greedy stitcher can re-join fragments arbitrarily far "
                "back, so no finite frontier makes early emission safe"
            )
        if segment_frames < 1:
            raise ConfigurationError(
                f"segment_frames must be >= 1, got {segment_frames}")
        self.segment_frames = int(segment_frames)
        self.store = resolve_store(store)
        #: ClipArtifacts of the last completed stream() (batch-identical).
        self.artifacts: ClipArtifacts | None = None
        self.segments_executed = 0
        self.segments_cached = 0

    # ------------------------------------------------------------- keys
    def segment_bounds(self, n_frames: int) -> list[tuple[int, int]]:
        return segment_bounds(n_frames, self.segment_frames)

    def _stream_fingerprint(self) -> tuple:
        stages = [s.fingerprint() for s in build_stages(self.config)
                  if s.name != "index"]
        return ("stream", self.segment_frames, tuple(stages))

    def segment_keys(self, result: SimulationResult) -> list[str]:
        """One content address per segment.

        Every key covers the *whole* clip digest (the background
        bootstrap samples the entire clip, so even segment 0 depends on
        every frame), all vision-stage fingerprints, the segment length,
        and the segment index.
        """
        base = (clip_digest(result), self._stream_fingerprint())
        return [
            hashlib.sha256(repr(base + (i,)).encode("utf-8")).hexdigest()
            for i in range(len(self.segment_bounds(result.n_frames)))
        ]

    # ------------------------------------------------------------ carry
    def _fresh_carry(self, result: SimulationResult) -> SegmentCarry:
        from repro.tracking.tracker import CentroidTracker
        from repro.vision.pipeline import SegmentationPipeline

        cfg = self.config
        tracker = CentroidTracker()
        return SegmentCarry(
            segmenter=SegmentationPipeline(
                use_spcpe=cfg.segment.use_spcpe,
                min_area=cfg.segment.min_area,
                max_area=cfg.segment.max_area,
                patch_margin=cfg.segment.patch_margin,
            ),
            tracker=tracker,
            emitter=StreamingWindowEmitter(
                cfg.resolve_event_model(),
                clip_id=result.name,
                window_size=cfg.windows.window_size,
                step=cfg.windows.step,
                config=cfg.series.sampling,
                keep_empty=cfg.windows.keep_empty,
                min_track_length=tracker.min_track_length,
            ),
        )

    def _render(self, result: SimulationResult):
        from repro.vision.frames import VideoClip

        cfg = self.config.render
        return VideoClip.from_simulation(
            result, render_seed=cfg.render_seed,
            noise_sigma=cfg.noise_sigma, fps=cfg.fps)

    # ------------------------------------------------------------ stream
    def stream(self, result: SimulationResult
               ) -> Iterator[SegmentEmission]:
        """Yield one :class:`SegmentEmission` per segment, in order.

        Cached segments replay instantly (``cached=True``); computation
        resumes after the deepest contiguous stored prefix.  When the
        generator is exhausted, :attr:`artifacts` holds the clip's full
        batch-identical :class:`ClipArtifacts`.
        """
        obs = get_telemetry()
        bounds = self.segment_bounds(result.n_frames)
        keys = self.segment_keys(result)
        started = time.perf_counter()

        start = 0
        cached_artifacts: list[SegmentArtifact] = []
        if self.store is not None:
            while start < len(bounds) and self.store.has(keys[start]):
                start += 1
            try:
                cached_artifacts = [self.store.load(keys[i])
                                    for i in range(start)]
            except StorageError:
                # A quarantined/corrupt blob: demote to a full recompute
                # (slower, never wrong) — mirrors PipelineRunner.
                obs.counter("pipeline.integrity_recoveries").inc()
                obs.event("ingest.resume_demoted", level="warning",
                          clip=result.name)
                start, cached_artifacts = 0, []

        carry = (copy.deepcopy(cached_artifacts[-1].carry)
                 if cached_artifacts else self._fresh_carry(result))
        final_artifact: SegmentArtifact | None = None
        done = 0
        for art in cached_artifacts:
            self.segments_cached += 1
            obs.counter("ingest.segments").inc(outcome="cached")
            done += 1
            if art.tracks is not None:
                final_artifact = art
            yield SegmentEmission(
                index=art.index, frame_lo=art.frame_lo,
                frame_hi=art.frame_hi, bags=art.bags,
                frontier=art.frontier, cached=True,
                n_open_tracks=art.n_open_tracks,
                n_finished_tracks=art.n_finished_tracks,
                final=art.index == len(bounds) - 1,
            )

        clip = self._render(result) if start < len(bounds) else None
        for i in range(start, len(bounds)):
            lo, hi = bounds[i]
            final = i == len(bounds) - 1
            with obs.span("ingest.segment", clip=result.name, segment=i,
                          frames=hi - lo) as sp:
                detections = carry.segmenter.process_range(clip, lo, hi)
                for frame in range(lo, hi):
                    carry.tracker.update(frame, detections[frame - lo])
                if final:
                    tracks = carry.tracker.finish()
                    bags = carry.emitter.emit(
                        tracks, [], processed_frames=hi, final=True)
                else:
                    tracks = None
                    bags = carry.emitter.emit(
                        carry.tracker.finished_tracks,
                        carry.tracker.open_tracks,
                        processed_frames=hi)
                if sp is not None:
                    sp.set(bags=len(bags),
                           frontier=carry.emitter.last_frontier)
            self.segments_executed += 1
            done += 1
            obs.counter("ingest.segments").inc(outcome="computed")
            if bags:
                obs.counter("ingest.bags_emitted").inc(len(bags))
            lag = (hi - 1) - carry.emitter.last_frontier
            obs.gauge("ingest.lag_frames").set(max(lag, 0))
            elapsed = time.perf_counter() - started
            if elapsed > 0:
                obs.gauge("ingest.segments_per_sec").set(done / elapsed)

            artifact = SegmentArtifact(
                index=i, frame_lo=lo, frame_hi=hi,
                frontier=carry.emitter.last_frontier, bags=bags,
                carry=copy.deepcopy(carry),
                n_open_tracks=len(carry.tracker.open_tracks),
                n_finished_tracks=len(carry.tracker.finished_tracks),
                tracks=tracks,
                dataset=carry.emitter.last_dataset if final else None,
            )
            if final:
                final_artifact = artifact
            if self.store is not None:
                self.store.save(keys[i], artifact, meta={
                    "clip_id": result.name,
                    "stage": f"stream.segment[{i}]",
                    "fingerprint": repr(self._stream_fingerprint()),
                })
            yield SegmentEmission(
                index=i, frame_lo=lo, frame_hi=hi, bags=bags,
                frontier=artifact.frontier, cached=False,
                n_open_tracks=artifact.n_open_tracks,
                n_finished_tracks=artifact.n_finished_tracks,
                final=final,
            )

        assert final_artifact is not None
        self.artifacts = self._finalize(result, final_artifact)

    def _finalize(self, result: SimulationResult,
                  final_artifact: SegmentArtifact) -> ClipArtifacts:
        from repro.index.ivf import build_index_for_dataset

        dataset = final_artifact.dataset
        assert dataset is not None and final_artifact.tracks is not None
        index = build_index_for_dataset(
            dataset, n_cells=self.config.index.n_cells,
            seed=self.config.index.seed, iters=self.config.index.iters)
        return ClipArtifacts(
            result=result,
            tracks=final_artifact.tracks,
            dataset=dataset,
            ground_truth=GroundTruth.from_result(result),
            stage_runs={"stream": self.segments_executed},
            index=index,
        )

    # --------------------------------------------------------------- run
    def run(self, result: SimulationResult,
            on_emission: Callable[[SegmentEmission], None] | None = None
            ) -> ClipArtifacts:
        """Drive the whole stream; returns batch-identical artifacts.

        ``on_emission`` is called after every segment — the streaming
        ingest path uses it to append each emission's bags to the
        database/live shard as soon as they are final.
        """
        with get_telemetry().span("pipeline.stream", clip=result.name,
                                  segment_frames=self.segment_frames):
            for emission in self.stream(result):
                if on_emission is not None:
                    on_emission(emission)
        assert self.artifacts is not None
        return self.artifacts
