"""Staged clip-ingestion pipeline with content-addressed artifact reuse.

The paper's fixed five-stage chain (Figure 6) as explicit, composable
:class:`~repro.pipeline.stages.Stage` objects — Render, Segment, Track,
Stitch, Series, Windows (plus the Oracle shortcut) — each with a typed
config whose ``params_key()`` fingerprint chains into the content
address of the stage's artifact.  :class:`PipelineRunner` composes the
chain over an optional :class:`ArtifactStore`, so parameter sweeps reuse
every upstream artifact and config changes invalidate exactly the
dependent suffix.  ``repro.eval.pipeline.build_artifacts`` is a thin
compatibility shim over this package.
"""

from repro.pipeline.artifacts import ClipArtifacts
from repro.pipeline.config import (
    IndexConfig,
    OracleConfig,
    PipelineConfig,
    RenderConfig,
    SegmentConfig,
    SeriesConfig,
    StageConfig,
    StitchConfig,
    TrackConfig,
    WindowConfig,
)
from repro.pipeline.runner import PipelineRunner, clip_digest
from repro.pipeline.segmented import (
    SegmentArtifact,
    SegmentEmission,
    SegmentedRunner,
)
from repro.pipeline.stages import Stage, StageContext, build_stages
from repro.pipeline.store import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    StoreAudit,
    resolve_store,
)

__all__ = [
    "ClipArtifacts",
    "StageConfig",
    "RenderConfig",
    "SegmentConfig",
    "TrackConfig",
    "StitchConfig",
    "OracleConfig",
    "SeriesConfig",
    "WindowConfig",
    "IndexConfig",
    "PipelineConfig",
    "Stage",
    "StageContext",
    "build_stages",
    "PipelineRunner",
    "clip_digest",
    "SegmentedRunner",
    "SegmentEmission",
    "SegmentArtifact",
    "ArtifactStore",
    "MemoryArtifactStore",
    "DiskArtifactStore",
    "StoreAudit",
    "resolve_store",
]
