"""Per-stage configuration dataclasses with stable fingerprints.

Every stage config exposes ``params_key()`` — a hashable, deterministic
identity of the stage family plus all of its parameters, mirroring
``repro.svm.kernels.Kernel.params_key()``.  The runner chains these keys
(clip digest -> stage 1 key -> ... -> stage k key) into the content
address of stage k's artifact, so changing any upstream parameter
invalidates exactly the suffix of the pipeline that depends on it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.events.features import SamplingConfig
from repro.events.models import EventModel, event_model_for

__all__ = [
    "StageConfig",
    "RenderConfig",
    "SegmentConfig",
    "TrackConfig",
    "StitchConfig",
    "OracleConfig",
    "SeriesConfig",
    "WindowConfig",
    "IndexConfig",
    "PipelineConfig",
]


def _freeze(value):
    """Recursively convert a config value into a hashable literal."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, frozenset):
        return tuple(sorted(map(str, value)))
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ConfigurationError(
        f"cannot fingerprint config value of type {type(value).__name__}"
    )


@dataclass(frozen=True)
class StageConfig:
    """Base class: fingerprint = class name + every dataclass field."""

    def params_key(self) -> tuple:
        return _freeze(self)


@dataclass(frozen=True)
class RenderConfig(StageConfig):
    """Simulation -> frames (``VideoClip.from_simulation``)."""

    render_seed: int = 7
    noise_sigma: float = 2.0
    fps: float = 25.0


@dataclass(frozen=True)
class SegmentConfig(StageConfig):
    """Frames -> per-frame detections (``SegmentationPipeline``)."""

    use_spcpe: bool = False
    min_area: int = 25
    max_area: int | None = 4000
    patch_margin: int = 5


@dataclass(frozen=True)
class TrackConfig(StageConfig):
    """Detections -> tracks (``CentroidTracker``)."""


@dataclass(frozen=True)
class StitchConfig(StageConfig):
    """Post-tracking fragment stitching (identity when disabled)."""

    enabled: bool = False


@dataclass(frozen=True)
class OracleConfig(StageConfig):
    """Simulator-truth tracks with optional centroid jitter."""

    jitter: float = 0.4
    seed: int = 0
    min_track_length: int = 5


@dataclass(frozen=True)
class SeriesConfig(StageConfig):
    """Tracks -> checkpoint feature series (``extract_series``)."""

    sampling: SamplingConfig = field(default_factory=SamplingConfig)


@dataclass(frozen=True)
class WindowConfig(StageConfig):
    """Feature series -> MIL dataset (``build_dataset``)."""

    event: str = "accident"
    window_size: int = 3
    step: int | None = None
    keep_empty: bool = False


@dataclass(frozen=True)
class IndexConfig(StageConfig):
    """MIL dataset -> per-clip IVF index (``build_index_for_dataset``)."""

    n_cells: int = 32
    seed: int = 0
    iters: int = 15


@dataclass(frozen=True)
class PipelineConfig:
    """Full pipeline recipe: mode plus one config per stage.

    ``event`` may be a registered event-model name or an
    :class:`~repro.events.models.EventModel` instance (custom models);
    either way it is folded into the Windows stage fingerprint through
    the model's name and feature channels.
    """

    mode: str = "vision"
    render: RenderConfig = field(default_factory=RenderConfig)
    segment: SegmentConfig = field(default_factory=SegmentConfig)
    track: TrackConfig = field(default_factory=TrackConfig)
    stitch: StitchConfig = field(default_factory=StitchConfig)
    oracle: OracleConfig = field(default_factory=OracleConfig)
    series: SeriesConfig = field(default_factory=SeriesConfig)
    windows: WindowConfig = field(default_factory=WindowConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    event_model: EventModel | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("vision", "oracle"):
            raise ConfigurationError(
                f"mode must be 'vision' or 'oracle', got {self.mode!r}"
            )
        if self.mode == "oracle" and self.stitch.enabled:
            raise ConfigurationError(
                "stitch=True is a vision-mode option: oracle tracks come "
                "straight from simulator truth and have nothing to stitch"
            )

    def resolve_event_model(self) -> EventModel:
        if self.event_model is not None:
            return self.event_model
        return event_model_for(self.windows.event)

    @classmethod
    def from_build_kwargs(
        cls,
        *,
        event: str | EventModel = "accident",
        mode: str = "vision",
        window_size: int = 3,
        step: int | None = None,
        sampling: SamplingConfig | None = None,
        oracle_jitter: float = 0.4,
        render_seed: int = 7,
        use_spcpe: bool = False,
        stitch: bool = False,
        seed: int = 0,
    ) -> "PipelineConfig":
        """Build a config from the historical ``build_artifacts`` keywords."""
        model = event if isinstance(event, EventModel) else None
        event_name = event.name if isinstance(event, EventModel) else event
        return cls(
            mode=mode,
            render=RenderConfig(render_seed=render_seed),
            segment=SegmentConfig(use_spcpe=use_spcpe),
            stitch=StitchConfig(enabled=stitch),
            oracle=OracleConfig(jitter=oracle_jitter, seed=seed),
            series=SeriesConfig(sampling=sampling or SamplingConfig()),
            windows=WindowConfig(event=event_name, window_size=window_size,
                                 step=step),
            event_model=model,
        )
