"""The per-clip artifact bundle consumed by evaluation and the database."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.bags import MILDataset
from repro.events.models import event_model_for
from repro.index.ivf import IVFIndex
from repro.sim.ground_truth import GroundTruth
from repro.sim.world import SimulationResult
from repro.tracking.track import Track

__all__ = ["ClipArtifacts"]


@dataclass
class ClipArtifacts:
    """Everything downstream evaluation needs for one clip."""

    result: SimulationResult
    tracks: list[Track]
    dataset: MILDataset
    ground_truth: GroundTruth
    #: stage name -> times the stage actually executed for this bundle
    #: (0 = served from the artifact store).
    stage_runs: dict[str, int] = field(default_factory=dict)
    #: per-clip IVF index over the dataset's instance vectors (the
    #: Index stage output; None for bundles built by older paths).
    index: IVFIndex | None = None

    @cached_property
    def relevant_bag_ids(self) -> set[int]:
        """Bags a querying user of this dataset's event would confirm.

        Cached: resolving the event model and re-labelling every bag
        against ground truth is O(n_bags x n_incidents), and callers
        (the RF protocol, experiment metadata) ask once per round.
        """
        model = event_model_for(self.dataset.event_name)
        return {
            b.bag_id for b in self.dataset.bags
            if self.ground_truth.label_window(b.frame_lo, b.frame_hi,
                                              model.relevant_kinds)
        }
