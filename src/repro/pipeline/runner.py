"""PipelineRunner: compose stages, replay cached suffix-invalidated work.

The runner owns a stage chain built from a :class:`PipelineConfig` and an
optional :class:`ArtifactStore`.  For each clip it derives a *chain key*
per stage — SHA-256 over the clip digest plus the fingerprints of every
stage up to and including that one — and resumes execution after the
deepest stage whose artifact the store already holds.  Consequences:

* a sweep over a downstream knob (``window_size``, ``step``, sampling)
  re-runs only the suffix that depends on it; Render/Segment/Track
  happen once per clip per sweep;
* changing any upstream config changes every downstream chain key, so
  exactly the dependent suffix recomputes — there is no way to serve a
  stale artifact.

Without a store the runner simply executes every stage, which is the
historical ``build_artifacts`` behaviour.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import StorageError
from repro.obs import get_telemetry
from repro.pipeline.artifacts import ClipArtifacts
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stages import Stage, StageContext, build_stages
from repro.pipeline.store import ArtifactStore, resolve_store
from repro.sim.ground_truth import GroundTruth
from repro.sim.world import SimulationResult

__all__ = ["PipelineRunner", "clip_digest"]


def clip_digest(result: SimulationResult) -> str:
    """Content digest of a simulated clip (identity of the raw footage).

    Covers the clip id, geometry, and every vehicle state, so two
    simulations agree on the digest iff they would render identical
    footage; the scenario seed is captured through the states it shaped.
    """
    h = hashlib.sha256()
    h.update(repr((result.name, result.n_frames, result.width,
                   result.height)).encode("utf-8"))
    for frame_states in result.states:
        for s in frame_states:
            h.update(np.array([s.vid, s.x, s.y, s.vx, s.vy],
                              dtype=np.float64).tobytes())
    return h.hexdigest()


class PipelineRunner:
    """Compose the stage chain and consult an artifact store between runs."""

    def __init__(self, config: PipelineConfig | None = None, *,
                 store: ArtifactStore | str | None = None) -> None:
        self.config = config or PipelineConfig()
        self.store = resolve_store(store)
        self.stages: list[Stage] = build_stages(self.config)
        #: cumulative per-stage cache hits across runs of this runner
        #: (the process-wide ``pipeline.stage.cache_hit{stage=}`` counter
        #: aggregates the same events across *all* runners)
        self.cache_hits: dict[str, int] = {s.name: 0 for s in self.stages}
        #: times a resume-load failed verification and the runner fell
        #: back to a full recompute (self-healing store in action);
        #: mirrored by the ``pipeline.integrity_recoveries`` counter
        self.integrity_recoveries: int = 0

    # ------------------------------------------------------------- keys
    def chain_keys(self, result: SimulationResult) -> list[str]:
        """One content address per stage: clip digest + fingerprint chain."""
        chain: list = [clip_digest(result)]
        keys = []
        for stage in self.stages:
            chain.append(stage.fingerprint())
            digest = hashlib.sha256(
                repr(tuple(chain)).encode("utf-8")).hexdigest()
            keys.append(digest)
        return keys

    # -------------------------------------------------------------- run
    def _resume_point(self, keys: list[str]) -> int:
        """Index of the first stage that must execute (0 = run everything).

        A stage may be skipped only if its own artifact is stored *and*
        every cacheable stage before it is stored too: the ``provides``
        outputs among them ship inside :class:`ClipArtifacts`, and
        requiring the full prefix means a store with a hole in it (a
        quarantined blob, an interrupted write) backfills the missing
        artifact on the next run instead of carrying the gap forever.
        """
        if self.store is None:
            return 0
        for i in range(len(self.stages) - 1, -1, -1):
            stage = self.stages[i]
            if not stage.cacheable or not self.store.has(keys[i]):
                continue
            prior = [
                j for j, s in enumerate(self.stages[:i]) if s.cacheable
            ]
            if all(self.store.has(keys[j]) for j in prior):
                return i + 1
        return 0

    def run(self, result: SimulationResult) -> ClipArtifacts:
        """Build one clip's artifacts, reusing stored stage outputs."""
        with get_telemetry().span("pipeline.run", clip=result.name,
                                  mode=self.config.mode):
            return self._run(result)

    def _run(self, result: SimulationResult) -> ClipArtifacts:
        obs = get_telemetry()
        ctx = StageContext(result)
        keys = self.chain_keys(result)
        outputs: dict[str, object] = {}
        stage_runs: dict[str, int] = {s.name: 0 for s in self.stages}

        start = self._resume_point(keys)
        value: object = result
        if start > 0:
            # Load the resume artifact and any exposed upstream outputs.
            # Loads verify checksums; a blob that fails verification is
            # quarantined by the store and surfaces as a StorageError,
            # which demotes the whole resume to a recompute — slower,
            # never wrong.  Hits are committed only on success so the
            # counters stay truthful across a demoted resume.
            loaded: dict[str, object] = {}
            hits: list[str] = []
            try:
                for j, stage in enumerate(self.stages[:start]):
                    if not stage.cacheable:
                        continue  # e.g. Render: skipped, not served
                    hits.append(stage.name)
                    if stage.provides is not None:
                        loaded[stage.provides] = self.store.load(keys[j])
                resumed = self.stages[start - 1]
                if resumed.provides is not None:
                    value = loaded[resumed.provides]
                else:
                    value = self.store.load(keys[start - 1])
            except StorageError:
                self.integrity_recoveries += 1
                obs.counter("pipeline.integrity_recoveries").inc()
                obs.event("pipeline.resume_demoted", level="warning",
                          clip=result.name,
                          stage=self.stages[start - 1].name)
                start, value = 0, result
            else:
                outputs.update(loaded)
                for name in hits:
                    self.cache_hits[name] += 1
                    obs.counter("pipeline.stage.cache_hit").inc(stage=name)

        cache_miss = obs.counter("pipeline.stage.cache_miss")
        for i in range(start, len(self.stages)):
            stage = self.stages[i]
            with obs.span("pipeline.stage", stage=stage.name,
                          clip=result.name):
                value = stage.run(ctx, value)
            stage_runs[stage.name] += 1
            if stage.provides is not None:
                outputs[stage.provides] = value
            if self.store is not None and stage.cacheable:
                cache_miss.inc(stage=stage.name)
                self.store.save(keys[i], value, meta={
                    "clip_id": result.name,
                    "stage": stage.name,
                    "fingerprint": repr(stage.fingerprint()),
                })

        return ClipArtifacts(
            result=result,
            tracks=outputs["tracks"],
            dataset=outputs["dataset"],
            ground_truth=GroundTruth.from_result(result),
            stage_runs=stage_runs,
            index=outputs.get("index"),
        )
