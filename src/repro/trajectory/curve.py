"""Polynomial curve and parametric trajectory models.

:class:`PolynomialCurve` is one fitted polynomial with evaluation and
differentiation; :class:`TrajectoryModel` fits a vehicle trail as a pair
of polynomials x(t), y(t) over frame time, whose first derivative is the
velocity tangent vector the paper uses (Section 3.2).  Inputs are
normalized to a centered unit interval internally so high degrees stay
well conditioned on frame numbers in the thousands.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.trajectory.polyfit import fit_polynomial, vandermonde

__all__ = ["PolynomialCurve", "TrajectoryModel"]


class PolynomialCurve:
    """A univariate polynomial ``f(u) = a_0 + a_1 u + ... + a_k u^k``
    composed with the affine input map ``u = (x - shift) / scale``."""

    def __init__(self, coefficients: np.ndarray, *, shift: float = 0.0,
                 scale: float = 1.0) -> None:
        coeffs = np.atleast_1d(np.asarray(coefficients, dtype=float))
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise ConfigurationError(
                f"coefficients must be a non-empty 1-D array, got shape "
                f"{coeffs.shape}"
            )
        if scale == 0:
            raise ConfigurationError("scale must be non-zero")
        self.coefficients = coeffs
        self.shift = float(shift)
        self.scale = float(scale)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray,
            degree: int) -> "PolynomialCurve":
        """Least-squares fit with internal input normalization."""
        x = np.asarray(x, dtype=float).ravel()
        shift = float(x.mean()) if len(x) else 0.0
        span = float(x.max() - x.min()) if len(x) > 1 else 1.0
        scale = span / 2.0 if span > 0 else 1.0
        u = (x - shift) / scale
        coeffs, _ = fit_polynomial(u, y, degree)
        return cls(coeffs, shift=shift, scale=scale)

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        u = (np.asarray(x, dtype=float) - self.shift) / self.scale
        value = vandermonde(np.atleast_1d(u), self.degree) @ self.coefficients
        return float(value[0]) if np.isscalar(x) else value

    def derivative(self) -> "PolynomialCurve":
        """d/dx of the curve (chain rule folds in the input scale)."""
        if self.degree == 0:
            return PolynomialCurve([0.0], shift=self.shift, scale=self.scale)
        powers = np.arange(1, self.degree + 1, dtype=float)
        coeffs = self.coefficients[1:] * powers / self.scale
        return PolynomialCurve(coeffs, shift=self.shift, scale=self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PolynomialCurve(degree={self.degree}, "
                f"coefficients={np.round(self.coefficients, 4).tolist()})")


class TrajectoryModel:
    """Parametric trajectory: x(t), y(t) fitted over frame time.

    The paper fits y as a polynomial of x (its clips move mostly along one
    axis); a parametric fit over time subsumes that and also handles
    vertical motion, stops and U-turns.  ``degree`` follows the paper's
    example (a 4th-degree polynomial in Figure 2).
    """

    def __init__(self, frames: np.ndarray, points: np.ndarray,
                 degree: int = 4) -> None:
        frames = np.asarray(frames, dtype=float).ravel()
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if len(frames) != len(points):
            raise ConfigurationError(
                f"{len(frames)} frames but {len(points)} points"
            )
        if len(frames) < 2:
            raise ConfigurationError(
                "need at least 2 observations to model a trajectory"
            )
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        self.frames = frames
        self.degree = int(degree)
        self.curve_x = PolynomialCurve.fit(frames, points[:, 0], degree)
        self.curve_y = PolynomialCurve.fit(frames, points[:, 1], degree)
        self._dx = self.curve_x.derivative()
        self._dy = self.curve_y.derivative()
        fitted = self.positions(frames)
        self.rms_error = float(
            np.sqrt(np.mean(np.sum((fitted - points) ** 2, axis=1)))
        )

    @property
    def t_min(self) -> float:
        return float(self.frames.min())

    @property
    def t_max(self) -> float:
        return float(self.frames.max())

    def position(self, t: float) -> np.ndarray:
        return np.array([self.curve_x(float(t)), self.curve_y(float(t))])

    def positions(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float).ravel()
        return np.column_stack([self.curve_x(t), self.curve_y(t)])

    def velocity(self, t: float) -> np.ndarray:
        """Tangent vector at ``t`` (pixels per frame)."""
        return np.array([self._dx(float(t)), self._dy(float(t))])

    def velocities(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float).ravel()
        return np.column_stack([self._dx(t), self._dy(t)])

    def speed(self, t: float) -> float:
        return float(np.hypot(*self.velocity(t)))

    @classmethod
    def from_track(cls, track, degree: int = 4) -> "TrajectoryModel":
        """Fit a :class:`~repro.tracking.track.Track` directly."""
        return cls(track.frame_array(), track.point_array(), degree=degree)
