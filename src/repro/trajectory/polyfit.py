"""Least-squares polynomial fitting, written out as paper Eq. (1)-(2).

Given n samples of (x, y), build the Vandermonde system

    [1  x_1  ...  x_1^k] [a_0]   [y_1]
    [1  x_2  ...  x_2^k] [a_1] = [y_2]
    [ ...              ] [...]   [...]
    [1  x_n  ...  x_n^k] [a_k]   [y_n]

and solve it in the least-squares sense.  Inputs are shifted/scaled to a
centered unit interval internally for conditioning; coefficients are
returned in that normalized basis together with the transform, wrapped by
:class:`repro.trajectory.curve.PolynomialCurve`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["vandermonde", "fit_polynomial"]


def vandermonde(x: np.ndarray, degree: int) -> np.ndarray:
    """Column matrix [x^0, x^1, ..., x^degree] (paper Eq. 2, lhs)."""
    if degree < 0:
        raise ConfigurationError(f"degree must be >= 0, got {degree}")
    x = np.asarray(x, dtype=float).ravel()
    return np.vander(x, degree + 1, increasing=True)


def fit_polynomial(x: np.ndarray, y: np.ndarray,
                   degree: int) -> tuple[np.ndarray, float]:
    """Fit ``y ~ a_0 + a_1 x + ... + a_k x^k`` by least squares.

    Returns ``(coefficients, rms_residual)`` with coefficients in
    increasing-power order ``[a_0, ..., a_k]``.  The requested degree is
    capped at ``n_points - 1`` (an exact interpolation) so the system is
    never underdetermined.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if len(x) != len(y):
        raise ConfigurationError(
            f"x and y must have equal length, got {len(x)} and {len(y)}"
        )
    if len(x) == 0:
        raise ConfigurationError("cannot fit a polynomial to 0 points")
    effective = min(degree, len(x) - 1)
    matrix = vandermonde(x, effective)
    coeffs, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    residuals = y - matrix @ coeffs
    rms = float(np.sqrt(np.mean(residuals**2)))
    if effective < degree:
        coeffs = np.concatenate([coeffs, np.zeros(degree - effective)])
    return coeffs, rms
