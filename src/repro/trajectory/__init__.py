"""Trajectory modeling: least-squares polynomial curve fitting.

Reproduces paper Section 3.2: a vehicle's centroid trail is approximated
by a k-th degree polynomial fitted by least squares (Eq. 1-2); "the first
derivative of a polynomial curve is a tangent vector, which represents the
velocities of that vehicle at different time".
"""

from repro.trajectory.polyfit import fit_polynomial, vandermonde
from repro.trajectory.curve import PolynomialCurve, TrajectoryModel

__all__ = [
    "fit_polynomial",
    "vandermonde",
    "PolynomialCurve",
    "TrajectoryModel",
]
