"""Raster renderer: simulated vehicle states -> noisy grayscale frames.

The renderer exists so the *vision* side of the pipeline (background
learning, SPCPE segmentation, blob tracking) runs on actual images, not on
oracle positions.  Frames are uint8 grayscale with per-frame sensor noise
and a small global illumination flicker, which is exactly the regime the
paper's background-subtraction front end has to cope with.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.sim.camera import CameraModel
from repro.sim.world import SimulationResult, VehicleState
from repro.utils import as_rng, check_positive

__all__ = ["Renderer", "render_clip", "build_background"]

#: Gray level used outside the calibrated road plane (tilted cameras see
#: sky/structure above the horizon).
_VOID = 25.0

_ROAD = 110.0
_OFFROAD = 70.0
_WALL = 35.0
_MARKING = 160.0


def build_background(width: int, height: int, metadata: dict) -> np.ndarray:
    """Static scene background for a scenario, as float32 gray levels.

    The layout key is ``metadata["scenario"]``: ``tunnel`` (horizontal road
    with dark side walls), ``intersection`` (crossing roads), anything else
    (plain horizontal road).
    """
    check_positive("width", width)
    check_positive("height", height)
    img = np.full((height, width), _OFFROAD, dtype=np.float32)
    # Mild vertical illumination gradient so the background is not flat.
    img += np.linspace(-4.0, 4.0, height, dtype=np.float32)[:, None]
    cx, cy = width // 2, height // 2
    scenario = metadata.get("scenario", "road")

    xs = np.arange(width)
    dashes_x = (xs % 24) < 12

    if scenario == "tunnel":
        road_half = 27
        img[cy - road_half : cy + road_half, :] = _ROAD
        img[cy - road_half - 8 : cy - road_half, :] = _WALL
        img[cy + road_half : cy + road_half + 8, :] = _WALL
        img[cy, dashes_x] = _MARKING
    elif scenario == "intersection":
        half = 18
        img[cy - half : cy + half, :] = _ROAD
        img[:, cx - half : cx + half] = _ROAD
        ys = np.arange(height)
        dashes_y = (ys % 24) < 12
        outside_x = np.abs(xs - cx) > half
        outside_y = np.abs(ys - cy) > half
        img[cy, dashes_x & outside_x] = _MARKING
        img[dashes_y & outside_y, cx] = _MARKING
    else:
        half = 20
        img[cy - half : cy + half, :] = _ROAD
        img[cy, dashes_x] = _MARKING
    return img


def _draw_vehicle(img: np.ndarray, state: VehicleState) -> None:
    """Fill the axis-aligned vehicle rectangle, clipped to the frame."""
    height, width = img.shape
    hx, hy = state.half_extents()
    x0 = max(int(round(state.x - hx)), 0)
    x1 = min(int(round(state.x + hx)), width)
    y0 = max(int(round(state.y - hy)), 0)
    y1 = min(int(round(state.y + hy)), height)
    if x1 <= x0 or y1 <= y0:
        return
    img[y0:y1, x0:x1] = state.intensity
    # Darker roof stripe so vehicles are not perfectly flat blobs.
    ry0 = y0 + max(1, (y1 - y0) // 3)
    ry1 = min(y1, ry0 + max(1, (y1 - y0) // 4))
    img[ry0:ry1, x0:x1] = max(state.intensity - 45.0, 10.0)


class Renderer:
    """Render frames for one :class:`SimulationResult`.

    Parameters
    ----------
    result:
        The simulation to render.
    noise_sigma:
        Standard deviation of additive per-pixel Gaussian sensor noise —
        a scalar, or a per-pixel (height, width) array for spatially
        varying noise (flickering reflections, a failing sensor region).
    flicker_sigma:
        Standard deviation of the per-frame multiplicative illumination
        flicker (0 disables it).
    seed:
        RNG seed for the noise stream (independent of the simulation seed).
    camera:
        Optional :class:`~repro.sim.camera.CameraModel`.  When given, the
        simulation's coordinates are treated as road-plane world
        coordinates and the frame is shot through the camera: the
        background is warped by the inverse homography and vehicles are
        projected, scaled by local magnification.
    """

    def __init__(
        self,
        result: SimulationResult,
        *,
        noise_sigma: float | np.ndarray = 2.0,
        flicker_sigma: float = 0.004,
        illumination_drift: float = 0.0,
        drift_period: int = 1200,
        seed: int | np.random.Generator | None = 7,
        camera: CameraModel | None = None,
    ) -> None:
        noise_sigma = np.asarray(noise_sigma, dtype=float)
        if noise_sigma.ndim not in (0, 2):
            raise ValueError(
                "noise_sigma must be a scalar or (height, width) array"
            )
        if np.any(noise_sigma < 0) or flicker_sigma < 0:
            raise ValueError("noise/flicker sigmas must be >= 0")
        if illumination_drift < 0 or illumination_drift >= 1:
            raise ValueError("illumination_drift must be in [0, 1)")
        check_positive("drift_period", drift_period)
        self.result = result
        self.noise_sigma = (float(noise_sigma) if noise_sigma.ndim == 0
                            else noise_sigma)
        self.flicker_sigma = float(flicker_sigma)
        self.illumination_drift = float(illumination_drift)
        self.drift_period = int(drift_period)
        self.rng = as_rng(seed)
        self.camera = camera
        world_bg = build_background(result.width, result.height,
                                    result.metadata)
        if camera is None:
            self.background = world_bg
        else:
            self.background = self._warp_background(world_bg, camera)

    @staticmethod
    def _warp_background(world_bg: np.ndarray,
                         camera: CameraModel) -> np.ndarray:
        """Sample the world background through the camera (nearest px)."""
        height, width = world_bg.shape
        vs, us = np.mgrid[0:height, 0:width]
        pixels = np.column_stack([us.ravel(), vs.ravel()]).astype(float)
        # Guard against horizon pixels: do the division manually.
        inv = np.linalg.inv(camera.matrix)
        homogeneous = np.column_stack([pixels, np.ones(len(pixels))])
        world = homogeneous @ inv.T
        w = world[:, 2]
        valid = np.abs(w) > 1e-9
        out = np.full(height * width, _VOID, dtype=np.float32)
        wx = np.where(valid, world[:, 0] / np.where(valid, w, 1.0), -1)
        wy = np.where(valid, world[:, 1] / np.where(valid, w, 1.0), -1)
        inside = valid & (wx >= 0) & (wx < width - 0.5) \
            & (wy >= 0) & (wy < height - 0.5)
        xi = np.clip(wx[inside].round().astype(int), 0, width - 1)
        yi = np.clip(wy[inside].round().astype(int), 0, height - 1)
        out[inside.nonzero()[0]] = world_bg[yi, xi]
        return out.reshape(height, width)

    def _through_camera(self, state: VehicleState) -> VehicleState | None:
        """Project one vehicle's state into image coordinates."""
        assert self.camera is not None
        try:
            image_pos = self.camera.project([[state.x, state.y]])[0]
            ahead = self.camera.project(
                [[state.x + state.vx, state.y + state.vy]])[0]
        except ConfigurationError as exc:
            # The point sits on the camera's horizon plane — a geometry
            # outcome of this vehicle's position, not a renderer bug.
            # Count and log it instead of swallowing every error here.
            obs = get_telemetry()
            obs.counter("sim.projection_clipped").inc()
            obs.event("render.projection_clipped", level="warning",
                      vid=state.vid, x=round(state.x, 2),
                      y=round(state.y, 2), reason=str(exc))
            return None
        scale = self.camera.local_scale([state.x, state.y])
        if scale <= 1e-6:
            return None
        return VehicleState(
            vid=state.vid, kind=state.kind,
            x=float(image_pos[0]), y=float(image_pos[1]),
            vx=float(ahead[0] - image_pos[0]),
            vy=float(ahead[1] - image_pos[1]),
            length=state.length * scale, width=state.width * scale,
            intensity=state.intensity,
        )

    def gain(self, frame_index: int) -> float:
        """Deterministic slow illumination drift (cloud cover, dusk)."""
        if self.illumination_drift == 0.0:
            return 1.0
        phase = 2.0 * np.pi * frame_index / self.drift_period
        return 1.0 + self.illumination_drift * np.sin(phase)

    def clean_frame(self, frame_index: int) -> np.ndarray:
        """Background + vehicles, float32, no noise or flicker."""
        states = self.result.states[frame_index]
        img = self.background.copy()
        for state in states:
            if self.camera is not None:
                projected = self._through_camera(state)
                if projected is None:
                    continue
                _draw_vehicle(img, projected)
            else:
                _draw_vehicle(img, state)
        drift = self.gain(frame_index)
        if drift != 1.0:
            img *= drift
        return img

    def render(self, frame_index: int) -> np.ndarray:
        """Render one frame as a uint8 grayscale image."""
        img = self.clean_frame(frame_index)
        if self.flicker_sigma > 0:
            img *= 1.0 + self.rng.normal(0.0, self.flicker_sigma)
        if np.any(self.noise_sigma > 0):
            img += self.rng.normal(0.0, 1.0, size=img.shape) \
                * self.noise_sigma
        return np.clip(img, 0, 255).astype(np.uint8)

    def frames(self) -> Iterator[np.ndarray]:
        """Yield all frames in order (lazy; preferred for long clips)."""
        for i in range(self.result.n_frames):
            yield self.render(i)


def render_clip(result: SimulationResult, **kwargs) -> np.ndarray:
    """Render a whole clip into an (n_frames, height, width) uint8 array.

    Convenience for short clips and tests; long clips should consume
    :meth:`Renderer.frames` lazily instead.
    """
    renderer = Renderer(result, **kwargs)
    return np.stack([renderer.render(i) for i in range(result.n_frames)])
