"""Camera geometry: planar homographies between road plane and image.

Paper Section 6.2 (closing): "Ideally, all the video clips in a
transportation surveillance video database shall be mined and retrieved
as a whole.  However ... it requires that we normalize all the video
clips taken at different locations with different camera parameters.
Those parameters, such as camera angle and camera position, are necessary
for normalization."

This module provides those parameters: a :class:`CameraModel` maps points
on the road plane (world coordinates, metres-ish) to image pixels via a
3x3 homography.  The renderer can shoot a scenario through a camera, and
:mod:`repro.vision.calibration` inverts the mapping so trajectories from
different cameras become comparable — the normalization experiment the
paper leaves as future work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import check_positive

__all__ = ["CameraModel"]


class CameraModel:
    """A world-plane -> image homography with convenience constructors.

    World coordinates live on the road plane (Z = 0); image coordinates
    are pixels.  ``matrix`` is the 3x3 homography H with
    ``image ~ H @ [X, Y, 1]``.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise ConfigurationError(
                f"homography must be 3x3, got shape {matrix.shape}"
            )
        if abs(np.linalg.det(matrix)) < 1e-12:
            raise ConfigurationError("homography is singular")
        self.matrix = matrix / matrix[2, 2]

    @classmethod
    def identity(cls) -> "CameraModel":
        return cls(np.eye(3))

    @classmethod
    def overhead(cls, *, scale: float = 1.0,
                 offset: tuple[float, float] = (0.0, 0.0)) -> "CameraModel":
        """Orthographic-like overhead camera: uniform scale + shift."""
        check_positive("scale", scale)
        h = np.array([
            [scale, 0.0, offset[0]],
            [0.0, scale, offset[1]],
            [0.0, 0.0, 1.0],
        ])
        return cls(h)

    @classmethod
    def tilted(cls, *, tilt_deg: float = 20.0, height: float = 260.0,
               focal: float = 220.0,
               principal: tuple[float, float] = (160.0, 150.0),
               world_center: tuple[float, float] = (160.0, 120.0)
               ) -> "CameraModel":
        """Pinhole camera looking down at the road plane at an angle.

        The camera sits ``height`` world units above the point
        ``world_center`` on the road plane, pitched ``tilt_deg`` away
        from straight-down, with focal length ``focal`` pixels.  The
        resulting homography is H = K [r1 r2 t] for the Z = 0 plane.
        """
        check_positive("height", height)
        check_positive("focal", focal)
        if not 0.0 <= tilt_deg < 85.0:
            raise ConfigurationError(
                f"tilt_deg must be in [0, 85), got {tilt_deg}"
            )
        tilt = np.deg2rad(tilt_deg)
        # Rotation: camera z-axis points at the plane; pitch about x.
        rot = np.array([
            [1.0, 0.0, 0.0],
            [0.0, np.cos(tilt), -np.sin(tilt)],
            [0.0, np.sin(tilt), np.cos(tilt)],
        ])
        # World origin shifted to the camera footprint.
        cx, cy = world_center
        translation = rot @ np.array([-cx, -cy, 0.0]) + np.array(
            [0.0, 0.0, height])
        intrinsics = np.array([
            [focal, 0.0, principal[0]],
            [0.0, focal, principal[1]],
            [0.0, 0.0, 1.0],
        ])
        extrinsics = np.column_stack([rot[:, 0], rot[:, 1], translation])
        return cls(intrinsics @ extrinsics)

    # ------------------------------------------------------------ mapping
    def project(self, world_points: np.ndarray) -> np.ndarray:
        """Road-plane (n, 2) -> image pixels (n, 2)."""
        pts = np.atleast_2d(np.asarray(world_points, dtype=float))
        homogeneous = np.column_stack([pts, np.ones(len(pts))])
        image = homogeneous @ self.matrix.T
        w = image[:, 2]
        if np.any(np.abs(w) < 1e-12):
            raise ConfigurationError(
                "point projects to infinity (on the camera's horizon)"
            )
        return image[:, :2] / w[:, None]

    def unproject(self, image_points: np.ndarray) -> np.ndarray:
        """Image pixels (n, 2) -> road-plane (n, 2)."""
        inv = np.linalg.inv(self.matrix)
        pts = np.atleast_2d(np.asarray(image_points, dtype=float))
        homogeneous = np.column_stack([pts, np.ones(len(pts))])
        world = homogeneous @ inv.T
        w = world[:, 2]
        if np.any(np.abs(w) < 1e-12):
            raise ConfigurationError(
                "pixel back-projects to infinity (above the horizon)"
            )
        return world[:, :2] / w[:, None]

    def local_scale(self, world_point: np.ndarray) -> float:
        """Linear magnification (pixels per world unit) near a point.

        Square root of |det J| of the projection's Jacobian — used by the
        renderer to size vehicles with distance.
        """
        x, y = np.asarray(world_point, dtype=float)
        h = self.matrix
        w = h[2, 0] * x + h[2, 1] * y + h[2, 2]
        u = h[0, 0] * x + h[0, 1] * y + h[0, 2]
        v = h[1, 0] * x + h[1, 1] * y + h[1, 2]
        du = np.array([h[0, 0] / w - u * h[2, 0] / w**2,
                       h[0, 1] / w - u * h[2, 1] / w**2])
        dv = np.array([h[1, 0] / w - v * h[2, 0] / w**2,
                       h[1, 1] / w - v * h[2, 1] / w**2])
        det = du[0] * dv[1] - du[1] * dv[0]
        return float(np.sqrt(abs(det)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CameraModel(matrix=\n{np.round(self.matrix, 4)})"
