"""Workload generators that mirror the paper's two evaluation clips.

* :func:`tunnel` — clip 1: a sparse one-way tunnel, 2504 frames in the
  paper, where "speeding vehicles lost control and hit on the sidewalls";
  accidents involve a single vehicle (wall crashes, sudden stops).
* :func:`intersection` — clip 2: a busy road intersection, 592 frames in
  the paper, where accidents "often involve two or more vehicles"
  (collisions at the conflict points).
* :func:`highway` — extra workload for the paper's "U-turns and speeding"
  remark (Section 4), used by the other-events benchmark.

All generators are deterministic given ``seed`` and return a
:class:`~repro.sim.world.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.incidents import (
    BenignBrake,
    LaneChange,
    Speeding,
    SuddenStop,
    UTurn,
    YieldBrake,
    make_collision_pair,
)
from repro.sim.world import Route, SimulationResult, TrafficWorld, Vehicle, VehicleSpec
from repro.sim.incidents import WallCrash
from repro.utils import as_rng, check_positive

#: Relative frequency of vehicle classes in generated traffic.
_KIND_WEIGHTS = (("car", 0.6), ("suv", 0.3), ("truck", 0.1))


@dataclass(frozen=True)
class ScenarioConfig:
    """Frame geometry shared by all scenario generators."""

    n_frames: int = 600
    width: int = 320
    height: int = 240
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_frames", self.n_frames)
        check_positive("width", self.width)
        check_positive("height", self.height)


def _pick_kind(rng: np.random.Generator) -> str:
    kinds = [k for k, _ in _KIND_WEIGHTS]
    probs = [w for _, w in _KIND_WEIGHTS]
    return str(rng.choice(kinds, p=probs))


def _add_benign_maneuvers(
    vehicles: list[Vehicle],
    rng: np.random.Generator,
    fraction: float,
    lane_offset_for,
) -> None:
    """Give a fraction of uncontrolled vehicles a normal-driving maneuver.

    These distractors (moderate braking, lane drifts) are what keeps the
    initial square-sum heuristic honest: without them every feature spike
    in the clip would be a real incident and the Initial round would be
    unrealistically accurate.  ``lane_offset_for(vehicle)`` returns the
    signed lateral offset of a safe lane drift for that vehicle.
    """
    free = [v for v in vehicles if v.controller is None]
    rng.shuffle(free)
    n = int(round(fraction * len(free)))
    for i, vehicle in enumerate(free[:n]):
        start = vehicle.spawn_frame + int(rng.uniform(20, 55))
        if i % 2 == 0:
            # Phantom-jam brake: dive almost to a stop, creep briefly,
            # resume.  At a single sampling point this is nearly
            # indistinguishable from an incident stop — only the window
            # *shape* (V-shaped vs stop-and-stay) differs.
            vehicle.controller = BenignBrake(
                start,
                dip=float(rng.uniform(0.02, 0.15)),
                ramp=int(rng.uniform(3, 6)),
                hold=int(rng.uniform(5, 12)),
            )
        else:
            vehicle.controller = LaneChange(start, lane_offset_for(vehicle))


def _spawn_frames(rng: np.random.Generator, n_frames: int,
                  interval: tuple[float, float], margin: int) -> list[int]:
    """Random spawn times, leaving ``margin`` frames of tail room."""
    if interval[0] > interval[1] or interval[0] <= 0:
        raise ConfigurationError(f"bad spawn interval {interval!r}")
    frames: list[int] = []
    t = float(rng.uniform(*interval)) * 0.3
    while t < n_frames - margin:
        frames.append(int(t))
        t += float(rng.uniform(*interval))
    return frames


def tunnel(
    *,
    n_frames: int = 2500,
    width: int = 320,
    height: int = 240,
    seed: int = 0,
    spawn_interval: tuple[float, float] = (45.0, 75.0),
    speed: float = 3.0,
    n_wall_crashes: int = 7,
    n_sudden_stops: int = 5,
    benign_fraction: float = 0.9,
) -> SimulationResult:
    """One-way two-lane tunnel with single-vehicle accidents (clip 1)."""
    rng = as_rng(seed)
    cy = height / 2.0
    lanes = (cy - 9.0, cy + 9.0)
    walls = {lanes[0]: cy - 27.0, lanes[1]: cy + 27.0}

    world = TrafficWorld(width, height, seed=rng)
    spawns = _spawn_frames(rng, n_frames, spawn_interval, margin=180)

    vehicles: list[Vehicle] = []
    for vid, frame in enumerate(spawns):
        lane_y = lanes[vid % 2]
        v_speed = float(np.clip(rng.normal(speed, 0.3), 1.8, 4.5))
        route = Route.straight((-30.0, lane_y), (width + 30.0, lane_y),
                               v_speed)
        spec = VehicleSpec.of_kind(vid, _pick_kind(rng))
        vehicles.append(Vehicle(spec, route, spawn_frame=frame))

    n_incidents = n_wall_crashes + n_sudden_stops
    if n_incidents > 0:
        if n_incidents > len(vehicles):
            raise ConfigurationError(
                f"scenario too short: {n_incidents} incidents requested but "
                f"only {len(vehicles)} vehicles spawn"
            )
        # Spread incident carriers evenly over the clip so every retrieval
        # round has relevant material, then shuffle which incident type
        # lands where.
        carrier_idx = np.unique(
            np.linspace(1, len(vehicles) - 2, n_incidents).round().astype(int)
        )
        extra = rng.permutation(
            [i for i in range(len(vehicles)) if i not in set(carrier_idx)]
        )
        carriers = list(carrier_idx) + list(extra)[: n_incidents - len(carrier_idx)]
        types = ["wall_crash"] * n_wall_crashes + ["sudden_stop"] * n_sudden_stops
        rng.shuffle(types)
        for idx, incident_type in zip(carriers, types):
            vehicle = vehicles[idx]
            start = vehicle.spawn_frame + int(rng.uniform(25, 60))
            lane_y = vehicle.route.waypoints[0][1]
            if incident_type == "wall_crash":
                vehicle.controller = WallCrash(start, walls[lane_y],
                                               hold=60)
            else:
                vehicle.controller = SuddenStop(start, hold=25)

    cy_center = cy

    def _tunnel_drift(vehicle):
        # Drift into the other lane (toward the road center, never a wall).
        lane_y = vehicle.route.waypoints[0][1]
        return 2.0 * (cy_center - lane_y)

    _add_benign_maneuvers(vehicles, rng, benign_fraction, _tunnel_drift)

    world.add_vehicles(vehicles)
    return world.run(
        n_frames,
        name="tunnel",
        metadata={
            "location": "tunnel",
            "camera": "cam-tunnel-01",
            "lanes": lanes,
            "walls": tuple(sorted(walls.values())),
            "scenario": "tunnel",
            "seed": seed,
        },
    )


def intersection(
    *,
    n_frames: int = 600,
    width: int = 320,
    height: int = 240,
    seed: int = 1,
    spawn_interval: tuple[float, float] = (150.0, 230.0),
    speed: float = 2.8,
    n_collisions: int = 5,
    n_near_misses: int = 4,
    benign_fraction: float = 0.3,
    turn_fraction: float = 0.45,
) -> SimulationResult:
    """Four-approach intersection with multi-vehicle collisions (clip 2).

    A ``turn_fraction`` of the through traffic turns left or right at the
    crossing — normal behaviour with a large heading change, which is the
    main thing the initial square-sum heuristic confuses with a crash.
    """
    rng = as_rng(seed)
    cx, cy = width / 2.0, height / 2.0
    approaches = {
        "E": ((-30.0, cy + 8.0), (width + 30.0, cy + 8.0)),
        "W": ((width + 30.0, cy - 8.0), (-30.0, cy - 8.0)),
        "S": ((cx - 8.0, -30.0), (cx - 8.0, height + 30.0)),
        "N": ((cx + 8.0, height + 30.0), (cx + 8.0, -30.0)),
    }
    #: direction -> (right-turn exit, left-turn exit)
    turn_exits = {"E": ("S", "N"), "W": ("N", "S"),
                  "S": ("W", "E"), "N": ("E", "W")}
    order = ["E", "S", "W", "N"]

    def _route_for(direction: str, v_speed: float) -> Route:
        start, end = approaches[direction]
        if rng.random() >= turn_fraction:
            return Route.straight(start, end, v_speed)
        exit_dir = turn_exits[direction][int(rng.random() < 0.5)]
        exit_start, exit_end = approaches[exit_dir]
        # Corner waypoint: the crossing of the entry lane and exit lane.
        if direction in ("E", "W"):
            corner = (exit_start[0], start[1])
        else:
            corner = (start[0], exit_start[1])
        return Route([start, corner, exit_end], v_speed)

    world = TrafficWorld(width, height, seed=rng)
    vid = 0
    vehicles: list[Vehicle] = []
    for direction in order:
        for frame in _spawn_frames(rng, n_frames, spawn_interval, margin=90):
            v_speed = float(np.clip(rng.normal(speed, 0.25), 1.8, 4.0))
            route = _route_for(direction, v_speed)
            spec = VehicleSpec.of_kind(vid, _pick_kind(rng))
            vehicles.append(Vehicle(spec, route, spawn_frame=frame))
            vid += 1

    # Conflict pairs: one vehicle on a horizontal approach, one on a
    # vertical approach, spawned so both reach the conflict point of their
    # lanes around the same target frame.  The first ``n_collisions``
    # pairs actually collide; the next ``n_near_misses`` pairs resolve
    # with a panic brake (hard negatives for the heuristic).
    pairings = [("E", "S"), ("W", "N"), ("E", "N"), ("W", "S")]
    n_pairs = n_collisions + n_near_misses
    targets = np.linspace(90, max(120, n_frames - 110), max(n_pairs, 1))
    pair_kinds = (["collision"] * n_collisions + ["near_miss"] * n_near_misses)
    rng.shuffle(pair_kinds)
    for i in range(n_pairs):
        pair = pairings[i % len(pairings)]
        target_frame = float(targets[i])
        pair_vids = []
        # Conflict point: x from the vertical lane, y from the horizontal
        # lane of this pairing.
        vert = pair[0] if pair[0] in ("S", "N") else pair[1]
        horiz = pair[0] if pair[0] in ("E", "W") else pair[1]
        conflict = np.array([approaches[vert][0][0],
                             approaches[horiz][0][1]])
        for direction in pair:
            start, end = (np.asarray(p, dtype=float)
                          for p in approaches[direction])
            dist = float(np.hypot(*(conflict - start)))
            travel = dist / speed
            spawn_frame = max(0, int(round(target_frame - travel)))
            route = Route.straight(start, end, speed)
            spec = VehicleSpec.of_kind(vid, _pick_kind(rng))
            vehicles.append(Vehicle(spec, route, spawn_frame=spawn_frame))
            pair_vids.append(vid)
            vid += 1
        window = (int(target_frame - 45), int(target_frame + 45))
        if pair_kinds[i] == "collision":
            ctrl_a, ctrl_b = make_collision_pair(pair_vids[0], pair_vids[1],
                                                 window, trigger_dist=15.0,
                                                 hold=45)
            vehicles[-2].controller = ctrl_a
            vehicles[-1].controller = ctrl_b
        else:
            # One vehicle yields with a panic stop; the other sails on.
            vehicles[-1].controller = YieldBrake(pair_vids[0],
                                                 window=window)

    # A lateral +8 drift moves every approach away from its oncoming lane
    # (the lateral axis is the right-hand perpendicular of the heading).
    _add_benign_maneuvers(vehicles, rng, benign_fraction, lambda v: 8.0)

    world.add_vehicles(vehicles)
    return world.run(
        n_frames,
        name="intersection",
        metadata={
            "location": "intersection",
            "camera": "cam-intersection-01",
            "center": (cx, cy),
            "scenario": "intersection",
            "seed": seed,
        },
    )


def curve(
    *,
    n_frames: int = 1200,
    width: int = 320,
    height: int = 240,
    seed: int = 3,
    spawn_interval: tuple[float, float] = (55.0, 85.0),
    speed: float = 2.6,
    n_sudden_stops: int = 4,
    benign_fraction: float = 0.4,
) -> SimulationResult:
    """A curved road: every vehicle turns *continuously* and normally.

    The stress case for the theta feature: on a bend, steady heading
    change is ordinary driving, so an accident query must key on the
    conjunction with velocity change, not on theta alone.  Incidents are
    sudden stops on the bend.
    """
    rng = as_rng(seed)
    # A wide arc sweeping through the frame: centre below the bottom
    # edge, so traffic enters right, curves over the top, exits left.
    cx_arc, cy_arc = width / 2.0, float(height + 70)
    radius = 210.0
    angles = np.linspace(0.15 * np.pi, 0.85 * np.pi, 28)
    arc = np.column_stack([
        cx_arc + radius * np.cos(angles),
        cy_arc - radius * np.sin(angles),
    ])[::-1]  # rightmost point first: traffic flows right-to-left

    world = TrafficWorld(width, height, seed=rng)
    spawns = _spawn_frames(rng, n_frames, spawn_interval, margin=150)
    vehicles: list[Vehicle] = []
    for vid, frame in enumerate(spawns):
        v_speed = float(np.clip(rng.normal(speed, 0.25), 1.6, 3.6))
        route = Route(arc, v_speed, reach=10.0)
        spec = VehicleSpec.of_kind(vid, _pick_kind(rng))
        vehicles.append(Vehicle(spec, route, spawn_frame=frame))

    if n_sudden_stops > len(vehicles):
        raise ConfigurationError(
            f"scenario too short: {n_sudden_stops} stops requested but "
            f"only {len(vehicles)} vehicles spawn"
        )
    carriers = np.unique(
        np.linspace(1, max(1, len(vehicles) - 2),
                    n_sudden_stops).round().astype(int))
    for idx in carriers:
        start = vehicles[idx].spawn_frame + int(rng.uniform(35, 70))
        vehicles[idx].controller = SuddenStop(start, hold=25)

    _add_benign_maneuvers(vehicles, rng, benign_fraction, lambda v: 10.0)

    world.add_vehicles(vehicles)
    return world.run(
        n_frames,
        name="curve",
        metadata={
            "location": "curve",
            "camera": "cam-curve-01",
            "scenario": "curve",
            "seed": seed,
        },
    )


def highway(
    *,
    n_frames: int = 800,
    width: int = 320,
    height: int = 240,
    seed: int = 2,
    spawn_interval: tuple[float, float] = (45.0, 75.0),
    speed: float = 2.6,
    n_uturns: int = 5,
    n_speeding: int = 4,
) -> SimulationResult:
    """Two-way highway with U-turn and speeding events (Section 4 remark)."""
    rng = as_rng(seed)
    cy = height / 2.0
    east_y, west_y = cy + 10.0, cy - 10.0

    world = TrafficWorld(width, height, seed=rng)
    vehicles: list[Vehicle] = []
    vid = 0
    for lane, (start_x, end_x, lane_y) in enumerate(
        [(-30.0, width + 30.0, east_y), (width + 30.0, -30.0, west_y)]
    ):
        for frame in _spawn_frames(rng, n_frames, spawn_interval, margin=120):
            v_speed = float(np.clip(rng.normal(speed, 0.2), 1.6, 3.6))
            route = Route.straight((start_x, lane_y), (end_x, lane_y),
                                   v_speed)
            spec = VehicleSpec.of_kind(vid, _pick_kind(rng))
            vehicles.append(Vehicle(spec, route, spawn_frame=frame))
            vid += 1

    n_events = n_uturns + n_speeding
    if n_events > len(vehicles):
        raise ConfigurationError(
            f"scenario too short: {n_events} events requested but only "
            f"{len(vehicles)} vehicles spawn"
        )
    carriers = np.unique(
        np.linspace(0, len(vehicles) - 1, n_events).round().astype(int)
    )
    extra = [i for i in range(len(vehicles)) if i not in set(carriers)]
    carriers = list(carriers) + extra[: n_events - len(carriers)]
    types = ["u_turn"] * n_uturns + ["speeding"] * n_speeding
    rng.shuffle(types)
    for idx, event_type in zip(carriers, types):
        vehicle = vehicles[idx]
        if event_type == "u_turn":
            start = vehicle.spawn_frame + int(rng.uniform(35, 60))
            vehicle.controller = UTurn(start, duration=20)
        else:
            start = vehicle.spawn_frame + int(rng.uniform(5, 15))
            vehicle.controller = Speeding(start, duration=150, factor=2.2)

    world.add_vehicles(vehicles)
    return world.run(
        n_frames,
        name="highway",
        metadata={
            "location": "highway",
            "camera": "cam-highway-01",
            "scenario": "highway",
            "seed": seed,
        },
    )
