"""Synthetic traffic world: the data substitute for the paper's two clips.

The paper evaluates on two real surveillance clips (a tunnel and a Taiwan
road intersection) that are not publicly available.  This package builds a
kinematic traffic micro-simulator with scripted incidents (wall crashes,
sudden stops, multi-vehicle collisions, U-turns, speeding) and a raster
renderer that produces noisy grayscale frames, so the full vision /
tracking / retrieval pipeline can be exercised end to end.

Public entry points:

* :func:`repro.sim.scenarios.tunnel` — clip-1-like workload.
* :func:`repro.sim.scenarios.intersection` — clip-2-like workload.
* :func:`repro.sim.scenarios.highway` — U-turn / speeding workload.
* :class:`repro.sim.render.Renderer` — states -> frames.
"""

from repro.sim.world import (
    Route,
    SimulationResult,
    TrafficWorld,
    Vehicle,
    VehicleSpec,
    VehicleState,
    segment_bounds,
)
from repro.sim.incidents import (
    CollisionCrash,
    IncidentRecord,
    Speeding,
    SuddenStop,
    UTurn,
    WallCrash,
)
from repro.sim.scenarios import (
    ScenarioConfig,
    curve,
    highway,
    intersection,
    tunnel,
)
from repro.sim.render import Renderer, render_clip
from repro.sim.ground_truth import GroundTruth
from repro.sim.camera import CameraModel
from repro.sim.road_network import RoadNetwork, city_grid
from repro.sim.stats import TrafficStats, traffic_statistics

__all__ = [
    "Route",
    "SimulationResult",
    "TrafficWorld",
    "Vehicle",
    "VehicleSpec",
    "VehicleState",
    "segment_bounds",
    "IncidentRecord",
    "SuddenStop",
    "WallCrash",
    "CollisionCrash",
    "UTurn",
    "Speeding",
    "ScenarioConfig",
    "tunnel",
    "intersection",
    "highway",
    "curve",
    "city_grid",
    "RoadNetwork",
    "Renderer",
    "render_clip",
    "GroundTruth",
    "CameraModel",
    "TrafficStats",
    "traffic_statistics",
]
