"""Road-network workloads: routed traffic on a street grid.

The paper's two clips show one camera each; a city deployment watches a
*network* of streets.  This module models the road layout as a graph
(networkx): nodes are junctions with positions, edges are street
segments, vehicle routes are shortest paths between boundary entries.
The :func:`city_grid` scenario produces grid traffic with turning at
junctions (normal theta activity everywhere) plus scheduled collisions
and sudden stops, and feeds the standard pipeline unchanged.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.sim.incidents import SuddenStop, make_collision_pair
from repro.sim.world import Route, SimulationResult, TrafficWorld, Vehicle, VehicleSpec
from repro.sim.scenarios import _pick_kind, _spawn_frames
from repro.utils import as_rng, check_positive

__all__ = ["RoadNetwork", "city_grid"]


class RoadNetwork:
    """A street graph with junction positions and routing helpers."""

    def __init__(self, graph: nx.Graph) -> None:
        for node, data in graph.nodes(data=True):
            if "pos" not in data:
                raise ConfigurationError(
                    f"node {node!r} has no 'pos' attribute"
                )
        if graph.number_of_nodes() < 2:
            raise ConfigurationError("network needs >= 2 junctions")
        self.graph = graph

    @classmethod
    def grid(cls, cols: int = 4, rows: int = 3, *, width: int = 320,
             height: int = 240, margin: float = 30.0) -> "RoadNetwork":
        """A cols x rows street grid filling the frame."""
        check_positive("cols", cols)
        check_positive("rows", rows)
        if cols < 2 or rows < 2:
            raise ConfigurationError("grid needs cols >= 2 and rows >= 2")
        graph = nx.grid_2d_graph(cols, rows)
        xs = np.linspace(margin, width - margin, cols)
        ys = np.linspace(margin, height - margin, rows)
        for (i, j) in graph.nodes:
            graph.nodes[(i, j)]["pos"] = (float(xs[i]), float(ys[j]))
        # Edge lengths for shortest-path routing.
        for u, v in graph.edges:
            pu = np.asarray(graph.nodes[u]["pos"])
            pv = np.asarray(graph.nodes[v]["pos"])
            graph.edges[u, v]["length"] = float(np.hypot(*(pu - pv)))
        return cls(graph)

    def position(self, node) -> np.ndarray:
        return np.asarray(self.graph.nodes[node]["pos"], dtype=float)

    def boundary_nodes(self) -> list:
        """Junctions with fewer neighbours than an interior node."""
        max_degree = max(dict(self.graph.degree).values())
        return [n for n, d in self.graph.degree if d < max_degree]

    def interior_nodes(self) -> list:
        boundary = set(self.boundary_nodes())
        return [n for n in self.graph.nodes if n not in boundary]

    def path_waypoints(self, source, target,
                       *, via=None) -> np.ndarray:
        """Waypoints of the shortest path (optionally through ``via``)."""
        if via is None:
            nodes = nx.shortest_path(self.graph, source, target,
                                     weight="length")
        else:
            first = nx.shortest_path(self.graph, source, via,
                                     weight="length")
            second = nx.shortest_path(self.graph, via, target,
                                      weight="length")
            nodes = first + second[1:]
        return np.asarray([self.position(n) for n in nodes])

    def random_transit(self, rng: np.random.Generator) -> np.ndarray:
        """A route between two distinct random boundary junctions."""
        boundary = self.boundary_nodes()
        source, target = rng.choice(len(boundary), size=2, replace=False)
        return self.path_waypoints(boundary[int(source)],
                                   boundary[int(target)])


def _extend_ends(waypoints: np.ndarray, reach: float = 30.0) -> np.ndarray:
    """Push the first/last waypoints outward so vehicles enter and exit
    beyond the frame instead of popping into existence at a junction."""
    first, last = waypoints[0], waypoints[-1]
    head_dir = first - waypoints[1]
    tail_dir = last - waypoints[-2]
    head = first + head_dir / max(np.hypot(*head_dir), 1e-9) * reach
    tail = last + tail_dir / max(np.hypot(*tail_dir), 1e-9) * reach
    return np.vstack([head, waypoints, tail])


def city_grid(
    *,
    n_frames: int = 900,
    width: int = 320,
    height: int = 240,
    seed: int = 4,
    cols: int = 4,
    rows: int = 3,
    spawn_interval: tuple[float, float] = (28.0, 44.0),
    speed: float = 2.4,
    n_collisions: int = 3,
    n_sudden_stops: int = 3,
) -> SimulationResult:
    """Routed grid traffic with junction collisions and sudden stops."""
    rng = as_rng(seed)
    network = RoadNetwork.grid(cols, rows, width=width, height=height)

    world = TrafficWorld(width, height, seed=rng)
    vehicles: list[Vehicle] = []
    vid = 0
    for frame in _spawn_frames(rng, n_frames, spawn_interval, margin=160):
        waypoints = _extend_ends(network.random_transit(rng))
        v_speed = float(np.clip(rng.normal(speed, 0.2), 1.5, 3.2))
        route = Route(waypoints, v_speed, reach=7.0)
        vehicles.append(Vehicle(VehicleSpec.of_kind(vid, _pick_kind(rng)),
                                route, spawn_frame=frame))
        vid += 1
    if len(vehicles) < n_sudden_stops + 2:
        raise ConfigurationError(
            "scenario too short for the requested incident count"
        )

    # Sudden stops on random through-traffic.
    stop_carriers = rng.choice(len(vehicles),
                               size=min(n_sudden_stops, len(vehicles)),
                               replace=False)
    for idx in stop_carriers:
        start = vehicles[int(idx)].spawn_frame + int(rng.uniform(40, 80))
        vehicles[int(idx)].controller = SuddenStop(start, hold=25)

    # Collisions: dedicated pairs meeting at interior junctions.
    interior = network.interior_nodes()
    boundary = network.boundary_nodes()
    targets = np.linspace(140, max(200, n_frames - 160),
                          max(n_collisions, 1))
    for k in range(n_collisions):
        junction = interior[int(rng.integers(len(interior)))]
        pair_vids = []
        for _ in range(2):
            ends = rng.choice(len(boundary), size=2, replace=False)
            waypoints = _extend_ends(network.path_waypoints(
                boundary[int(ends[0])], boundary[int(ends[1])],
                via=junction))
            # Spawn so the vehicle reaches the junction near the target.
            junction_pos = network.position(junction)
            dist = 0.0
            for a, b in zip(waypoints, waypoints[1:]):
                dist += float(np.hypot(*(b - a)))
                if np.allclose(b, junction_pos):
                    break
            spawn = max(0, int(round(float(targets[k]) - dist / speed)))
            route = Route(waypoints, speed, reach=7.0)
            vehicles.append(Vehicle(
                VehicleSpec.of_kind(vid, _pick_kind(rng)), route,
                spawn_frame=spawn))
            pair_vids.append(vid)
            vid += 1
        window = (int(targets[k] - 60), int(targets[k] + 60))
        ctrl_a, ctrl_b = make_collision_pair(pair_vids[0], pair_vids[1],
                                             window, trigger_dist=14.0,
                                             hold=40)
        vehicles[-2].controller = ctrl_a
        vehicles[-1].controller = ctrl_b

    world.add_vehicles(vehicles)
    return world.run(
        n_frames,
        name="city_grid",
        metadata={
            "location": "downtown-grid",
            "camera": "cam-grid-01",
            "scenario": "city_grid",
            "seed": seed,
            "grid": (cols, rows),
        },
    )
