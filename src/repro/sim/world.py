"""Kinematic traffic world.

Vehicles are rigid rectangles moving in a 2-D image-coordinate plane
(x grows right, y grows down, units are pixels, one step is one video
frame).  Each vehicle follows a :class:`Route` (a polyline of waypoints at a
nominal speed); an optional controller — normally an incident script from
:mod:`repro.sim.incidents` — can override the desired velocity for a window
of frames.  Acceleration is bounded so trajectories look like real traffic
rather than teleporting points, which matters because the event features of
the paper (velocity change, heading change) are derivatives of positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import as_rng, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.incidents import Controller, IncidentRecord

#: Per-kind (length, width, render intensity) templates, in pixels / gray
#: levels.  Lengths are along the direction of travel.
VEHICLE_TEMPLATES: dict[str, tuple[float, float, float]] = {
    "car": (14.0, 7.0, 210.0),
    "suv": (17.0, 9.0, 180.0),
    "truck": (24.0, 10.0, 235.0),
}


@dataclass(frozen=True)
class VehicleSpec:
    """Static description of a vehicle (identity, class, geometry)."""

    vid: int
    kind: str = "car"
    length: float = 14.0
    width: float = 7.0
    intensity: float = 210.0

    @classmethod
    def of_kind(cls, vid: int, kind: str) -> "VehicleSpec":
        """Build a spec from the per-kind template table."""
        if kind not in VEHICLE_TEMPLATES:
            raise ConfigurationError(
                f"unknown vehicle kind {kind!r}; expected one of "
                f"{sorted(VEHICLE_TEMPLATES)}"
            )
        length, width, intensity = VEHICLE_TEMPLATES[kind]
        return cls(vid=vid, kind=kind, length=length, width=width,
                   intensity=intensity)


@dataclass(frozen=True)
class VehicleState:
    """Snapshot of one vehicle in one frame (what the renderer consumes)."""

    vid: int
    kind: str
    x: float
    y: float
    vx: float
    vy: float
    length: float
    width: float
    intensity: float

    @property
    def pos(self) -> np.ndarray:
        return np.array([self.x, self.y])

    @property
    def speed(self) -> float:
        return float(np.hypot(self.vx, self.vy))

    def half_extents(self) -> tuple[float, float]:
        """Axis-aligned half width/height given the dominant travel axis.

        Vehicles are rendered as axis-aligned rectangles; a vehicle moving
        mostly vertically is drawn tall, one moving horizontally is drawn
        wide.  Heading memory is kept by the caller via velocity.
        """
        if abs(self.vx) >= abs(self.vy):
            return self.length / 2.0, self.width / 2.0
        return self.width / 2.0, self.length / 2.0


class Route:
    """A polyline route traversed at a nominal speed.

    The desired velocity always points at the current waypoint; a waypoint
    is consumed once the vehicle is within ``reach`` pixels of it.  The
    route is ``finished`` after the final waypoint is consumed.
    """

    def __init__(self, waypoints: Sequence[Sequence[float]], speed: float,
                 reach: float = 6.0) -> None:
        pts = np.asarray(waypoints, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) < 1:
            raise ConfigurationError(
                f"waypoints must be an (N, 2) array with N >= 1, got shape "
                f"{pts.shape}"
            )
        check_positive("speed", speed)
        check_positive("reach", reach)
        self.waypoints = pts
        self.speed = float(speed)
        self.reach = float(reach)
        self._index = 0

    @property
    def finished(self) -> bool:
        return self._index >= len(self.waypoints)

    @property
    def target(self) -> np.ndarray | None:
        if self.finished:
            return None
        return self.waypoints[self._index]

    def desired_velocity(self, pos: np.ndarray) -> np.ndarray:
        """Velocity toward the current waypoint at the nominal speed."""
        while not self.finished:
            delta = self.waypoints[self._index] - pos
            dist = float(np.hypot(*delta))
            if dist > self.reach:
                return delta / dist * self.speed
            self._index += 1
        return np.zeros(2)

    @classmethod
    def straight(cls, start: Sequence[float], end: Sequence[float],
                 speed: float) -> "Route":
        return cls([start, end], speed)


class Vehicle:
    """One simulated vehicle: spec + kinematic state + route + controller."""

    def __init__(
        self,
        spec: VehicleSpec,
        route: Route,
        spawn_frame: int = 0,
        controller: "Controller | None" = None,
    ) -> None:
        self.spec = spec
        self.route = route
        self.spawn_frame = int(spawn_frame)
        self.controller = controller
        self.pos = route.waypoints[0].astype(float).copy()
        # Vehicles enter the world already moving at route speed.
        self.vel = route.desired_velocity(self.pos)
        self.retired = False

    @property
    def vid(self) -> int:
        return self.spec.vid

    @property
    def speed(self) -> float:
        return float(np.hypot(*self.vel))

    def active_at(self, frame: int) -> bool:
        return not self.retired and frame >= self.spawn_frame

    def state(self) -> VehicleState:
        return VehicleState(
            vid=self.spec.vid,
            kind=self.spec.kind,
            x=float(self.pos[0]),
            y=float(self.pos[1]),
            vx=float(self.vel[0]),
            vy=float(self.vel[1]),
            length=self.spec.length,
            width=self.spec.width,
            intensity=self.spec.intensity,
        )


@dataclass
class SimulationResult:
    """Everything a downstream pipeline needs from one simulated clip."""

    name: str
    n_frames: int
    width: int
    height: int
    states: list[list[VehicleState]]
    incidents: "list[IncidentRecord]"
    metadata: dict = field(default_factory=dict)

    def trajectory_of(self, vid: int) -> np.ndarray:
        """(frame, x, y) rows for one vehicle, in frame order."""
        rows = [
            (f, s.x, s.y)
            for f, frame_states in enumerate(self.states)
            for s in frame_states
            if s.vid == vid
        ]
        return np.asarray(rows, dtype=float).reshape(-1, 3)

    def vehicle_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for frame_states in self.states:
            for s in frame_states:
                seen.setdefault(s.vid, None)
        return list(seen)

    def max_concurrency(self) -> int:
        return max((len(fs) for fs in self.states), default=0)

    def segment_states(self, segment_frames: int
                       ) -> "list[list[list[VehicleState]]]":
        """Per-frame states grouped into fixed-size ingest segments."""
        return [self.states[lo:hi]
                for lo, hi in segment_bounds(self.n_frames, segment_frames)]


def segment_bounds(n_frames: int, segment_frames: int
                   ) -> list[tuple[int, int]]:
    """Split ``n_frames`` into contiguous ``[lo, hi)`` ingest segments.

    Every segment holds ``segment_frames`` frames except possibly the
    last; the bounds tile the clip exactly (no gaps, no overlap).
    """
    check_positive("segment_frames", segment_frames)
    if n_frames < 0:
        raise ConfigurationError(f"n_frames must be >= 0, got {n_frames}")
    return [(lo, min(lo + segment_frames, n_frames))
            for lo in range(0, n_frames, segment_frames)]


class TrafficWorld:
    """Discrete-time world that advances all vehicles one frame at a time.

    The world applies, in order: controller override (incident scripts),
    car-following speed reduction (so normal traffic never rear-ends), an
    acceleration bound, and Euler integration.  Vehicles are retired once
    their route finishes or they leave the bounds by a margin.
    """

    #: Extra margin (pixels) outside the frame before a vehicle is retired.
    EXIT_MARGIN = 40.0

    def __init__(
        self,
        width: int,
        height: int,
        *,
        max_accel: float = 1.0,
        follow_gap: float = 26.0,
        speed_jitter: float = 0.05,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        check_positive("width", width)
        check_positive("height", height)
        check_positive("max_accel", max_accel)
        self.width = int(width)
        self.height = int(height)
        self.max_accel = float(max_accel)
        self.follow_gap = float(follow_gap)
        self.speed_jitter = float(speed_jitter)
        self.rng = as_rng(seed)
        self.frame = 0
        self.vehicles: list[Vehicle] = []
        self.incidents: list["IncidentRecord"] = []

    def add_vehicle(self, vehicle: Vehicle) -> None:
        if any(v.vid == vehicle.vid for v in self.vehicles):
            raise ConfigurationError(
                f"duplicate vehicle id {vehicle.vid}"
            )
        self.vehicles.append(vehicle)

    def add_vehicles(self, vehicles: Iterable[Vehicle]) -> None:
        for v in vehicles:
            self.add_vehicle(v)

    def record_incident(self, record: "IncidentRecord") -> None:
        self.incidents.append(record)

    def active_vehicles(self) -> list[Vehicle]:
        return [v for v in self.vehicles if v.active_at(self.frame)]

    def _car_following_scale(self, vehicle: Vehicle,
                             active: list[Vehicle]) -> float:
        """Scale factor (0..1] applied to desired speed to keep headway.

        A vehicle slows when another vehicle is ahead of it (in its own
        direction of travel, roughly in its lane) within ``follow_gap``.
        """
        if vehicle.speed < 1e-9:
            return 1.0
        heading = vehicle.vel / vehicle.speed
        lateral = np.array([-heading[1], heading[0]])
        scale = 1.0
        for other in active:
            if other.vid == vehicle.vid:
                continue
            delta = other.pos - vehicle.pos
            ahead = float(delta @ heading)
            side = abs(float(delta @ lateral))
            if 0.0 < ahead < self.follow_gap and side < vehicle.spec.width:
                scale = min(scale, max(0.15, ahead / self.follow_gap))
        return scale

    def step(self) -> list[VehicleState]:
        """Advance one frame; return the states of all active vehicles."""
        active = self.active_vehicles()
        desired: dict[int, np.ndarray] = {}
        for vehicle in active:
            dv = None
            if vehicle.controller is not None:
                dv = vehicle.controller.desired_velocity(
                    vehicle, self.frame, self
                )
            if dv is None:
                dv = vehicle.route.desired_velocity(vehicle.pos)
                dv = dv * self._car_following_scale(vehicle, active)
                if self.speed_jitter > 0:
                    dv = dv * (
                        1.0 + self.rng.normal(0.0, self.speed_jitter)
                    )
            desired[vehicle.vid] = np.asarray(dv, dtype=float)

        states: list[VehicleState] = []
        for vehicle in active:
            accel = desired[vehicle.vid] - vehicle.vel
            norm = float(np.hypot(*accel))
            limit = self.max_accel
            if vehicle.controller is not None:
                limit = max(limit, vehicle.controller.accel_limit())
            if norm > limit:
                accel = accel / norm * limit
            vehicle.vel = vehicle.vel + accel
            vehicle.pos = vehicle.pos + vehicle.vel
            states.append(vehicle.state())
            self._maybe_retire(vehicle)
        self.frame += 1
        return states

    def _maybe_retire(self, vehicle: Vehicle) -> None:
        controlled = (
            vehicle.controller is not None
            and vehicle.controller.holds(self.frame)
        )
        if vehicle.route.finished and not controlled:
            vehicle.retired = True
            return
        m = self.EXIT_MARGIN
        x, y = vehicle.pos
        if x < -m or x > self.width + m or y < -m or y > self.height + m:
            vehicle.retired = True

    def run(self, n_frames: int, name: str = "sim",
            metadata: dict | None = None) -> SimulationResult:
        """Run the world for ``n_frames`` frames and collect all states."""
        check_positive("n_frames", n_frames)
        states = [self.step() for _ in range(int(n_frames))]
        return SimulationResult(
            name=name,
            n_frames=int(n_frames),
            width=self.width,
            height=self.height,
            states=states,
            incidents=list(self.incidents),
            metadata=dict(metadata or {}),
        )
