"""Workload statistics: does a simulated clip resemble its target?

The substitution argument in DESIGN.md rests on the simulated workloads
having the right *shape* — sparse single-vehicle tunnel traffic vs a
denser multi-vehicle intersection.  This module quantifies that shape so
tests and benchmark metadata can assert it instead of assuming it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.sim.world import SimulationResult

__all__ = ["TrafficStats", "traffic_statistics"]

#: Speed below which a vehicle counts as stopped (pixels/frame).
_STOP_SPEED = 0.2


@dataclass(frozen=True)
class TrafficStats:
    """Aggregate traffic measures over one simulated clip."""

    n_frames: int
    n_vehicles: int
    mean_concurrency: float      # vehicles visible per frame
    max_concurrency: int
    mean_speed: float            # pixels/frame over moving vehicle-frames
    speed_std: float
    stop_fraction: float         # vehicle-frames spent (nearly) standing
    mean_transit_frames: float   # frames a vehicle stays in scene
    incidents_per_1k_frames: float
    incident_kinds: tuple[str, ...]

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        return (
            f"{self.n_vehicles} vehicles over {self.n_frames} frames: "
            f"{self.mean_concurrency:.1f} concurrent on average (peak "
            f"{self.max_concurrency}), mean speed "
            f"{self.mean_speed:.1f} px/frame "
            f"(std {self.speed_std:.1f}), {self.stop_fraction:.0%} of "
            f"vehicle-time stationary, "
            f"{self.incidents_per_1k_frames:.1f} incidents per 1k frames "
            f"({', '.join(self.incident_kinds) or 'none'})"
        )


def traffic_statistics(result: SimulationResult) -> TrafficStats:
    """Compute :class:`TrafficStats` for a simulation."""
    concurrency = np.array([len(fs) for fs in result.states])
    speeds: list[float] = []
    stopped = 0
    vehicle_frames: dict[int, int] = {}
    for frame_states in result.states:
        for s in frame_states:
            vehicle_frames[s.vid] = vehicle_frames.get(s.vid, 0) + 1
            if s.speed < _STOP_SPEED:
                stopped += 1
            else:
                speeds.append(s.speed)
    total_vehicle_frames = int(concurrency.sum())
    kinds = tuple(sorted({r.kind for r in result.incidents}))
    return TrafficStats(
        n_frames=result.n_frames,
        n_vehicles=len(vehicle_frames),
        mean_concurrency=float(concurrency.mean()) if len(concurrency)
        else 0.0,
        max_concurrency=int(concurrency.max()) if len(concurrency) else 0,
        mean_speed=float(np.mean(speeds)) if speeds else 0.0,
        speed_std=float(np.std(speeds)) if speeds else 0.0,
        stop_fraction=stopped / total_vehicle_frames
        if total_vehicle_frames else 0.0,
        mean_transit_frames=float(np.mean(list(vehicle_frames.values())))
        if vehicle_frames else 0.0,
        incidents_per_1k_frames=1000.0 * len(result.incidents)
        / result.n_frames,
        incident_kinds=kinds,
    )
