"""Scripted traffic incidents.

Each incident is a *controller* attached to one vehicle: while active it
overrides the vehicle's desired velocity, producing the abrupt kinematic
signatures the paper's event model keys on (velocity change ``vdiff``,
heading change ``theta``, small inter-vehicle distance ``mdist``).  When an
incident actually triggers it records an :class:`IncidentRecord` into the
world, which becomes the retrieval ground truth.

Incident kinds:

* :class:`SuddenStop` — hard braking to a standstill, then resume.
* :class:`WallCrash` — veer out of lane and crash into a wall (the paper's
  tunnel clip: "speeding vehicles lost control and hit on the sidewalls").
* :class:`CollisionCrash` — two (or more) vehicles collide near a conflict
  point (the paper's intersection clip).
* :class:`UTurn` — 180-degree turn over a few seconds.
* :class:`Speeding` — sustained excess speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import TrafficWorld, Vehicle

#: Incident kind tags used throughout the library (event models, ground
#: truth queries, benchmarks).
ACCIDENT_KINDS = frozenset({"sudden_stop", "wall_crash", "collision"})


@dataclass(frozen=True)
class IncidentRecord:
    """Ground-truth record of one incident: what, who, and when."""

    kind: str
    vehicle_ids: tuple[int, ...]
    frame_start: int
    frame_end: int

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if the incident overlaps the frame interval [lo, hi]."""
        return self.frame_start <= hi and self.frame_end >= lo

    def involves(self, vid: int) -> bool:
        return vid in self.vehicle_ids


@runtime_checkable
class Controller(Protocol):
    """Velocity override hook consulted by the world each frame."""

    def desired_velocity(
        self, vehicle: "Vehicle", frame: int, world: "TrafficWorld"
    ) -> np.ndarray | None:
        """Return a desired velocity, or None to defer to the route."""

    def accel_limit(self) -> float:
        """Acceleration bound while this controller is steering."""

    def holds(self, frame: int) -> bool:
        """True while the vehicle must be kept alive (e.g. crashed)."""


class _IncidentBase:
    """Shared bookkeeping: one-shot incident recording and accel limits."""

    kind = "incident"
    #: Incidents are abrupt: allow far harder accelerations than traffic.
    BRAKE = 3.5

    def __init__(self) -> None:
        self._recorded = False

    def accel_limit(self) -> float:
        return self.BRAKE

    def holds(self, frame: int) -> bool:
        return False

    def _record(
        self,
        world: "TrafficWorld",
        vids: tuple[int, ...],
        frame_start: int,
        frame_end: int,
    ) -> None:
        if self._recorded:
            return
        world.record_incident(
            IncidentRecord(self.kind, tuple(vids), int(frame_start),
                           int(frame_end))
        )
        self._recorded = True


class SuddenStop(_IncidentBase):
    """Brake hard to a standstill at ``start``, hold, then resume the route."""

    kind = "sudden_stop"

    def __init__(self, start: int, hold: int = 25) -> None:
        super().__init__()
        check_positive("hold", hold)
        self.start = int(start)
        self.hold = int(hold)
        self._stopped_at: int | None = None

    def desired_velocity(self, vehicle, frame, world):
        if frame < self.start:
            return None
        if self._stopped_at is None:
            if vehicle.speed < 0.08:
                self._stopped_at = frame
                self._record(world, (vehicle.vid,), self.start,
                             frame + self.hold)
            return np.zeros(2)
        if frame < self._stopped_at + self.hold:
            return np.zeros(2)
        return None  # resume normal route

    def holds(self, frame: int) -> bool:
        if frame < self.start:
            return False
        return self._stopped_at is None or frame < self._stopped_at + self.hold


class WallCrash(_IncidentBase):
    """Veer laterally out of the lane and slam into a wall at ``wall_y``.

    Mirrors the paper's tunnel accidents.  The vehicle keeps most of its
    forward speed while drifting toward the wall, then stops abruptly on
    contact and stays there for ``hold`` frames before being towed
    (retired from the world).
    """

    kind = "wall_crash"

    def __init__(self, start: int, wall_y: float, *, veer_speed: float = 1.6,
                 hold: int = 60) -> None:
        super().__init__()
        check_positive("veer_speed", veer_speed)
        check_positive("hold", hold)
        self.start = int(start)
        self.wall_y = float(wall_y)
        self.veer_speed = float(veer_speed)
        self.hold = int(hold)
        self._forward: np.ndarray | None = None
        self._crashed_at: int | None = None

    def desired_velocity(self, vehicle, frame, world):
        if frame < self.start:
            return None
        if self._crashed_at is not None:
            if frame >= self._crashed_at + self.hold:
                vehicle.retired = True
            return np.zeros(2)
        if self._forward is None:
            speed = max(vehicle.speed, 1.0)
            self._forward = vehicle.vel / speed * speed
        if abs(vehicle.pos[1] - self.wall_y) < 3.0:
            self._crashed_at = frame
            self._record(world, (vehicle.vid,), self.start,
                         frame + min(self.hold, 20))
            return np.zeros(2)
        toward_wall = np.sign(self.wall_y - vehicle.pos[1])
        return self._forward * 0.9 + np.array(
            [0.0, toward_wall * self.veer_speed]
        )

    def holds(self, frame: int) -> bool:
        return frame >= self.start and (
            self._crashed_at is None or frame < self._crashed_at + self.hold
        )


class _SharedCollision:
    """State shared by the controllers of all vehicles in one collision."""

    def __init__(self) -> None:
        self.triggered_at: int | None = None
        self.recorded = False


class CollisionCrash(_IncidentBase):
    """Crash with a partner vehicle when the two get close enough.

    Attach one controller per involved vehicle, all sharing a single
    :class:`_SharedCollision` created by :func:`make_collision_pair`.  While
    armed (inside the watch window) the controller monitors the distance to
    the partner; once below ``trigger_dist`` both vehicles skid (deflected,
    rapidly decaying velocity) and then stand still until towed.
    """

    kind = "collision"

    def __init__(
        self,
        partner_vid: int,
        shared: _SharedCollision,
        *,
        window: tuple[int, int],
        trigger_dist: float = 14.0,
        deflect_angle: float = 0.5,
        hold: int = 50,
    ) -> None:
        super().__init__()
        check_positive("trigger_dist", trigger_dist)
        check_positive("hold", hold)
        if window[1] <= window[0]:
            raise ConfigurationError(
                f"collision window must be increasing, got {window!r}"
            )
        self.partner_vid = int(partner_vid)
        self.shared = shared
        self.window = (int(window[0]), int(window[1]))
        self.trigger_dist = float(trigger_dist)
        self.deflect_angle = float(deflect_angle)
        self.hold = int(hold)
        self._skid: np.ndarray | None = None

    def _partner(self, world: "TrafficWorld") -> "Vehicle | None":
        for v in world.vehicles:
            if v.vid == self.partner_vid:
                return v
        return None

    def desired_velocity(self, vehicle, frame, world):
        trig = self.shared.triggered_at
        if trig is None:
            if not (self.window[0] <= frame <= self.window[1]):
                return None
            partner = self._partner(world)
            if partner is None or not partner.active_at(frame):
                return None
            dist = float(np.hypot(*(partner.pos - vehicle.pos)))
            if dist >= self.trigger_dist:
                return None
            self.shared.triggered_at = frame
            trig = frame
        if not self.shared.recorded:
            # One record per collision, covering both vehicles.  The
            # visible incident is the impact and the first skid moments;
            # the vehicles then standing still is ordinary scenery.
            self._record(world, (vehicle.vid, self.partner_vid),
                         max(0, trig - 2), trig + min(self.hold, 15))
            self.shared.recorded = True
        if self._skid is None:
            angle = self.deflect_angle
            cos_a, sin_a = np.cos(angle), np.sin(angle)
            rot = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
            self._skid = rot @ vehicle.vel * 0.4
        elapsed = frame - trig
        if elapsed >= self.hold:
            vehicle.retired = True
            return np.zeros(2)
        return self._skid * (0.75 ** elapsed)

    def holds(self, frame: int) -> bool:
        trig = self.shared.triggered_at
        if trig is None:
            return self.window[0] <= frame <= self.window[1]
        return frame < trig + self.hold


def make_collision_pair(
    vid_a: int,
    vid_b: int,
    window: tuple[int, int],
    *,
    trigger_dist: float = 14.0,
    hold: int = 50,
) -> tuple[CollisionCrash, CollisionCrash]:
    """Build the two coupled controllers for a two-vehicle collision."""
    shared = _SharedCollision()
    ctrl_a = CollisionCrash(vid_b, shared, window=window,
                            trigger_dist=trigger_dist,
                            deflect_angle=0.5, hold=hold)
    ctrl_b = CollisionCrash(vid_a, shared, window=window,
                            trigger_dist=trigger_dist,
                            deflect_angle=-0.5, hold=hold)
    return ctrl_a, ctrl_b


class BenignBrake(_IncidentBase):
    """Normal-driving distractor: slow down moderately, then resume.

    Not an incident — nothing is recorded.  These maneuvers exist so the
    initial square-sum heuristic has plausible false positives to rank,
    like real traffic does (paper clip 1 starts at only 40% accuracy).
    """

    kind = "benign_brake"

    def __init__(self, start: int, *, dip: float = 0.3,
                 ramp: int = 8, hold: int = 12) -> None:
        super().__init__()
        check_positive("ramp", ramp)
        check_positive("hold", hold)
        if not 0.0 < dip < 1.0:
            raise ConfigurationError(
                f"dip must be a fraction in (0, 1), got {dip!r}"
            )
        self.start = int(start)
        self.dip = float(dip)
        self.ramp = int(ramp)
        self.hold = int(hold)

    def accel_limit(self) -> float:
        return 2.4  # a hard-but-normal brake, below incident abruptness

    def desired_velocity(self, vehicle, frame, world):
        t = frame - self.start
        if t < 0 or t > 2 * self.ramp + self.hold:
            return None
        if t < self.ramp:
            factor = 1.0 - (1.0 - self.dip) * t / self.ramp
        elif t < self.ramp + self.hold:
            factor = self.dip
        else:
            factor = self.dip + (1.0 - self.dip) * (
                (t - self.ramp - self.hold) / self.ramp)
        return vehicle.route.desired_velocity(vehicle.pos) * factor


class LaneChange(_IncidentBase):
    """Normal-driving distractor: drift one lane over, keep going."""

    kind = "lane_change"

    def __init__(self, start: int, offset: float, *, duration: int = 12) -> None:
        super().__init__()
        check_positive("duration", duration)
        self.start = int(start)
        self.offset = float(offset)
        self.duration = int(duration)
        self._forward: np.ndarray | None = None

    def accel_limit(self) -> float:
        return 0.8

    def desired_velocity(self, vehicle, frame, world):
        t = frame - self.start
        if t < 0 or t >= self.duration:
            return None
        if self._forward is None:
            speed = max(vehicle.speed, 0.5)
            self._forward = vehicle.vel / speed * speed
            # Shift the remaining route laterally so the vehicle stays in
            # the new lane after the maneuver.
            lateral = np.array([-self._forward[1], self._forward[0]])
            lateral = lateral / max(np.hypot(*lateral), 1e-9)
            vehicle.route.waypoints = (
                vehicle.route.waypoints + lateral * self.offset
            )
        lateral = np.array([-self._forward[1], self._forward[0]])
        lateral = lateral / max(np.hypot(*lateral), 1e-9)
        rate = self.offset / self.duration
        return self._forward + lateral * rate


class YieldBrake(_IncidentBase):
    """Near-miss distractor: panic-brake for a crossing vehicle, then go.

    Not an incident — the two vehicles never touch.  Produces the feature
    signature automatic detectors most often confuse with a crash: a hard
    velocity drop while another vehicle is close.
    """

    kind = "near_miss"

    def __init__(self, partner_vid: int, *, window: tuple[int, int],
                 brake_dist: float = 30.0, clear_dist: float = 26.0) -> None:
        super().__init__()
        check_positive("brake_dist", brake_dist)
        check_positive("clear_dist", clear_dist)
        if window[1] <= window[0]:
            raise ConfigurationError(
                f"yield window must be increasing, got {window!r}"
            )
        self.partner_vid = int(partner_vid)
        self.window = (int(window[0]), int(window[1]))
        self.brake_dist = float(brake_dist)
        self.clear_dist = float(clear_dist)
        self._braking = False
        self._done = False

    def accel_limit(self) -> float:
        return 2.2  # panic braking, almost incident-hard

    def _partner(self, world: "TrafficWorld") -> "Vehicle | None":
        for v in world.vehicles:
            if v.vid == self.partner_vid:
                return v
        return None

    def desired_velocity(self, vehicle, frame, world):
        if self._done or not (self.window[0] <= frame <= self.window[1]):
            return None
        partner = self._partner(world)
        if partner is None or not partner.active_at(frame) or partner.retired:
            if self._braking:
                self._braking, self._done = False, True
            return None
        dist = float(np.hypot(*(partner.pos - vehicle.pos)))
        if not self._braking:
            # Brake only for a partner that is still ahead of us.
            if dist < self.brake_dist and vehicle.speed > 1e-6:
                heading = vehicle.vel / vehicle.speed
                if float((partner.pos - vehicle.pos) @ heading) > 0:
                    self._braking = True
            if not self._braking:
                return None
        if dist > self.clear_dist and self._crossed(vehicle, partner):
            self._braking, self._done = False, True
            return None
        return np.zeros(2)

    @staticmethod
    def _crossed(vehicle, partner) -> bool:
        """Partner has moved past our path (no longer ahead of us)."""
        if vehicle.speed < 1e-6:
            direction = vehicle.route.desired_velocity(vehicle.pos)
            norm = float(np.hypot(*direction))
            if norm < 1e-6:
                return True
            heading = direction / norm
        else:
            heading = vehicle.vel / vehicle.speed
        return float((partner.pos - vehicle.pos) @ heading) <= 2.0

    def holds(self, frame: int) -> bool:
        return self._braking


class UTurn(_IncidentBase):
    """Rotate the direction of travel by 180 degrees over ``duration``."""

    kind = "u_turn"

    def __init__(self, start: int, duration: int = 20) -> None:
        super().__init__()
        check_positive("duration", duration)
        self.start = int(start)
        self.duration = int(duration)
        self._initial: np.ndarray | None = None

    def desired_velocity(self, vehicle, frame, world):
        if frame < self.start:
            return None
        if self._initial is None:
            self._initial = vehicle.vel.copy()
            if float(np.hypot(*self._initial)) < 0.5:
                self._initial = np.array([1.5, 0.0])
            self._record(world, (vehicle.vid,), self.start,
                         self.start + self.duration)
        t = min(frame - self.start, self.duration)
        angle = np.pi * t / self.duration
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        rot = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        return rot @ self._initial

    def accel_limit(self) -> float:
        return 1.8  # a turn is brisk but not crash-abrupt


class Speeding(_IncidentBase):
    """Travel at ``factor`` times the route's nominal speed."""

    kind = "speeding"

    def __init__(self, start: int, duration: int, factor: float = 2.2) -> None:
        super().__init__()
        check_positive("duration", duration)
        if factor <= 1.0:
            raise ConfigurationError(
                f"speeding factor must exceed 1.0, got {factor!r}"
            )
        self.start = int(start)
        self.duration = int(duration)
        self.factor = float(factor)

    def desired_velocity(self, vehicle, frame, world):
        if not (self.start <= frame < self.start + self.duration):
            return None
        self._record(world, (vehicle.vid,), self.start,
                     self.start + self.duration)
        return vehicle.route.desired_velocity(vehicle.pos) * self.factor

    def accel_limit(self) -> float:
        return 1.2
