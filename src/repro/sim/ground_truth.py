"""Ground truth access: incident labels and track-to-vehicle matching.

The simulated user of the relevance-feedback loop (the oracle in
:mod:`repro.core.feedback`) labels a returned video sequence "relevant" iff
a queried incident is visible in its frame range — exactly what the paper's
human user does when playing a returned VS.  This module answers that
question from the simulator's incident log, and additionally matches
*estimated* tracks (from the vision pipeline) back to true vehicles for
instance-level diagnostics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.sim.incidents import ACCIDENT_KINDS, IncidentRecord
from repro.sim.world import SimulationResult

__all__ = ["GroundTruth", "TrackMatcher"]


@dataclass
class GroundTruth:
    """Queryable view over a clip's incident log."""

    incidents: list[IncidentRecord] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: SimulationResult) -> "GroundTruth":
        return cls(incidents=list(result.incidents))

    def of_kinds(self, kinds: Iterable[str] | None) -> list[IncidentRecord]:
        """Incidents restricted to ``kinds`` (None means accidents)."""
        wanted = set(kinds) if kinds is not None else set(ACCIDENT_KINDS)
        return [r for r in self.incidents if r.kind in wanted]

    def label_window(self, frame_lo: int, frame_hi: int,
                     kinds: Iterable[str] | None = None) -> bool:
        """True iff a queried incident overlaps [frame_lo, frame_hi].

        This is the bag (VS) label of paper Eq. (3)-(4): the user watches
        the window and marks it relevant iff the incident is visible.
        """
        return any(r.overlaps(frame_lo, frame_hi) for r in self.of_kinds(kinds))

    def involved_vehicles(self, kinds: Iterable[str] | None = None,
                          frame_lo: int | None = None,
                          frame_hi: int | None = None) -> set[int]:
        """Vehicle ids involved in queried incidents (optionally windowed)."""
        out: set[int] = set()
        for r in self.of_kinds(kinds):
            if frame_lo is not None and frame_hi is not None:
                if not r.overlaps(frame_lo, frame_hi):
                    continue
            out.update(r.vehicle_ids)
        return out

    def n_relevant_windows(self, windows: Sequence[tuple[int, int]],
                           kinds: Iterable[str] | None = None) -> int:
        """How many of ``windows`` a user would label relevant."""
        return sum(
            self.label_window(lo, hi, kinds) for lo, hi in windows
        )


class TrackMatcher:
    """Match estimated tracks to true simulated vehicles.

    A track is a set of (frame, x, y) observations.  It is matched to the
    vehicle whose true centroid is, on average over the overlapping frames,
    closest — provided that average distance is below ``max_dist`` pixels.
    Used only for diagnostics and instance-level evaluation; the retrieval
    loop itself never sees vehicle ids.
    """

    def __init__(self, result: SimulationResult, max_dist: float = 14.0) -> None:
        if max_dist <= 0:
            raise ValueError("max_dist must be > 0")
        self.max_dist = float(max_dist)
        # frame -> (vids array, positions array)
        self._per_frame: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for frame, states in enumerate(result.states):
            if not states:
                continue
            vids = np.array([s.vid for s in states])
            pos = np.array([[s.x, s.y] for s in states])
            self._per_frame[frame] = (vids, pos)

    def match(self, frames: np.ndarray, points: np.ndarray) -> int | None:
        """Return the best-matching vehicle id, or None if nothing is close.

        ``frames`` is an (n,) int array and ``points`` an (n, 2) float
        array of the track's observations.
        """
        frames = np.asarray(frames, dtype=int)
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if len(frames) != len(points):
            raise ValueError("frames and points must have equal length")
        dist_sum: dict[int, float] = defaultdict(float)
        count: dict[int, int] = defaultdict(int)
        for frame, point in zip(frames, points):
            entry = self._per_frame.get(int(frame))
            if entry is None:
                continue
            vids, pos = entry
            dists = np.hypot(pos[:, 0] - point[0], pos[:, 1] - point[1])
            j = int(np.argmin(dists))
            dist_sum[int(vids[j])] += float(dists[j])
            count[int(vids[j])] += 1
        if not count:
            return None
        best_vid, best_mean = None, np.inf
        for vid in count:
            mean = dist_sum[vid] / count[vid]
            # Require the match to cover a meaningful share of the track.
            if count[vid] >= max(2, len(frames) // 4) and mean < best_mean:
                best_vid, best_mean = vid, mean
        if best_vid is None or best_mean > self.max_dist:
            return None
        return best_vid
