"""Minimal SVG line charts — regenerate the paper's figures as files.

No plotting library ships with this repository, so the figure writer is
~150 lines of SVG templating: accuracy-per-round curves with axes, ticks,
point markers and a legend, matching the shape of the paper's Figures 8
and 9.  Benchmarks save one SVG per experiment next to their text/JSON
artifacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

from repro.errors import ConfigurationError

__all__ = ["svg_line_chart", "save_chart"]

#: Colorblind-safe categorical palette (Okabe-Ito).
_PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
            "#F0E442", "#56B4E9", "#E69F00", "#000000")

_MARKERS = ("circle", "square", "diamond")


def _marker(kind: str, x: float, y: float, color: str) -> str:
    if kind == "circle":
        return (f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                f'fill="{color}"/>')
    if kind == "square":
        return (f'<rect x="{x - 3.5:.1f}" y="{y - 3.5:.1f}" width="7" '
                f'height="7" fill="{color}"/>')
    return (f'<path d="M {x:.1f} {y - 5:.1f} L {x + 5:.1f} {y:.1f} '
            f'L {x:.1f} {y + 5:.1f} L {x - 5:.1f} {y:.1f} Z" '
            f'fill="{color}"/>')


def svg_line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    round_names: Sequence[str] = ("Initial", "First", "Second", "Third",
                                  "Fourth"),
    width: int = 640,
    height: int = 420,
    y_max: float = 1.0,
) -> str:
    """Render accuracy curves as an SVG document string."""
    if not series:
        raise ConfigurationError("nothing to plot")
    if y_max <= 0:
        raise ConfigurationError("y_max must be > 0")
    n_points = max(len(v) for v in series.values())
    if n_points < 1:
        raise ConfigurationError("series are empty")

    margin_l, margin_r, margin_t, margin_b = 64, 24, 48, 96
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    def sx(i: int) -> float:
        if n_points == 1:
            return margin_l + plot_w / 2
        return margin_l + plot_w * i / (n_points - 1)

    def sy(value: float) -> float:
        clamped = min(max(value, 0.0), y_max)
        return margin_t + plot_h * (1.0 - clamped / y_max)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="13">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="26" text-anchor="middle" '
            f'font-size="16" font-weight="bold">{escape(title)}</text>')

    # Gridlines + y ticks every 10% of y_max.
    for tick in range(0, 11):
        value = y_max * tick / 10
        y = sy(value)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" '
            f'x2="{width - margin_r}" y2="{y:.1f}" stroke="#e0e0e0"/>')
        parts.append(
            f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value * 100:.0f}%</text>')

    # X axis labels.
    labels = list(round_names)[:n_points]
    labels += [f"Round{i}" for i in range(len(labels), n_points)]
    for i, label in enumerate(labels):
        parts.append(
            f'<text x="{sx(i):.1f}" y="{margin_t + plot_h + 22}" '
            f'text-anchor="middle">{escape(label)}</text>')

    # Axes.
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="black" stroke-width="1.5"/>')
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{width - margin_r}" y2="{margin_t + plot_h}" '
        f'stroke="black" stroke-width="1.5"/>')

    # Series.
    for idx, (label, values) in enumerate(series.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        marker = _MARKERS[idx % len(_MARKERS)]
        points = " ".join(
            f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2.5"/>')
        for i, v in enumerate(values):
            parts.append(_marker(marker, sx(i), sy(v), color))
        # Legend row.
        ly = margin_t + plot_h + 48 + 20 * idx
        parts.append(
            f'<line x1="{margin_l}" y1="{ly - 4}" x2="{margin_l + 28}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="2.5"/>')
        parts.append(_marker(marker, margin_l + 14, ly - 4, color))
        parts.append(
            f'<text x="{margin_l + 36}" y="{ly}">{escape(label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_chart(series: Mapping[str, Sequence[float]], path: str | Path,
               **kwargs) -> Path:
    """Write an SVG chart to ``path`` and return it."""
    path = Path(path)
    path.write_text(svg_line_chart(series, **kwargs))
    return path
