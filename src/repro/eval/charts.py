"""Terminal charts: sparklines and small line charts for accuracy curves.

The benchmarks and the CLI print accuracy-per-round series; a picture of
the curve (is it climbing? bouncing? collapsed?) is faster to read than a
row of percentages, so the reporting helpers attach these.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def sparkline(values: Sequence[float], *, lo: float = 0.0,
              hi: float = 1.0) -> str:
    """One-line block-character sketch of a series, scaled to [lo, hi]."""
    if hi <= lo:
        raise ConfigurationError(f"need hi > lo, got [{lo}, {hi}]")
    out = []
    for value in values:
        clamped = min(max(value, lo), hi)
        level = (clamped - lo) / (hi - lo)
        out.append(_BLOCKS[min(int(level * len(_BLOCKS)),
                               len(_BLOCKS) - 1)])
    return "".join(out)


def line_chart(series: Mapping[str, Sequence[float]], *, height: int = 8,
               col_width: int = 6, lo: float = 0.0,
               hi: float = 1.0) -> str:
    """Multi-series character chart with a y-axis and legend.

    Each series is assigned a letter marker; colliding points print
    ``*``.  Suited to the 5-point accuracy curves of the protocol.
    """
    if not series:
        return "(no data)"
    if height < 2:
        raise ConfigurationError("height must be >= 2")
    if hi <= lo:
        raise ConfigurationError(f"need hi > lo, got [{lo}, {hi}]")
    n_cols = max(len(v) for v in series.values())
    markers = {label: _MARKERS[i % len(_MARKERS)]
               for i, label in enumerate(series)}

    def row_of(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return min(int((clamped - lo) / (hi - lo) * height),
                   height - 1)

    grid = [[" "] * n_cols for _ in range(height)]
    for label, values in series.items():
        for col, value in enumerate(values):
            row = row_of(value)
            cell = grid[row][col]
            grid[row][col] = markers[label] if cell == " " else "*"

    lines = []
    for row in range(height - 1, -1, -1):
        level = lo + (hi - lo) * (row + 0.5) / height
        cells = "".join(c.center(col_width) for c in grid[row])
        lines.append(f"{level * 100:4.0f}% |{cells}")
    lines.append("      +" + "-" * (n_cols * col_width))
    lines.append("       "
                 + "".join(f"r{c}".center(col_width) for c in range(n_cols)))
    legend = "  ".join(f"{m}={label}" for label, m in markers.items())
    lines.append(f"       {legend}")
    return "\n".join(lines)
