"""Retrieval metrics.

The paper (Section 6.2) argues that with no prior knowledge of the total
number of correct results, precision/recall are not applicable and uses
"accuracy": the percentage of relevant VSs within the top n returned.
That is top-n precision; we implement it under the paper's name plus a
few standard companions used by the ablation benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "accuracy_at_k",
    "accuracy_curve",
    "average_precision",
    "overall_gain",
]


def accuracy_at_k(returned: Sequence[int], relevant: Iterable[int],
                  k: int | None = None) -> float:
    """Paper's accuracy: fraction of the top-k returned that is relevant."""
    relevant = set(relevant)
    items = list(returned)
    if k is not None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        items = items[:k]
    if not items:
        return 0.0
    return sum(1 for b in items if b in relevant) / len(items)


def accuracy_curve(rounds_returned: Sequence[Sequence[int]],
                   relevant: Iterable[int],
                   k: int | None = None) -> list[float]:
    """Accuracy per feedback round (the paper's Figures 8/9 series)."""
    relevant = set(relevant)
    return [accuracy_at_k(returned, relevant, k)
            for returned in rounds_returned]


def average_precision(returned: Sequence[int],
                      relevant: Iterable[int]) -> float:
    """AP over a ranking: mean of precision@rank at each relevant hit."""
    relevant = set(relevant)
    if not relevant:
        return 0.0
    hits, total = 0, 0.0
    for rank, item in enumerate(returned, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def overall_gain(accuracies: Sequence[float]) -> float:
    """Final-minus-initial accuracy (the paper's 'overall accuracy gain')."""
    if len(accuracies) < 2:
        return 0.0
    return float(accuracies[-1] - accuracies[0])
