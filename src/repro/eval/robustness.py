"""Failure injection: how the pipeline degrades under adverse conditions.

Surveillance video is not clean: frames drop, occluders (poles, signs,
large trucks) blank out parts of the scene, and human labellers make
mistakes.  These injectors perturb the pipeline at the detection and
feedback levels so the benchmarks can chart graceful degradation.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import MILRetrievalEngine
from repro.errors import ConfigurationError
from repro.eval.experiments import ExperimentResult
from repro.eval.pipeline import ClipArtifacts
from repro.eval.protocol import run_protocol
from repro.events.features import extract_series
from repro.events.models import event_model_for
from repro.events.windows import build_dataset
from repro.sim.ground_truth import GroundTruth
from repro.tracking.tracker import CentroidTracker
from repro.utils import as_rng, check_in_range
from repro.vision.frames import VideoClip
from repro.vision.pipeline import SegmentationPipeline

__all__ = [
    "inject_detection_dropout",
    "inject_occlusion_band",
    "robustness_dropout",
    "robustness_occlusion",
    "robustness_label_noise",
    "robustness_illumination",
]


def inject_detection_dropout(detections_per_frame, prob: float,
                             seed: int | np.random.Generator | None = 0):
    """Blank whole frames of detections with probability ``prob``.

    Models transport glitches / decoder corruption where entire frames
    are lost; the tracker must coast across the gaps.
    """
    check_in_range("prob", prob, 0.0, 1.0)
    rng = as_rng(seed)
    return [
        [] if rng.random() < prob else list(dets)
        for dets in detections_per_frame
    ]


def inject_occlusion_band(detections_per_frame, x_lo: float, x_hi: float):
    """Remove detections whose centroid falls in a vertical image band.

    Models a static occluder (pole, gantry, parked truck) the camera
    cannot see through; vehicles vanish mid-scene and must be re-linked.
    """
    if x_hi <= x_lo:
        raise ConfigurationError(
            f"occlusion band must have x_hi > x_lo, got [{x_lo}, {x_hi}]"
        )
    return [
        [d for d in dets if not (x_lo <= d.blob.cx < x_hi)]
        for dets in detections_per_frame
    ]


def _artifacts_from_detections(sim, detections, event: str,
                               *, stitch: bool = False) -> ClipArtifacts:
    tracks = CentroidTracker().track(detections)
    if stitch:
        from repro.tracking.stitching import stitch_tracks

        tracks = stitch_tracks(tracks)
    model = event_model_for(event)
    dataset = build_dataset(extract_series(tracks), model,
                            clip_id=sim.name)
    return ClipArtifacts(result=sim, tracks=tracks, dataset=dataset,
                         ground_truth=GroundTruth.from_result(sim))


def _detections_for(sim, render_seed: int = 7):
    clip = VideoClip.from_simulation(sim, render_seed=render_seed)
    return SegmentationPipeline(use_spcpe=False).process(clip)


def robustness_dropout(sim, *, probs=(0.0, 0.05, 0.1, 0.2, 0.3),
                       event: str = "accident", rounds: int = 5,
                       top_k: int = 20, seed: int = 0) -> ExperimentResult:
    """Accuracy series per frame-dropout probability."""
    detections = _detections_for(sim)
    result = ExperimentResult(
        name="robustness_dropout",
        series={},
        expectation=("accuracy degrades gracefully with frame dropout; "
                     "moderate dropout (<= 10%) costs little"),
        metadata={"clip": sim.name, "probs": probs},
    )
    for prob in probs:
        injected = inject_detection_dropout(detections, prob, seed=seed)
        artifacts = _artifacts_from_detections(sim, injected, event)
        if not artifacts.dataset.bags:
            result.series[f"dropout={prob:g}"] = [0.0] * rounds
            continue
        result.add(f"dropout={prob:g}", run_protocol(
            artifacts, MILRetrievalEngine, method=f"dropout={prob:g}",
            rounds=rounds, top_k=top_k))
    return result


def robustness_occlusion(sim, *, widths=(0, 20, 40, 80),
                         event: str = "accident", rounds: int = 5,
                         top_k: int = 20,
                         with_stitching: bool = False) -> ExperimentResult:
    """Accuracy series per occluder width (centered band).

    With ``with_stitching`` each width is also run through the
    track-stitching post-processor, quantifying how much of the occluder
    damage stitching recovers.
    """
    detections = _detections_for(sim)
    center = sim.width / 2.0
    result = ExperimentResult(
        name="robustness_occlusion",
        series={},
        expectation=("a static occluder splits tracks but retrieval "
                     "survives moderate widths; stitching recovers part "
                     "of the damage"),
        metadata={"clip": sim.name, "widths": widths,
                  "with_stitching": with_stitching},
    )
    variants = [(False, "")]
    if with_stitching:
        variants.append((True, "+stitch"))
    for width in widths:
        if width == 0:
            injected = detections
        else:
            injected = inject_occlusion_band(
                detections, center - width / 2, center + width / 2)
        for stitch, suffix in variants:
            label = f"occluder={width}px{suffix}"
            artifacts = _artifacts_from_detections(sim, injected, event,
                                                   stitch=stitch)
            if not artifacts.dataset.bags:
                result.series[label] = [0.0] * rounds
                continue
            result.add(label, run_protocol(
                artifacts, MILRetrievalEngine, method=label,
                rounds=rounds, top_k=top_k))
    return result


def robustness_illumination(sim, *, drifts=(0.0, 0.05, 0.12),
                            learning_rates=(0.0, 0.02),
                            event: str = "accident", rounds: int = 5,
                            top_k: int = 20) -> ExperimentResult:
    """Slow illumination drift vs background adaptation.

    A sinusoidal gain on the rendered frames (cloud cover / dusk) breaks
    a frozen background model; the selective running average
    (learning_rate > 0) should absorb it.  Series are labelled
    ``drift=<d>/lr=<r>``.
    """
    result = ExperimentResult(
        name="robustness_illumination",
        series={},
        expectation=("with background adaptation (lr>0) accuracy under "
                     "drift stays close to the drift-free level; a frozen "
                     "background degrades"),
        metadata={"clip": sim.name, "drifts": drifts,
                  "learning_rates": learning_rates},
    )
    from repro.vision.background import BackgroundModel

    for drift in drifts:
        clip = VideoClip.from_simulation(sim, illumination_drift=drift)
        for rate in learning_rates:
            background = BackgroundModel(learning_rate=rate)
            pipeline = SegmentationPipeline(background=background,
                                            use_spcpe=False)
            detections = pipeline.process(clip)
            artifacts = _artifacts_from_detections(sim, detections, event)
            label = f"drift={drift:g}/lr={rate:g}"
            if not artifacts.dataset.bags:
                result.series[label] = [0.0] * rounds
                continue
            result.add(label, run_protocol(
                artifacts, MILRetrievalEngine, method=label,
                rounds=rounds, top_k=top_k))
    return result


def robustness_label_noise(sim, *, flip_probs=(0.0, 0.1, 0.2, 0.35),
                           event: str = "accident", rounds: int = 5,
                           top_k: int = 20, mode: str = "oracle"
                           ) -> ExperimentResult:
    """Accuracy series per user label-flip probability."""
    from repro.eval.pipeline import build_artifacts

    artifacts = build_artifacts(sim, event=event, mode=mode)
    result = ExperimentResult(
        name="robustness_label_noise",
        series={},
        expectation=("the RF loop tolerates moderate labelling error; "
                     "accuracy falls with the flip rate"),
        metadata={"clip": sim.name, "flip_probs": flip_probs},
    )
    for prob in flip_probs:
        result.add(f"flip={prob:g}", run_protocol(
            artifacts, MILRetrievalEngine, method=f"flip={prob:g}",
            rounds=rounds, top_k=top_k, flip_prob=prob, user_seed=7))
    return result
