"""The paper's evaluation protocol (Section 6.2).

Five rounds — Initial, First, Second, Third, Fourth — each returning the
top 20 Video Sequences to the (simulated) user, measuring accuracy as the
relevant fraction of what was returned, and feeding the labels back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.base import RetrievalEngine
from repro.core.feedback import OracleUser, RetrievalSession
from repro.eval.metrics import overall_gain
from repro.eval.pipeline import ClipArtifacts
from repro.errors import ConfigurationError

__all__ = ["ProtocolResult", "MultiSeedResult", "run_protocol",
           "run_protocol_multi"]

#: Round labels the paper uses in Figures 8 and 9.
ROUND_NAMES = ("Initial", "First", "Second", "Third", "Fourth")


@dataclass
class ProtocolResult:
    """Accuracy series for one engine on one clip."""

    method: str
    accuracies: list[float]
    n_relevant_total: int
    n_bags: int
    top_k: int
    extras: dict = field(default_factory=dict)

    @property
    def initial(self) -> float:
        return self.accuracies[0]

    @property
    def final(self) -> float:
        return self.accuracies[-1]

    @property
    def gain(self) -> float:
        return overall_gain(self.accuracies)

    @property
    def ceiling(self) -> float:
        """Best possible accuracy given the relevant population."""
        if self.top_k <= 0:
            return 0.0
        return min(1.0, self.n_relevant_total / self.top_k)


@dataclass
class MultiSeedResult:
    """Protocol outcome aggregated over several workload seeds."""

    method: str
    seeds: tuple[int, ...]
    runs: list[ProtocolResult]
    mean_accuracies: list[float]
    std_accuracies: list[float]

    @property
    def mean_gain(self) -> float:
        return float(np.mean([r.gain for r in self.runs]))

    @property
    def mean_final(self) -> float:
        return float(self.mean_accuracies[-1])


def run_protocol_multi(
    artifacts_for_seed: Callable[[int], ClipArtifacts],
    engine_factory: Callable[..., RetrievalEngine],
    *,
    seeds: Iterable[int],
    method: str = "",
    **protocol_kwargs,
) -> MultiSeedResult:
    """Run the protocol over several seeds and aggregate.

    Single-seed curves on these small corpora move in 5-point steps
    (one top-20 slot); means over seeds make method comparisons stable.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runs = [
        run_protocol(artifacts_for_seed(seed), engine_factory,
                     method=method, **protocol_kwargs)
        for seed in seeds
    ]
    curves = np.asarray([r.accuracies for r in runs])
    return MultiSeedResult(
        method=method or runs[0].method,
        seeds=seeds,
        runs=runs,
        mean_accuracies=curves.mean(axis=0).tolist(),
        std_accuracies=curves.std(axis=0).tolist(),
    )


def run_protocol(
    artifacts: ClipArtifacts,
    engine_factory: Callable[..., RetrievalEngine],
    *,
    method: str = "",
    rounds: int = 5,
    top_k: int = 20,
    kinds: Iterable[str] | None = None,
    flip_prob: float = 0.0,
    user_seed: int = 0,
    **engine_kwargs,
) -> ProtocolResult:
    """Run the 5-round RF protocol for one engine on one clip."""
    if rounds <= 0:
        raise ConfigurationError("rounds must be positive")
    from repro.events.models import event_model_for

    if kinds is None:
        kinds = event_model_for(artifacts.dataset.event_name).relevant_kinds
    engine = engine_factory(artifacts.dataset, **engine_kwargs)
    user = OracleUser(artifacts.ground_truth, kinds, flip_prob=flip_prob,
                      seed=user_seed)
    session = RetrievalSession(engine, user, top_k=top_k)
    session.run(rounds)
    n_relevant = artifacts.ground_truth.n_relevant_windows(
        artifacts.dataset.frame_windows(), kinds)
    extras = {}
    if hasattr(engine, "last_nu_"):
        extras["last_nu"] = engine.last_nu_
    return ProtocolResult(
        method=method or type(engine).__name__,
        accuracies=session.accuracies(),
        n_relevant_total=int(n_relevant),
        n_bags=len(artifacts.dataset.bags),
        top_k=top_k,
        extras=extras,
    )
