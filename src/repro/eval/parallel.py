"""Parallel multi-clip ingestion: fan out ``build_artifacts`` over clips.

The eval pipeline ingests clips strictly serially (simulate, render,
segment, track, window — per clip), yet the clips are independent; the
multi-seed experiments and benchmarks pay the full per-clip cost times
the number of seeds.  This module fans the per-clip work over a
``ProcessPoolExecutor`` via :func:`repro.reliability.run_tasks`.

Determinism contract: a worker receives the *complete* recipe for its
clip — scenario name, scenario seed, and build kwargs — as one
:class:`IngestTask`, so every random draw is seeded from the task spec
and never from worker identity, scheduling order, or shared state.
Results are returned in task order regardless of completion order.
Parallel and serial ingestion therefore produce identical artifacts,
which the test suite asserts.

Failure contract: one clip's failure is one task's failure.  A worker
exception is retried under the optional
:class:`~repro.reliability.RetryPolicy`, then either re-raised
(``strict=True``, the historical behaviour) or reported as a
:class:`~repro.reliability.TaskFailure` inside a
:class:`~repro.reliability.BatchResult` (``strict=False``) with the
other clips' results intact.  A dead pool is rebuilt and only the
incomplete tasks are resubmitted; with no pool at all (sandboxes
without semaphores, restricted platforms), ingestion silently falls
back to the serial path with the same results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.eval.pipeline import ClipArtifacts, build_artifacts
from repro.reliability import (
    BatchResult,
    RetryPolicy,
    RunManifest,
    run_tasks,
    task_fingerprint,
)

__all__ = ["IngestTask", "build_artifacts_parallel", "artifacts_for_seeds"]


def _scenario_registry() -> dict[str, Callable]:
    # Imported lazily so a worker process resolves the scenario by name
    # (callables inside task specs would drag closures through pickle).
    from repro.sim.scenarios import highway, intersection, tunnel

    return {"tunnel": tunnel, "intersection": intersection,
            "highway": highway}


@dataclass(frozen=True)
class IngestTask:
    """Self-contained recipe for ingesting one clip.

    ``scenario`` names a builder from :mod:`repro.sim.scenarios`
    (``"tunnel"``, ``"intersection"``, ``"highway"``); ``seed`` is the
    scenario seed; ``sim_kwargs`` go to the scenario builder and
    ``build_kwargs`` to :func:`~repro.eval.pipeline.build_artifacts`.
    ``store_dir`` points every worker at a shared on-disk
    :class:`~repro.pipeline.store.DiskArtifactStore` (writes are atomic,
    so concurrent workers are safe); ``None`` disables artifact reuse.
    Everything must be picklable — tasks cross a process boundary, which
    is also why the store travels as a path rather than an object.
    """

    scenario: str
    seed: int
    sim_kwargs: dict = field(default_factory=dict)
    build_kwargs: dict = field(default_factory=dict)
    store_dir: str | None = None

    def __post_init__(self) -> None:
        if self.scenario not in ("tunnel", "intersection", "highway"):
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; expected 'tunnel', "
                f"'intersection' or 'highway'"
            )

    def fingerprint(self) -> str:
        """Content address of the recipe (excludes the store location).

        This is the task's identity in a
        :class:`~repro.reliability.RunManifest`: two tasks that would
        compute the same artifacts share a fingerprint even if their
        caches live in different directories.
        """
        return task_fingerprint(self.scenario, self.seed,
                                self.sim_kwargs, self.build_kwargs)


def run_ingest_task(task: IngestTask) -> ClipArtifacts:
    """Build one clip's artifacts from its task spec (worker entry point)."""
    builder = _scenario_registry()[task.scenario]
    sim = builder(seed=task.seed, **task.sim_kwargs)
    return build_artifacts(sim, store=task.store_dir, **task.build_kwargs)


def build_artifacts_parallel(
    tasks: Sequence[IngestTask],
    *,
    max_workers: int | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool = True,
    on_result: Callable[[int, ClipArtifacts], None] | None = None,
) -> "list[ClipArtifacts] | BatchResult":
    """Ingest many clips, concurrently when a process pool is available.

    ``max_workers=None`` sizes the pool to ``min(n_tasks, cpu_count)``;
    ``max_workers=1`` (or a single task) forces the serial path.
    Results are identical either way, by the determinism contract.

    Each task is submitted as its own future: a failing clip is retried
    under ``retry``, and a clip exceeding ``task_timeout`` seconds of
    wall clock is abandoned — in both cases the other clips' results
    survive.  Under ``strict=True`` (default) any terminal failure
    re-raises its original exception and the function returns the plain
    ``list[ClipArtifacts]``; under ``strict=False`` it returns the
    :class:`~repro.reliability.BatchResult` (partial ``results`` plus
    structured ``failures``).  ``on_result(index, artifacts)`` fires in
    completion order — :func:`artifacts_for_seeds` uses it to keep a
    resume manifest current.
    """
    batch = run_tasks(run_ingest_task, tasks, max_workers=max_workers,
                      retry=retry, task_timeout=task_timeout,
                      strict=strict, on_result=on_result)
    return batch.results if strict else batch


def artifacts_for_seeds(
    scenario: str,
    seeds: Iterable[int],
    *,
    max_workers: int | None = 1,
    sim_kwargs: dict | None = None,
    store_dir: str | None = None,
    retry: RetryPolicy | None = None,
    manifest: "RunManifest | str | None" = None,
    **build_kwargs,
) -> dict[int, ClipArtifacts]:
    """Ingest one scenario under several seeds; returns ``seed -> artifacts``.

    The shape the multi-seed protocols want: build everything up front
    (optionally in parallel), then hand
    ``artifacts_for_seed=artifacts.__getitem__`` to
    :func:`~repro.eval.protocol.run_protocol_multi`.  ``store_dir``
    threads a shared on-disk artifact store to every worker, so repeated
    ingestion of the same clips replays stored stage artifacts.

    ``manifest`` (a path or :class:`~repro.reliability.RunManifest`)
    makes the sweep resumable: every completed task is recorded
    atomically the moment it finishes, and tasks already recorded skip
    the pool entirely — they replay in-process from ``store_dir``
    (pair the two: without a store a "resumed" task still recomputes).
    A sweep killed mid-run therefore restarts exactly where it died.
    """
    seeds = tuple(seeds)
    tasks = [IngestTask(scenario=scenario, seed=s,
                        sim_kwargs=dict(sim_kwargs or {}),
                        build_kwargs=dict(build_kwargs),
                        store_dir=store_dir)
             for s in seeds]
    man = RunManifest.resolve(manifest)
    done = man.entries() if man is not None else {}
    todo = [t for t in tasks if t.fingerprint() not in done]

    def record(index: int, _artifacts: ClipArtifacts) -> None:
        task = todo[index]
        man.mark_done(task.fingerprint(),
                      {"scenario": task.scenario, "seed": task.seed})

    built = build_artifacts_parallel(
        tasks=todo, max_workers=max_workers, retry=retry,
        on_result=record if man is not None else None)
    by_fingerprint = {t.fingerprint(): a for t, a in zip(todo, built)}
    out: dict[int, ClipArtifacts] = {}
    for task in tasks:
        fp = task.fingerprint()
        if fp not in by_fingerprint:
            # Completed on a previous run: replay from the shared store.
            by_fingerprint[fp] = run_ingest_task(task)
        out[task.seed] = by_fingerprint[fp]
    return out
