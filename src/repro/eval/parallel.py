"""Parallel multi-clip ingestion: fan out ``build_artifacts`` over clips.

The eval pipeline ingests clips strictly serially (simulate, render,
segment, track, window — per clip), yet the clips are independent; the
multi-seed experiments and benchmarks pay the full per-clip cost times
the number of seeds.  This module fans the per-clip work over a
``ProcessPoolExecutor``.

Determinism contract: a worker receives the *complete* recipe for its
clip — scenario name, scenario seed, and build kwargs — as one
:class:`IngestTask`, so every random draw is seeded from the task spec
and never from worker identity, scheduling order, or shared state.
Results are returned in task order regardless of completion order.
Parallel and serial ingestion therefore produce identical artifacts,
which the test suite asserts.

The pool is a best-effort accelerator: with ``max_workers=1``, a single
task, or an environment where process pools are unavailable (sandboxes
without semaphores, restricted platforms), ingestion silently falls
back to the serial path with the same results.
"""

from __future__ import annotations

import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.eval.pipeline import ClipArtifacts, build_artifacts

__all__ = ["IngestTask", "build_artifacts_parallel", "artifacts_for_seeds"]


def _scenario_registry() -> dict[str, Callable]:
    # Imported lazily so a worker process resolves the scenario by name
    # (callables inside task specs would drag closures through pickle).
    from repro.sim.scenarios import highway, intersection, tunnel

    return {"tunnel": tunnel, "intersection": intersection,
            "highway": highway}


@dataclass(frozen=True)
class IngestTask:
    """Self-contained recipe for ingesting one clip.

    ``scenario`` names a builder from :mod:`repro.sim.scenarios`
    (``"tunnel"``, ``"intersection"``, ``"highway"``); ``seed`` is the
    scenario seed; ``sim_kwargs`` go to the scenario builder and
    ``build_kwargs`` to :func:`~repro.eval.pipeline.build_artifacts`.
    ``store_dir`` points every worker at a shared on-disk
    :class:`~repro.pipeline.store.DiskArtifactStore` (writes are atomic,
    so concurrent workers are safe); ``None`` disables artifact reuse.
    Everything must be picklable — tasks cross a process boundary, which
    is also why the store travels as a path rather than an object.
    """

    scenario: str
    seed: int
    sim_kwargs: dict = field(default_factory=dict)
    build_kwargs: dict = field(default_factory=dict)
    store_dir: str | None = None

    def __post_init__(self) -> None:
        if self.scenario not in ("tunnel", "intersection", "highway"):
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; expected 'tunnel', "
                f"'intersection' or 'highway'"
            )


def run_ingest_task(task: IngestTask) -> ClipArtifacts:
    """Build one clip's artifacts from its task spec (worker entry point)."""
    builder = _scenario_registry()[task.scenario]
    sim = builder(seed=task.seed, **task.sim_kwargs)
    return build_artifacts(sim, store=task.store_dir, **task.build_kwargs)


def build_artifacts_parallel(
    tasks: Sequence[IngestTask],
    *,
    max_workers: int | None = None,
) -> list[ClipArtifacts]:
    """Ingest many clips, concurrently when a process pool is available.

    ``max_workers=None`` sizes the pool to ``min(n_tasks, cpu_count)``;
    ``max_workers=1`` (or a single task) forces the serial path.  When
    the pool cannot be created or dies (sandboxed environments, missing
    ``/dev/shm``), the remaining work falls back to serial execution —
    results are identical either way, by the determinism contract.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1 or None, got {max_workers}"
        )
    if max_workers is None:
        import os

        max_workers = min(len(tasks), os.cpu_count() or 1)
    workers = min(max_workers, len(tasks))
    if workers <= 1:
        return [run_ingest_task(t) for t in tasks]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_ingest_task, tasks))
    except (OSError, ImportError, PermissionError, BrokenExecutor) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); ingesting serially",
            RuntimeWarning, stacklevel=2,
        )
        return [run_ingest_task(t) for t in tasks]


def artifacts_for_seeds(
    scenario: str,
    seeds: Iterable[int],
    *,
    max_workers: int | None = 1,
    sim_kwargs: dict | None = None,
    store_dir: str | None = None,
    **build_kwargs,
) -> dict[int, ClipArtifacts]:
    """Ingest one scenario under several seeds; returns ``seed -> artifacts``.

    The shape the multi-seed protocols want: build everything up front
    (optionally in parallel), then hand
    ``artifacts_for_seed=artifacts.__getitem__`` to
    :func:`~repro.eval.protocol.run_protocol_multi`.  ``store_dir``
    threads a shared on-disk artifact store to every worker, so repeated
    ingestion of the same clips replays stored stage artifacts.
    """
    seeds = tuple(seeds)
    tasks = [IngestTask(scenario=scenario, seed=s,
                        sim_kwargs=dict(sim_kwargs or {}),
                        build_kwargs=dict(build_kwargs),
                        store_dir=store_dir)
             for s in seeds]
    built = build_artifacts_parallel(tasks, max_workers=max_workers)
    return dict(zip(seeds, built))
