"""Plain-text reporting of experiment results.

Benchmarks print these tables so ``pytest benchmarks/ --benchmark-only``
output doubles as the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Sequence

from repro.eval.experiments import ExperimentResult
from repro.eval.protocol import ROUND_NAMES

__all__ = ["format_series_table", "comparison_table"]


def format_series_table(series: dict[str, Sequence[float]],
                        round_names: Sequence[str] = ROUND_NAMES,
                        *, as_percent: bool = True) -> str:
    """Render {label: [acc per round]} as an aligned text table."""
    if not series:
        return "(no data)"
    n_rounds = max(len(v) for v in series.values())
    names = list(round_names)[:n_rounds]
    names += [f"Round{i}" for i in range(len(names), n_rounds)]
    label_w = max(len("method"), *(len(k) for k in series))
    cell_w = max(8, *(len(n) for n in names))

    def fmt(value: float) -> str:
        return f"{value * 100:.0f}%" if as_percent else f"{value:.3f}"

    lines = [
        " | ".join(["method".ljust(label_w)]
                   + [n.rjust(cell_w) for n in names]),
        "-+-".join(["-" * label_w] + ["-" * cell_w] * len(names)),
    ]
    for label, values in series.items():
        cells = [fmt(v).rjust(cell_w) for v in values]
        cells += ["".rjust(cell_w)] * (n_rounds - len(values))
        lines.append(" | ".join([label.ljust(label_w)] + cells))
    return "\n".join(lines)


def comparison_table(result: ExperimentResult, *,
                     with_chart: bool = False) -> str:
    """Experiment header + expectation + accuracy table + per-method
    summary (initial, final, gain, ceiling); optionally an ASCII chart."""
    lines = [
        f"=== {result.name} ===",
        f"paper expectation: {result.expectation}",
    ]
    if result.metadata:
        meta = ", ".join(f"{k}={v}" for k, v in result.metadata.items())
        lines.append(f"setup: {meta}")
    lines.append("")
    lines.append(format_series_table(result.series))
    if with_chart and result.series:
        from repro.eval.charts import line_chart

        lines.append("")
        lines.append(line_chart(result.series))
    if result.protocols:
        lines.append("")
        for label, protocol in result.protocols.items():
            lines.append(
                f"  {label}: initial={protocol.initial:.0%} "
                f"final={protocol.final:.0%} gain={protocol.gain:+.0%} "
                f"(relevant={protocol.n_relevant_total}/{protocol.n_bags} "
                f"bags, ceiling={protocol.ceiling:.0%})"
            )
    return "\n".join(lines)
