"""Experiment runners — one per paper figure / in-text claim.

Each returns an :class:`ExperimentResult` whose ``series`` maps a method
or configuration label to its accuracy-per-round list, plus the paper's
qualitative expectation so benchmark output can print paper-vs-measured
side by side.  See DESIGN.md Section 4 for the experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diverse_density import DiverseDensityEngine
from repro.core.emdd import EMDDEngine
from repro.core.engine import MILRetrievalEngine
from repro.core.weighted_rf import WeightedRFEngine
from repro.eval.parallel import artifacts_for_seeds
from repro.eval.pipeline import ClipArtifacts, build_artifacts
from repro.eval.protocol import ProtocolResult, run_protocol
from repro.events.features import SamplingConfig
from repro.pipeline import ArtifactStore, MemoryArtifactStore, resolve_store
from repro.sim.scenarios import highway, intersection, tunnel

__all__ = [
    "ExperimentResult",
    "figure8",
    "figure9",
    "ablation_z",
    "ablation_normalization",
    "ablation_window",
    "ablation_step",
    "ablation_sampling_rate",
    "ablation_learner",
    "other_events",
    "mil_algorithms",
    "cross_camera",
    "sharded_nomination",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: per-method accuracy series + context."""

    name: str
    series: dict[str, list[float]]
    expectation: str
    metadata: dict = field(default_factory=dict)
    protocols: dict[str, ProtocolResult] = field(default_factory=dict)

    def add(self, label: str, protocol: ProtocolResult) -> None:
        self.series[label] = protocol.accuracies
        self.protocols[label] = protocol

    def to_json_dict(self) -> dict:
        """JSON-serializable summary (used by benchmark artifacts)."""
        return {
            "name": self.name,
            "expectation": self.expectation,
            "metadata": {k: _jsonable(v) for k, v in self.metadata.items()},
            "series": {k: list(map(float, v))
                       for k, v in self.series.items()},
            "summary": {
                label: {
                    "initial": p.initial,
                    "final": p.final,
                    "gain": p.gain,
                    "ceiling": p.ceiling,
                    "n_relevant": p.n_relevant_total,
                    "n_bags": p.n_bags,
                }
                for label, p in self.protocols.items()
            },
        }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _sweep_store(store) -> "ArtifactStore | None":
    """Store used by ablation sweeps.

    ``None`` (the default) gives every sweep an ephemeral in-memory
    store, so Render/Segment/Track run once per clip and only the
    stages downstream of the swept knob recompute per value.  Pass
    ``False`` to disable reuse entirely (the cold path), or a directory
    path / :class:`~repro.pipeline.store.ArtifactStore` to share
    artifacts across sweeps and processes.
    """
    if store is None:
        return MemoryArtifactStore()
    return resolve_store(store)


def _store_dir(store) -> str | None:
    """Coerce a store spec to the directory path worker processes need.

    Parallel ingestion ships the store as a path (objects cannot cross
    the process boundary), so only disk-backed stores thread through;
    in-memory stores and ``None``/``False`` disable cross-worker reuse.
    """
    from pathlib import Path

    from repro.pipeline import DiskArtifactStore

    if isinstance(store, (str, Path)):
        return str(store)
    if isinstance(store, DiskArtifactStore):
        return str(store.root)
    return None


def _clip1(seed: int, mode: str) -> ClipArtifacts:
    """Paper clip 1 analogue: the tunnel (2500 frames)."""
    return build_artifacts(tunnel(seed=seed), mode=mode)


def _clip2(seed: int, mode: str) -> ClipArtifacts:
    """Paper clip 2 analogue: the intersection (600 frames)."""
    return build_artifacts(intersection(seed=seed), mode=mode)


def figure8(*, seed: int = 0, mode: str = "vision", rounds: int = 5,
            top_k: int = 20) -> ExperimentResult:
    """Figure 8: accuracy over RF rounds on clip 1 (tunnel).

    Paper: both methods start at 40%; the MIL framework climbs steadily
    to 60% while Weighted_RF gains only ~10 points overall and bounces
    between 35% and 50% without further progress.
    """
    from repro.sim.stats import traffic_statistics

    artifacts = _clip1(seed, mode)
    stats = traffic_statistics(artifacts.result)
    result = ExperimentResult(
        name="figure8_tunnel",
        series={},
        expectation=("MIL+OCSVM gains steadily over rounds and ends well "
                     "above Weighted_RF, whose overall gain is small"),
        metadata={"seed": seed, "mode": mode,
                  "n_bags": len(artifacts.dataset.bags),
                  "n_instances": artifacts.dataset.n_instances,
                  "n_relevant": len(artifacts.relevant_bag_ids),
                  "concurrency": round(stats.mean_concurrency, 2)},
    )
    result.add("MIL_OCSVM", run_protocol(
        artifacts, MILRetrievalEngine, method="MIL_OCSVM",
        rounds=rounds, top_k=top_k))
    result.add("Weighted_RF", run_protocol(
        artifacts, WeightedRFEngine, method="Weighted_RF",
        rounds=rounds, top_k=top_k))
    return result


def figure9(*, seed: int = 1, mode: str = "vision", rounds: int = 5,
            top_k: int = 20) -> ExperimentResult:
    """Figure 9: accuracy over RF rounds on clip 2 (intersection).

    Paper: accidents involve two or more vehicles; the MIL framework's
    gains are smaller than on clip 1 but it stays "far better" than
    Weighted_RF, which degrades right after the initial round.
    """
    from repro.sim.stats import traffic_statistics

    artifacts = _clip2(seed, mode)
    stats = traffic_statistics(artifacts.result)
    result = ExperimentResult(
        name="figure9_intersection",
        series={},
        expectation=("MIL+OCSVM improves modestly; Weighted_RF falls to or "
                     "below its initial accuracy right after round 0"),
        metadata={"seed": seed, "mode": mode,
                  "n_bags": len(artifacts.dataset.bags),
                  "n_instances": artifacts.dataset.n_instances,
                  "n_relevant": len(artifacts.relevant_bag_ids),
                  "concurrency": round(stats.mean_concurrency, 2)},
    )
    result.add("MIL_OCSVM", run_protocol(
        artifacts, MILRetrievalEngine, method="MIL_OCSVM",
        rounds=rounds, top_k=top_k))
    result.add("Weighted_RF", run_protocol(
        artifacts, WeightedRFEngine, method="Weighted_RF",
        rounds=rounds, top_k=top_k))
    return result


def ablation_z(*, zs: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.2),
               seed: int = 1, mode: str = "oracle",
               scenario: str = "intersection",
               training_policy: str = "all") -> ExperimentResult:
    """Section 5.3 claim: "z = 0.05 works well" in Eq. (9).

    Run with ``training_policy="all"`` so Eq. 9's h/H term (and hence z)
    actually moves the outlier fraction.
    """
    builder = _clip2 if scenario == "intersection" else _clip1
    artifacts = builder(seed, mode)
    result = ExperimentResult(
        name="ablation_z",
        series={},
        expectation=("accuracy is flat-topped around z=0.05; extreme z "
                     "values clip nu and hurt"),
        metadata={"seed": seed, "mode": mode, "scenario": scenario,
                  "training_policy": training_policy},
    )
    for z in zs:
        result.add(f"z={z:g}", run_protocol(
            artifacts, MILRetrievalEngine, method=f"z={z:g}",
            z=z, training_policy=training_policy))
    return result


def ablation_normalization(*, seed: int = 1, seeds: tuple[int, ...] | None = None,
                           mode: str = "oracle",
                           scenario: str = "intersection",
                           max_workers: int | None = 1,
                           store=None, manifest=None,
                           ) -> ExperimentResult:
    """Section 6.2: percentage weight normalization vs linear vs none.

    The paper reports percentage best.  Note a structural fact this
    reproduction surfaces: the weighted square-sum *ranking* is invariant
    to rescaling all weights, so "percentage" and "none" produce
    identical rankings by construction — only "linear" (which zeroes the
    smallest weight, the paper's own criticism of it) can differ.  Pass
    ``seeds`` to average the accuracy series over several workloads and
    ``max_workers`` > 1 (or ``None`` for auto) to ingest them in
    parallel.  ``store`` (a directory path) shares stage artifacts
    across runs and ``manifest`` (a path or
    :class:`~repro.reliability.RunManifest`) makes the multi-seed sweep
    resumable after a kill — pass both to get resume-without-re-ingest.
    """
    scenario_name = ("intersection" if scenario == "intersection"
                     else "tunnel")
    seed_list = seeds if seeds is not None else (seed,)
    result = ExperimentResult(
        name="ablation_normalization",
        series={},
        expectation=("percentage >= linear on final accuracy; percentage "
                     "== none exactly (ranking is weight-scale invariant)"),
        metadata={"seeds": seed_list, "mode": mode, "scenario": scenario},
    )
    per_norm: dict[str, list[list[float]]] = {
        "percentage": [], "linear": [], "none": []}
    last_protocols = {}
    store_dir = _store_dir(store)
    artifacts_by_seed = artifacts_for_seeds(
        scenario_name, seed_list, mode=mode, max_workers=max_workers,
        store_dir=store_dir, manifest=manifest)
    for s in seed_list:
        artifacts = artifacts_by_seed[s]
        for norm in per_norm:
            protocol = run_protocol(artifacts, WeightedRFEngine,
                                    method=norm, normalization=norm)
            per_norm[norm].append(protocol.accuracies)
            last_protocols[norm] = protocol
    import numpy as np

    for norm, runs in per_norm.items():
        mean_series = np.mean(np.asarray(runs), axis=0).tolist()
        result.series[norm] = mean_series
        result.protocols[norm] = last_protocols[norm]
    return result


def ablation_window(*, windows: tuple[int, ...] = (2, 3, 5, 7),
                    seed: int = 0, mode: str = "oracle",
                    store=None) -> ExperimentResult:
    """Section 5.1: window size = typical event length (3 checkpoints).

    The sweep shares one artifact store, so the vision/oracle front end
    runs once and only Series -> Windows replays per window size.
    """
    sim = tunnel(seed=seed)
    store = _sweep_store(store)
    result = ExperimentResult(
        name="ablation_window",
        series={},
        expectation=("window=3 (the paper's 15-frame event length) is at "
                     "or near the best final accuracy"),
        metadata={"seed": seed, "mode": mode},
    )
    for w in windows:
        artifacts = build_artifacts(sim, mode=mode, window_size=w,
                                    store=store)
        result.add(f"window={w}", run_protocol(
            artifacts, MILRetrievalEngine, method=f"window={w}"))
    return result


def ablation_sampling_rate(*, rates: tuple[int, ...] = (3, 5, 8, 12),
                           seed: int = 0, mode: str = "oracle",
                           top_k: int = 20, store=None) -> ExperimentResult:
    """Section 5.1's other constant: 5 frames per checkpoint.

    The checkpoint spacing trades temporal resolution against noise
    amplification (velocities are finite differences).  The paper fixes
    it at 5; the sweep shows the plateau around that choice.
    """
    sim = tunnel(seed=seed)
    store = _sweep_store(store)
    result = ExperimentResult(
        name="ablation_sampling_rate",
        series={},
        expectation=("the paper's 5 frames/checkpoint sits on the "
                     "accuracy plateau; extreme rates lose events or "
                     "temporal detail"),
        metadata={"seed": seed, "mode": mode},
    )
    for rate in rates:
        config = SamplingConfig(sampling_rate=rate)
        artifacts = build_artifacts(sim, mode=mode, sampling=config,
                                    store=store)
        result.add(f"rate={rate}", run_protocol(
            artifacts, MILRetrievalEngine, method=f"rate={rate}",
            top_k=top_k))
    return result


def ablation_learner(*, seed: int = 0, mode: str = "oracle",
                     top_k: int = 20, store=None) -> ExperimentResult:
    """One-class learner: Schoelkopf hyperplane vs SVDD hypersphere.

    The paper *describes* a ball (its Figure 5) but cites Schoelkopf's
    hyperplane machine.  Under RBF kernels the two are equivalent up to
    an affine decision transform, so the retrieval curves should match;
    this ablation demonstrates that the description/citation mismatch is
    immaterial.
    """
    sim = tunnel(seed=seed)
    artifacts = build_artifacts(sim, mode=mode, store=_sweep_store(store))
    result = ExperimentResult(
        name="ablation_learner",
        series={},
        expectation=("identical accuracy curves for OCSVM and SVDD under "
                     "the RBF kernel (known equivalence)"),
        metadata={"seed": seed, "mode": mode},
    )
    for learner in ("ocsvm", "svdd"):
        result.add(learner, run_protocol(
            artifacts, MILRetrievalEngine, method=learner,
            learner=learner, top_k=top_k))
    return result


def ablation_step(*, seed: int = 0, mode: str = "oracle",
                  top_k: int = 20, store=None) -> ExperimentResult:
    """Window stride: the paper's ambiguity between overlap and not.

    Section 5.1 describes the sliding window moving "one step a time",
    yet the reported TS counts (109 TSs from 2504 frames) only work out
    for *non-overlapping* windows.  Both variants are run; overlapping
    windows multiply the bag count (and the user's labelling effort per
    covered second) without changing the retrieval story.
    """
    sim = tunnel(seed=seed)
    store = _sweep_store(store)
    result = ExperimentResult(
        name="ablation_step",
        series={},
        expectation=("non-overlapping windows (the TS-count reading) and "
                     "step=1 (the literal reading) both learn; "
                     "non-overlap is the better effort/coverage tradeoff"),
        metadata={"seed": seed, "mode": mode},
    )
    for label, step in (("step=window (non-overlap)", None),
                        ("step=1 (full overlap)", 1)):
        artifacts = build_artifacts(sim, mode=mode, step=step, store=store)
        protocol = run_protocol(artifacts, MILRetrievalEngine,
                                method=label, top_k=top_k)
        result.add(label, protocol)
        result.metadata[f"n_bags[{label}]"] = len(artifacts.dataset.bags)
    return result


def other_events(*, seed: int = 2, mode: str = "oracle",
                 top_k: int = 10) -> ExperimentResult:
    """Section 4's remark: the model adjusts to U-turns and speeding."""
    sim = highway(seed=seed)
    result = ExperimentResult(
        name="other_events",
        series={},
        expectation=("both U-turn and speeding queries end above their "
                     "initial accuracy after feedback"),
        metadata={"seed": seed, "mode": mode},
    )
    for event in ("u_turn", "speeding"):
        artifacts = build_artifacts(sim, event=event, mode=mode)
        result.add(event, run_protocol(
            artifacts, MILRetrievalEngine, method=event, top_k=top_k))
    return result


def cross_camera(*, seeds: tuple[int, int] = (1, 5), rounds: int = 5,
                 top_k: int = 20, tilt_deg: float = 35.0,
                 n_landmarks: int = 8) -> ExperimentResult:
    """Future-work experiment: retrieval over a multi-camera database.

    Paper Section 6.2 (closing): mining all clips "as a whole" requires
    normalizing videos "taken at different locations with different
    camera parameters".  Two intersection clips are shot through two
    different cameras (overhead and strongly tilted); accident retrieval
    runs over the *merged* corpus twice — once on raw image-plane
    features, once after calibrating each camera from ``n_landmarks``
    surveyed road points (DLT) and back-projecting every track onto the
    road plane.  Expectation: normalization recovers accuracy the
    perspective distortion costs.
    """
    import numpy as np

    from repro.core.bags import merge_datasets
    from repro.core.feedback import MultiClipOracle, RetrievalSession
    from repro.events.features import extract_series as _extract
    from repro.events.models import AccidentModel
    from repro.events.windows import build_dataset as _build
    from repro.sim.camera import CameraModel
    from repro.sim.ground_truth import GroundTruth
    from repro.tracking.tracker import CentroidTracker
    from repro.vision.calibration import estimate_homography, normalize_tracks
    from repro.vision.frames import VideoClip
    from repro.vision.pipeline import SegmentationPipeline

    cameras = [
        CameraModel.overhead(),
        CameraModel.tilted(tilt_deg=tilt_deg, height=400.0, focal=200.0,
                           principal=(160.0, 170.0)),
    ]
    truths: dict[str, GroundTruth] = {}
    raw_datasets, norm_datasets = [], []
    rng = np.random.default_rng(0)
    for i, (seed, camera) in enumerate(zip(seeds, cameras)):
        sim = intersection(seed=seed)
        sim.name = f"intersection-cam{i}"
        truths[sim.name] = GroundTruth.from_result(sim)
        clip = VideoClip.from_simulation(sim, camera=camera)
        detections = SegmentationPipeline(use_spcpe=False).process(clip)
        tracks = CentroidTracker().track(detections)
        raw_datasets.append(_build(_extract(tracks), AccidentModel(),
                                   clip_id=sim.name))
        # Calibrate from surveyed landmarks (world/image correspondences
        # with half-pixel survey noise), then normalize to the road plane.
        landmarks = rng.uniform([30, 30], [290, 210],
                                size=(n_landmarks, 2))
        observed = camera.project(landmarks) + rng.normal(
            0.0, 0.5, size=(n_landmarks, 2))
        estimated = estimate_homography(landmarks, observed)
        normalized = normalize_tracks(tracks, estimated)
        norm_datasets.append(_build(_extract(normalized), AccidentModel(),
                                    clip_id=sim.name))

    result = ExperimentResult(
        name="cross_camera",
        series={},
        expectation=("plane-normalized features match or beat raw "
                     "image-plane features on the merged two-camera "
                     "corpus"),
        metadata={"seeds": seeds, "tilt_deg": tilt_deg,
                  "n_landmarks": n_landmarks},
    )
    for label, datasets in (("raw_image_plane", raw_datasets),
                            ("plane_normalized", norm_datasets)):
        merged = merge_datasets(datasets)
        engine = MILRetrievalEngine(merged)
        oracle = MultiClipOracle(truths, AccidentModel.relevant_kinds)
        session = RetrievalSession(engine, oracle, top_k=top_k)
        session.run(rounds)
        n_relevant = sum(
            truths[b.clip_id].label_window(b.frame_lo, b.frame_hi,
                                           AccidentModel.relevant_kinds)
            for b in merged.bags
        )
        result.add(label, ProtocolResult(
            method=label,
            accuracies=session.accuracies(),
            n_relevant_total=n_relevant,
            n_bags=len(merged.bags),
            top_k=top_k,
            extras={"last_nu": engine.last_nu_},
        ))
    return result


def mil_algorithms(*, seed: int = 1, mode: str = "oracle",
                   scenario: str = "intersection") -> ExperimentResult:
    """Extension: OCSVM vs Diverse Density vs EM-DD vs Weighted_RF."""
    builder = _clip2 if scenario == "intersection" else _clip1
    artifacts = builder(seed, mode)
    result = ExperimentResult(
        name="mil_algorithms",
        series={},
        expectation=("the OCSVM engine is competitive with DD/EM-DD; all "
                     "MIL engines beat Weighted_RF's gain"),
        metadata={"seed": seed, "mode": mode, "scenario": scenario},
    )
    result.add("OCSVM", run_protocol(
        artifacts, MILRetrievalEngine, method="OCSVM"))
    result.add("DD", run_protocol(
        artifacts, DiverseDensityEngine, method="DD", max_starts=5))
    result.add("EM-DD", run_protocol(
        artifacts, EMDDEngine, method="EM-DD", max_starts=5))
    result.add("Weighted_RF", run_protocol(
        artifacts, WeightedRFEngine, method="Weighted_RF"))
    return result


def sharded_nomination(*, seed: int = 0, mode: str = "oracle",
                       rounds: int = 5, top_k: int = 20,
                       candidates_per_shard: int = 16,
                       nominator: str | None = None,
                       index_cells: int = 32,
                       nprobe: int = 8) -> ExperimentResult:
    """Extension: heuristic vs IVF stage-one nomination, same exact rerank.

    Three clips form a sharded corpus; accident retrieval runs once per
    nominator under identical oracle feedback.  The IVF path probes each
    shard's k-means cell index near the relevant bags' training
    instances instead of scanning the static heuristic order, so its
    stage-one cost is sublinear in shard size.  Expectation: the exact
    OCSVM rerank keeps the IVF accuracy series at (or near) the
    heuristic one while nominating from a fraction of each shard.
    ``nominator`` restricts the run to a single variant.
    """
    from repro.core.feedback import MultiClipOracle, RetrievalSession
    from repro.core.sharded import (
        IVFNominator,
        ShardSpec,
        ShardedCorpus,
        ShardedRetrievalEngine,
    )
    from repro.events.models import AccidentModel
    from repro.sim.scenarios import curve

    clips = [
        build_artifacts(tunnel(seed=seed), mode=mode),
        build_artifacts(intersection(seed=seed + 1), mode=mode),
        build_artifacts(curve(seed=seed + 2), mode=mode),
    ]
    truths = {a.result.name: a.ground_truth for a in clips}
    labels = (("heuristic", "heuristic"), ("ivf", "ivf"))
    if nominator is not None:
        labels = tuple(pair for pair in labels if pair[0] == nominator)
        if not labels:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"nominator must be 'heuristic' or 'ivf', got {nominator!r}")

    result = ExperimentResult(
        name="sharded_nomination",
        series={},
        expectation=("IVF nomination matches the heuristic prefilter's "
                     "accuracy series while probing a fraction of each "
                     "shard; the exact OCSVM rerank is shared"),
        metadata={"seed": seed, "mode": mode,
                  "candidates_per_shard": candidates_per_shard,
                  "index_cells": index_cells, "nprobe": nprobe},
    )
    for label, kind in labels:
        specs = [
            ShardSpec(clip_id=a.dataset.clip_id,
                      n_bags=len(a.dataset.bags),
                      n_instances=a.dataset.n_instances,
                      loader=(lambda a=a: a.dataset),
                      index_loader=(lambda a=a: a.index))
            for a in clips
        ]
        corpus = ShardedCorpus(
            specs, corpus_id="merged:" + "+".join(truths),
            event_name="accident")
        engine_nominator = "heuristic" if kind == "heuristic" else \
            IVFNominator(n_cells=index_cells, nprobe=nprobe)
        engine = ShardedRetrievalEngine(
            corpus, candidates_per_shard=candidates_per_shard,
            nominator=engine_nominator)
        oracle = MultiClipOracle(truths, AccidentModel.relevant_kinds)
        session = RetrievalSession(engine, oracle, top_k=top_k)
        session.run(rounds)
        n_relevant = sum(
            truths[bag.clip_id].label_window(
                bag.frame_lo, bag.frame_hi, AccidentModel.relevant_kinds)
            for a in clips for bag in a.dataset.bags
        )
        result.add(label, ProtocolResult(
            method=label,
            accuracies=session.accuracies(),
            n_relevant_total=n_relevant,
            n_bags=len(corpus),
            top_k=top_k,
            extras={"last_nu": engine.last_nu_},
        ))
    return result
