"""Instance-level diagnostics: does MIL find the responsible vehicles?

The paper's selling point (Section 1): "The user only needs to give
feedback to the whole Video Sequence and the learning algorithm will
analyze the contained Trajectory Sequences in order to find out the
spatio-temporal patterns of user-interested moving vehicle behaviors."
Bag-level accuracy does not measure that promise; this module does.  For
every truly relevant bag we check whether the engine's *highest-scored
instance* belongs to a vehicle actually involved in the overlapping
incident (matching estimated tracks to true vehicles when the vision
pipeline produced them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.base import RetrievalEngine
from repro.errors import ConfigurationError
from repro.eval.pipeline import ClipArtifacts
from repro.sim.ground_truth import TrackMatcher

__all__ = ["InstanceDiscovery", "evaluate_instance_discovery"]


@dataclass(frozen=True)
class InstanceDiscovery:
    """Instance-level retrieval quality over the truly relevant bags.

    ``random_top1`` is the expected top-1 precision of a uniformly random
    within-bag ordering (the involved fraction averaged over bags) — the
    chance floor any useful attribution must beat.
    """

    n_bags: int
    top1_precision: float
    mean_reciprocal_rank: float
    random_top1: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InstanceDiscovery(bags={self.n_bags}, "
                f"top1={self.top1_precision:.0%}, "
                f"mrr={self.mean_reciprocal_rank:.2f}, "
                f"chance={self.random_top1:.0%})")


def _track_to_vehicle(artifacts: ClipArtifacts) -> dict[int, int | None]:
    """Map every track id to its true vehicle id (None if unmatched)."""
    matcher = TrackMatcher(artifacts.result)
    return {
        t.track_id: matcher.match(t.frame_array(), t.point_array())
        for t in artifacts.tracks
    }


def evaluate_instance_discovery(
    artifacts: ClipArtifacts,
    engine: RetrievalEngine,
    *,
    kinds: Iterable[str] | None = None,
) -> InstanceDiscovery:
    """Score the engine's instance ranking against involved vehicles.

    For each relevant bag (ground truth), instances are ordered by the
    engine's relevance; ``top1_precision`` is the fraction of bags whose
    best instance is an involved vehicle, ``mean_reciprocal_rank`` the
    average 1/rank of the first involved instance.  Bags where no
    instance maps to an involved vehicle (e.g. the crash vehicles were
    never tracked) are excluded — they are a tracking failure, not a
    ranking one.
    """
    if engine.dataset is not artifacts.dataset:
        raise ConfigurationError(
            "engine and artifacts must share the same dataset"
        )
    from repro.events.models import event_model_for

    if kinds is None:
        kinds = event_model_for(artifacts.dataset.event_name).relevant_kinds
    track_to_vid = _track_to_vehicle(artifacts)
    scores = engine.instance_relevance()
    gt = artifacts.ground_truth

    top1_hits = 0
    reciprocal_ranks: list[float] = []
    chance: list[float] = []
    n_bags = 0
    for bag in artifacts.dataset.bags:
        if not bag.instances:
            continue
        if not gt.label_window(bag.frame_lo, bag.frame_hi, kinds):
            continue
        involved = gt.involved_vehicles(kinds, bag.frame_lo, bag.frame_hi)
        flags = []
        for inst in sorted(bag.instances,
                           key=lambda i: scores[i.instance_id],
                           reverse=True):
            vid = track_to_vid.get(inst.track_id)
            flags.append(vid is not None and vid in involved)
        if not any(flags):
            continue  # involved vehicle untracked: not a ranking failure
        n_bags += 1
        top1_hits += flags[0]
        rank = flags.index(True) + 1
        reciprocal_ranks.append(1.0 / rank)
        chance.append(sum(flags) / len(flags))

    if n_bags == 0:
        return InstanceDiscovery(n_bags=0, top1_precision=0.0,
                                 mean_reciprocal_rank=0.0,
                                 random_top1=0.0)
    return InstanceDiscovery(
        n_bags=n_bags,
        top1_precision=top1_hits / n_bags,
        mean_reciprocal_rank=float(np.mean(reciprocal_ranks)),
        random_top1=float(np.mean(chance)),
    )
