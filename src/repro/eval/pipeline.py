"""End-to-end plumbing: simulation -> tracks -> MIL dataset.

``mode="vision"`` runs the honest pipeline (render frames, background
subtraction, blob tracking); ``mode="oracle"`` reads tracks straight from
the simulator with optional jitter — an order of magnitude faster and
used by ablations that only probe the learning stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bags import MILDataset
from repro.errors import ConfigurationError
from repro.events.features import SamplingConfig, extract_series
from repro.events.models import EventModel, event_model_for
from repro.events.windows import build_dataset
from repro.sim.ground_truth import GroundTruth
from repro.sim.world import SimulationResult
from repro.tracking.oracle import tracks_from_simulation
from repro.tracking.track import Track
from repro.tracking.tracker import CentroidTracker
from repro.vision.frames import VideoClip
from repro.vision.pipeline import SegmentationPipeline

__all__ = ["ClipArtifacts", "build_artifacts"]


@dataclass
class ClipArtifacts:
    """Everything downstream evaluation needs for one clip."""

    result: SimulationResult
    tracks: list[Track]
    dataset: MILDataset
    ground_truth: GroundTruth

    @property
    def relevant_bag_ids(self) -> set[int]:
        """Bags a querying user of this dataset's event would confirm."""
        model = event_model_for(self.dataset.event_name)
        return {
            b.bag_id for b in self.dataset.bags
            if self.ground_truth.label_window(b.frame_lo, b.frame_hi,
                                              model.relevant_kinds)
        }


def build_artifacts(
    result: SimulationResult,
    *,
    event: str | EventModel = "accident",
    mode: str = "vision",
    window_size: int = 3,
    step: int | None = None,
    sampling: SamplingConfig | None = None,
    oracle_jitter: float = 0.4,
    render_seed: int = 7,
    use_spcpe: bool = False,
    stitch: bool = False,
    seed: int = 0,
) -> ClipArtifacts:
    """Run the pipeline over a simulated clip and bundle the artifacts.

    ``stitch`` applies occlusion/dropout track stitching after tracking
    (vision mode only).
    """
    model = event_model_for(event) if isinstance(event, str) else event
    if mode == "vision":
        from repro.tracking.stitching import stitch_tracks

        clip = VideoClip.from_simulation(result, render_seed=render_seed)
        detections = SegmentationPipeline(use_spcpe=use_spcpe).process(clip)
        tracks = CentroidTracker().track(detections)
        if stitch:
            tracks = stitch_tracks(tracks)
    elif mode == "oracle":
        tracks = tracks_from_simulation(result, jitter=oracle_jitter,
                                        seed=seed)
    else:
        raise ConfigurationError(
            f"mode must be 'vision' or 'oracle', got {mode!r}"
        )
    series = extract_series(tracks, sampling)
    dataset = build_dataset(series, model, clip_id=result.name,
                            window_size=window_size, step=step,
                            config=sampling)
    return ClipArtifacts(
        result=result,
        tracks=tracks,
        dataset=dataset,
        ground_truth=GroundTruth.from_result(result),
    )
