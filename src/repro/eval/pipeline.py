"""End-to-end plumbing: simulation -> tracks -> MIL dataset.

``build_artifacts`` is now a thin compatibility shim over
:mod:`repro.pipeline`: the historical keyword surface is translated into
a :class:`~repro.pipeline.config.PipelineConfig` and executed by a
:class:`~repro.pipeline.runner.PipelineRunner`.  Pass ``store`` (an
:class:`~repro.pipeline.store.ArtifactStore` or a directory path) to
reuse upstream stage artifacts across calls — a sweep over a downstream
knob then re-runs only Series -> Windows per value.

``mode="vision"`` runs the honest pipeline (render frames, background
subtraction, blob tracking); ``mode="oracle"`` reads tracks straight from
the simulator with optional jitter — an order of magnitude faster and
used by ablations that only probe the learning stack.
"""

from __future__ import annotations

from repro.events.features import SamplingConfig
from repro.events.models import EventModel
from repro.pipeline import (
    ArtifactStore,
    ClipArtifacts,
    PipelineConfig,
    PipelineRunner,
)
from repro.sim.world import SimulationResult

__all__ = ["ClipArtifacts", "build_artifacts"]


def build_artifacts(
    result: SimulationResult,
    *,
    event: str | EventModel = "accident",
    mode: str = "vision",
    window_size: int = 3,
    step: int | None = None,
    sampling: SamplingConfig | None = None,
    oracle_jitter: float = 0.4,
    render_seed: int = 7,
    use_spcpe: bool = False,
    stitch: bool = False,
    seed: int = 0,
    store: "ArtifactStore | str | None" = None,
) -> ClipArtifacts:
    """Run the staged pipeline over a simulated clip; bundle the artifacts.

    ``stitch`` applies occlusion/dropout track stitching after tracking
    (vision mode only; requesting it with ``mode="oracle"`` raises
    :class:`~repro.errors.ConfigurationError`).  ``store`` enables
    content-addressed reuse of stage artifacts between calls.
    """
    config = PipelineConfig.from_build_kwargs(
        event=event, mode=mode, window_size=window_size, step=step,
        sampling=sampling, oracle_jitter=oracle_jitter,
        render_seed=render_seed, use_spcpe=use_spcpe, stitch=stitch,
        seed=seed,
    )
    return PipelineRunner(config, store=store).run(result)
