"""Evaluation harness: metrics, the RF protocol, experiment runners.

``experiments`` contains one runner per paper figure / in-text claim
(see DESIGN.md's per-experiment index); ``benchmarks/`` calls these and
prints paper-vs-measured tables.
"""

from repro.eval.metrics import (
    accuracy_at_k,
    accuracy_curve,
    average_precision,
    overall_gain,
)
from repro.eval.parallel import (
    IngestTask,
    artifacts_for_seeds,
    build_artifacts_parallel,
)
from repro.eval.pipeline import ClipArtifacts, build_artifacts
from repro.eval.protocol import ProtocolResult, run_protocol
from repro.eval.experiments import (
    ExperimentResult,
    ablation_normalization,
    ablation_window,
    ablation_z,
    figure8,
    figure9,
    mil_algorithms,
    other_events,
)
from repro.eval.reporting import comparison_table, format_series_table

__all__ = [
    "accuracy_at_k",
    "accuracy_curve",
    "average_precision",
    "overall_gain",
    "ClipArtifacts",
    "build_artifacts",
    "IngestTask",
    "artifacts_for_seeds",
    "build_artifacts_parallel",
    "ProtocolResult",
    "run_protocol",
    "ExperimentResult",
    "figure8",
    "figure9",
    "ablation_z",
    "ablation_normalization",
    "ablation_window",
    "other_events",
    "mil_algorithms",
    "comparison_table",
    "format_series_table",
]
