"""Deterministic chaos layer: seeded fault injection for storage seams.

The chaos suite (``tests/chaos``) needs to drive full
ingest-while-querying runs under *reproducible* fault schedules: the
same plan and seed must corrupt the same blob on the same call in every
run, or a failing chaos test cannot be replayed.  So nothing here draws
from global randomness — every decision is a pure function of
``(seed, op, call_index)``, exactly the trick
:class:`~repro.reliability.RetryPolicy` uses for jitter.

Three seams are wrappable, matching the system's real failure domains:

* :meth:`FaultInjector.wrap_artifact_store` — the content-addressed
  pipeline store (I/O errors, latency; ``corrupt`` flips a byte of the
  on-disk blob so the store's *own* checksum/quarantine machinery is
  exercised end to end rather than simulated);
* :meth:`FaultInjector.wrap_shard_spec` — a sharded corpus' per-clip
  loaders (the shard failure domain of the query path);
* :meth:`FaultInjector.connect` — the SQLite catalog connection
  (``SQLITE_BUSY`` and I/O errors on statements), pluggable into
  :class:`~repro.db.database.VideoDatabase` via ``connection_factory``.

Faults raise the *real* exception types the production seams raise
(``OSError``, ``sqlite3.OperationalError: database is locked``,
:class:`~repro.errors.IntegrityError`), so the code under test cannot
tell an injected fault from a genuine one.
"""

from __future__ import annotations

import hashlib
import sqlite3
import time
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, IntegrityError
from repro.obs import get_telemetry
from repro.pipeline.store import ArtifactStore, DiskArtifactStore

__all__ = ["FaultRule", "FaultPlan", "FaultInjector"]

#: Fault kinds a rule may inject.
FAULT_KINDS = ("io-error", "busy", "corrupt", "latency")

#: Operation names the injector consults the plan for.
FAULT_OPS = ("store.load", "store.save", "store.has",
             "shard.load", "db.execute")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault schedule for one operation seam.

    ``rate`` fires probabilistically (hash of seed/op/call — the same
    calls fire for the same seed, run after run); ``calls`` names
    explicit 1-based call indexes that always fire.  ``key_substring``
    restricts the rule to operations whose key (artifact key, clip id,
    SQL text) contains it.  ``after`` skips the first N calls —
    "healthy warm-up, then faults" schedules.  ``limit`` caps how many
    times the rule fires in total (``None`` = unbounded): faults that
    *clear* after a while are how recovery paths get tested.
    """

    op: str
    kind: str
    rate: float = 0.0
    calls: tuple[int, ...] = ()
    key_substring: str = ""
    after: int = 0
    limit: int | None = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ConfigurationError(
                f"unknown fault op {self.op!r}; expected one of "
                f"{FAULT_OPS}")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"rate must be in [0, 1], got {self.rate}")
        if self.limit is not None and self.limit < 0:
            raise ConfigurationError(
                f"limit must be >= 0 or None, got {self.limit}")
        if self.latency_s < 0:
            raise ConfigurationError(
                f"latency_s must be >= 0, got {self.latency_s}")


class FaultPlan:
    """A seeded, ordered set of :class:`FaultRule`\\ s.

    Rules are consulted in order; the first one that matches an
    operation fires.  The decision for call ``n`` of operation ``op``
    is a pure function of ``(seed, rule position, op, n)`` — no global
    RNG, so a chaos run replays exactly.
    """

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = (),
                 *, seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)

    def _unit(self, rule_index: int, op: str, call_index: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{rule_index}:{op}:{call_index}"
            .encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)

    def decide(self, op: str, key: str, call_index: int,
               fired_so_far) -> FaultRule | None:
        """The rule that fires for this call, if any.

        ``fired_so_far`` maps rule position -> times fired, so
        ``limit`` caps can be enforced without the plan keeping state
        (the injector owns the counters).
        """
        for i, rule in enumerate(self.rules):
            if rule.op != op:
                continue
            if rule.key_substring and rule.key_substring not in key:
                continue
            if call_index <= rule.after:
                continue
            if rule.limit is not None and fired_so_far.get(i, 0) >= rule.limit:
                continue
            if call_index in rule.calls:
                return rule
            if rule.rate and self._unit(i, op, call_index) < rule.rate:
                return rule
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


@dataclass
class InjectedFault:
    """One fault the injector actually fired (for test assertions)."""

    op: str
    key: str
    call_index: int
    kind: str


class FaultInjector:
    """Applies a :class:`FaultPlan` at the storage seams.

    One injector owns the per-op call counters, so wrapping several
    objects (a store, three shard loaders, the catalog connection) with
    the same injector yields one coherent, reproducible schedule.
    ``sleep`` is injectable so latency faults cost nothing in tests.
    """

    def __init__(self, plan: FaultPlan, *, sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._calls: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        #: Every fault fired, in order — the chaos suite asserts on it.
        self.injected: list[InjectedFault] = []
        self.enabled = True

    # ------------------------------------------------------------ core
    def check(self, op: str, key: str = "") -> str | None:
        """Count one call; raise/delay if the plan says so.

        Returns the fired kind for non-raising faults (``latency``,
        and ``corrupt`` when the caller implements the corruption
        itself), ``None`` when the call passes clean.
        """
        if not self.enabled:
            return None
        call_index = self._calls.get(op, 0) + 1
        self._calls[op] = call_index
        rule = self.plan.decide(op, key, call_index, self._fired)
        if rule is None:
            return None
        rule_index = self.plan.rules.index(rule)
        self._fired[rule_index] = self._fired.get(rule_index, 0) + 1
        self.injected.append(InjectedFault(op, key, call_index, rule.kind))
        obs = get_telemetry()
        obs.counter("faults.injected").inc(op=op, kind=rule.kind)
        if rule.kind == "latency":
            self._sleep(rule.latency_s)
            return "latency"
        if rule.kind == "io-error":
            raise OSError(f"injected I/O error ({op} #{call_index}, "
                          f"key={key!r})")
        if rule.kind == "busy":
            raise sqlite3.OperationalError(
                f"database is locked (injected, {op} #{call_index})")
        return "corrupt"

    def counts(self) -> dict[str, int]:
        """Calls seen per op (diagnostics for chaos assertions)."""
        return dict(self._calls)

    # ------------------------------------------------------- store seam
    def wrap_artifact_store(self, store: ArtifactStore) -> "FaultyStore":
        """Wrap a pipeline artifact store (load/save/has faults)."""
        return FaultyStore(store, self)

    # ------------------------------------------------------- shard seam
    def wrap_shard_spec(self, spec):
        """A copy of ``spec`` whose loader consults the plan first.

        Fires under op ``shard.load`` with the clip id as key, so a
        plan can fail one specific shard (``key_substring="clip-3"``)
        or any shard probabilistically.
        """
        inner = spec.loader

        def loader():
            self.check("shard.load", key=spec.clip_id)
            return inner()

        return replace(spec, loader=loader)

    def wrap_shard_specs(self, specs) -> list:
        return [self.wrap_shard_spec(spec) for spec in specs]

    # ---------------------------------------------------------- db seam
    def connect(self, path: str, **kwargs) -> "FaultyConnection":
        """A ``sqlite3.connect`` stand-in injecting statement faults.

        Pass as ``VideoDatabase(connection_factory=injector.connect)``;
        ``busy`` faults surface as ``sqlite3.OperationalError:
        database is locked``, which the catalog boundary translates to
        the retryable :class:`~repro.errors.DatabaseBusyError`.
        """
        return FaultyConnection(sqlite3.connect(path, **kwargs), self)


@dataclass
class _StoreCounters:
    corruptions: int = 0


class FaultyStore(ArtifactStore):
    """Artifact store proxy that consults a :class:`FaultInjector`.

    ``corrupt`` faults on ``load`` flip one byte of the *on-disk* blob
    when the inner store is a :class:`DiskArtifactStore`, then delegate
    — the store's own checksum verification quarantines the blob and
    raises :class:`IntegrityError`, exercising the production recovery
    path.  Memory-backed stores get the error raised directly (there
    are no bytes to flip).
    """

    def __init__(self, inner: ArtifactStore, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self._counters = _StoreCounters()

    def _corrupt_blob(self, key: str) -> bool:
        """Flip one byte of the stored blob; False if not applicable."""
        if not isinstance(self.inner, DiskArtifactStore):
            return False
        blob = self.inner._blob(key)
        try:
            payload = bytearray(blob.read_bytes())
        except OSError:
            return False
        if not payload:
            return False
        payload[len(payload) // 2] ^= 0xFF
        blob.write_bytes(bytes(payload))
        self._counters.corruptions += 1
        return True

    def has(self, key: str) -> bool:
        self.injector.check("store.has", key=key)
        return self.inner.has(key)

    def load(self, key: str):
        fired = self.injector.check("store.load", key=key)
        if fired == "corrupt" and not self._corrupt_blob(key):
            raise IntegrityError(
                f"artifact {key!r} failed verification (injected "
                f"corruption)")
        return self.inner.load(key)

    def save(self, key: str, value, meta: dict | None = None) -> None:
        self.injector.check("store.save", key=key)
        self.inner.save(key, value, meta)

    def keys(self) -> list[str]:
        return self.inner.keys()

    def entries(self) -> list[dict]:
        return self.inner.entries()


class FaultyConnection:
    """SQLite connection proxy firing ``db.execute`` faults.

    Only statement entry points are intercepted (``execute`` /
    ``executemany`` / ``executescript`` / ``commit``); transaction
    context management and everything else delegate untouched, so the
    proxy behaves exactly like the real connection between faults.
    """

    def __init__(self, raw: sqlite3.Connection,
                 injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    def execute(self, sql: str, params=()):
        self._injector.check("db.execute", key=sql)
        return self._raw.execute(sql, params)

    def executemany(self, sql: str, rows):
        self._injector.check("db.execute", key=sql)
        return self._raw.executemany(sql, rows)

    def executescript(self, script: str):
        self._injector.check("db.execute", key=script)
        return self._raw.executescript(script)

    def commit(self) -> None:
        self._injector.check("db.execute", key="COMMIT")
        self._raw.commit()

    def close(self) -> None:
        self._raw.close()

    def __enter__(self):
        self._raw.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        return self._raw.__exit__(exc_type, exc, tb)

    def __getattr__(self, name):
        return getattr(self._raw, name)
