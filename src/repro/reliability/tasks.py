"""Fault-isolated batch execution over a process pool.

``run_tasks`` is the engine under
:func:`repro.eval.parallel.build_artifacts_parallel`: it fans a list of
picklable task specs over a ``ProcessPoolExecutor`` with *per-future*
submission, so one task's failure is one task's problem:

* a worker exception fails only that task — it is retried under an
  optional :class:`~repro.reliability.retry.RetryPolicy`, then recorded
  as a structured :class:`TaskFailure`;
* a dead pool (``BrokenExecutor`` — a worker segfaulted or was
  OOM-killed) is rebuilt and only the *incomplete* tasks are
  resubmitted; results already collected are never thrown away;
* each task may carry a wall-clock ``task_timeout``; an overdue task is
  abandoned (its future cancelled, its worker left to finish into the
  void) and reported as a :class:`~repro.errors.TaskTimeoutError`.

Results always come back in task order.  Under ``strict=True`` (the
default) any surviving failure re-raises its original exception, which
preserves the historical "the batch raises what the worker raised"
contract; ``strict=False`` returns the partial :class:`BatchResult`.
"""

from __future__ import annotations

import time
import traceback as _traceback
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError, TaskTimeoutError
from repro.obs import carry_context, get_telemetry
from repro.reliability.retry import RetryPolicy

__all__ = ["TaskFailure", "BatchResult", "run_tasks"]

#: Exceptions at pool *creation* that mean "no process pool here" —
#: sandboxes without semaphores, missing /dev/shm, restricted platforms.
_POOL_UNAVAILABLE = (OSError, ImportError, PermissionError)


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure, with enough context to triage it."""

    index: int
    task: object
    error: BaseException
    attempts: int
    traceback: str = ""

    @property
    def error_type(self) -> str:
        return type(self.error).__name__

    @property
    def message(self) -> str:
        return str(self.error)

    @classmethod
    def from_exception(cls, index: int, task: object, exc: BaseException,
                       attempts: int) -> "TaskFailure":
        tb = "".join(_traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(index=index, task=task, error=exc, attempts=attempts,
                   traceback=tb)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (f"task[{self.index}] failed after {self.attempts} "
                f"attempt(s): {self.error_type}: {self.message}")


@dataclass
class BatchResult:
    """Outcome of one ``run_tasks`` batch: partial results + failures.

    ``results`` has one slot per input task, in task order; failed
    slots hold ``None``.  ``failures`` is sorted by task index.
    """

    results: list
    failures: list[TaskFailure] = field(default_factory=list)
    pool_restarts: int = 0
    attempts: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_indices(self) -> list[int]:
        return [f.index for f in self.failures]

    def completed(self) -> list:
        """The successful results only, in task order."""
        failed = set(self.failed_indices)
        return [r for i, r in enumerate(self.results) if i not in failed]

    def raise_if_failed(self) -> None:
        """Re-raise the first (lowest-index) failure's original error."""
        if self.failures:
            raise self.failures[0].error


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    *,
    max_workers: int | None = None,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    strict: bool = True,
    on_result: Callable[[int, object], None] | None = None,
    max_pool_restarts: int = 2,
) -> BatchResult:
    """Run ``fn(task)`` for every task, isolating and retrying failures.

    ``fn`` and every task must be picklable (they cross a process
    boundary).  ``max_workers=None`` sizes the pool to
    ``min(n_tasks, cpu_count)``; ``<= 1`` runs serially in-process with
    identical retry/failure semantics (``task_timeout`` is advisory only
    on the serial path — there is no worker to abandon).  ``on_result``
    fires in *completion* order as each task succeeds; use it to record
    durable progress (e.g. a run manifest) so a killed batch can resume.
    """
    tasks = list(tasks)
    n = len(tasks)
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1 or None, got {max_workers}")
    if task_timeout is not None and task_timeout <= 0:
        raise ConfigurationError(
            f"task_timeout must be positive, got {task_timeout}")
    if max_pool_restarts < 0:
        raise ConfigurationError(
            f"max_pool_restarts must be >= 0, got {max_pool_restarts}")

    results: list = [None] * n
    failures: list[TaskFailure] = []
    attempts = [0] * n
    batch = BatchResult(results=results, failures=failures,
                        attempts=attempts)
    if n == 0:
        return batch

    if max_workers is None:
        import os

        max_workers = min(n, os.cpu_count() or 1)
    workers = min(max_workers, n)
    obs = get_telemetry()
    # Contextvars don't cross the process boundary: freeze the active
    # query context (if any) into a picklable wrapper so worker sidecar
    # spans carry the same query_id as the submitting round.
    fn = carry_context(fn)

    with obs.span("reliability.batch", tasks=n, workers=workers) as sp:
        incomplete = set(range(n))
        if workers <= 1:
            _run_serial(fn, tasks, sorted(incomplete), retry, batch,
                        on_result)
            incomplete.clear()

        while incomplete:
            try:
                pool = ProcessPoolExecutor(max_workers=workers)
            except _POOL_UNAVAILABLE as exc:
                warnings.warn(
                    f"process pool unavailable ({exc!r}); running "
                    f"{len(incomplete)} task(s) serially",
                    RuntimeWarning, stacklevel=2)
                _run_serial(fn, tasks, sorted(incomplete), retry, batch,
                            on_result)
                incomplete.clear()
                break
            broken = _drain_pool(fn, tasks, incomplete, pool, retry,
                                 task_timeout, batch, on_result)
            if broken is not None:
                batch.pool_restarts += 1
                obs.counter("reliability.pool.restarts").inc()
                obs.event("reliability.pool_broken", level="warning",
                          restart=batch.pool_restarts,
                          incomplete=len(incomplete))
                if batch.pool_restarts > max_pool_restarts:
                    for idx in sorted(incomplete):
                        failures.append(TaskFailure.from_exception(
                            idx, tasks[idx], broken, attempts[idx]))
                        obs.counter("reliability.task.failures").inc(
                            reason=type(broken).__name__)
                    incomplete.clear()

        failures.sort(key=lambda f: f.index)
        if sp is not None:
            sp.set(failed=len(failures),
                   pool_restarts=batch.pool_restarts)
    # Workers traced into per-pid sidecar files; fold them in now that
    # the pool has joined (no-op without a trace writer).
    obs.merge_worker_traces()
    if strict:
        batch.raise_if_failed()
    return batch


def _drain_pool(fn, tasks, incomplete, pool, retry, task_timeout, batch,
                on_result) -> BaseException | None:
    """One pool's lifetime: submit every incomplete task, drain futures.

    Returns the ``BrokenExecutor`` if the pool died (leaving the
    affected tasks in ``incomplete`` with their attempt refunded — pool
    death says nothing about the task itself), else ``None``.
    """
    attempts, failures, results = (batch.attempts, batch.failures,
                                   batch.results)
    pending: dict = {}    # future -> task index
    deadlines: dict = {}  # future -> monotonic deadline

    def submit(idx: int) -> None:
        fut = pool.submit(fn, tasks[idx])
        attempts[idx] += 1
        pending[fut] = idx
        if task_timeout is not None:
            deadlines[fut] = time.monotonic() + task_timeout

    broken: BaseException | None = None
    abandoned = False
    try:
        try:
            for idx in sorted(incomplete):
                submit(idx)
            while pending:
                wait_for = None
                if deadlines:
                    wait_for = max(
                        0.0, min(deadlines.values()) - time.monotonic())
                done, _ = wait(pending, timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                for fut in done:
                    idx = pending.pop(fut)
                    deadlines.pop(fut, None)
                    exc = fut.exception()
                    if exc is None:
                        results[idx] = fut.result()
                        incomplete.discard(idx)
                        if on_result is not None:
                            on_result(idx, results[idx])
                    elif isinstance(exc, BrokenExecutor):
                        attempts[idx] -= 1  # the task itself never ran out
                        broken = exc
                    elif (retry is not None and retry.is_retryable(exc)
                          and attempts[idx] < retry.max_attempts):
                        get_telemetry().counter(
                            "reliability.task.retries").inc(
                                reason=type(exc).__name__)
                        time.sleep(retry.delay(attempts[idx], key=str(idx)))
                        submit(idx)
                    else:
                        failures.append(TaskFailure.from_exception(
                            idx, tasks[idx], exc, attempts[idx]))
                        get_telemetry().counter(
                            "reliability.task.failures").inc(
                                reason=type(exc).__name__)
                        incomplete.discard(idx)
                if broken is not None:
                    break
                now = time.monotonic()
                for fut in [f for f, dl in deadlines.items() if dl <= now]:
                    idx = pending.pop(fut)
                    del deadlines[fut]
                    fut.cancel()
                    abandoned = True
                    exc = TaskTimeoutError(
                        f"task {idx} exceeded its {task_timeout:.3g}s "
                        f"wall-clock budget")
                    failures.append(TaskFailure.from_exception(
                        idx, tasks[idx], exc, attempts[idx]))
                    get_telemetry().counter(
                        "reliability.task.timeouts").inc()
                    incomplete.discard(idx)
        except BrokenExecutor as exc:  # raised by submit() on a dead pool
            broken = exc
        if broken is not None:
            for idx in pending.values():
                attempts[idx] -= 1
    finally:
        # Never block on stragglers (timed-out or poisoned workers).
        pool.shutdown(wait=broken is None and not abandoned,
                      cancel_futures=True)
    return broken


def _run_serial(fn, tasks, indices, retry, batch, on_result) -> None:
    """In-process execution with the same retry/failure bookkeeping."""
    attempts, failures, results = (batch.attempts, batch.failures,
                                   batch.results)
    for idx in indices:
        while True:
            attempts[idx] += 1
            try:
                value = fn(tasks[idx])
            except Exception as exc:
                if (retry is not None and retry.is_retryable(exc)
                        and attempts[idx] < retry.max_attempts):
                    get_telemetry().counter(
                        "reliability.task.retries").inc(
                            reason=type(exc).__name__)
                    time.sleep(retry.delay(attempts[idx], key=str(idx)))
                    continue
                failures.append(TaskFailure.from_exception(
                    idx, tasks[idx], exc, attempts[idx]))
                get_telemetry().counter("reliability.task.failures").inc(
                    reason=type(exc).__name__)
                break
            else:
                results[idx] = value
                if on_result is not None:
                    on_result(idx, value)
                break
