"""Failure model for the ingestion and caching layers.

Production surveillance-retrieval systems treat per-clip failure as
routine: one bad camera feed, one OOM-killed worker, or one truncated
cache blob must never abort a whole sweep or poison later runs.  This
package is the system-level counterpart to the *statistical* robustness
already modeled in :mod:`repro.eval.robustness`:

* :class:`RetryPolicy` — bounded attempts, exponential backoff,
  deterministically-seeded jitter (reproducible schedules);
* :func:`run_tasks` / :class:`BatchResult` / :class:`TaskFailure` —
  per-future batch execution that isolates worker failures, restarts a
  broken pool without discarding completed results, and enforces
  per-task wall-clock timeouts;
* :class:`RunManifest` / :func:`task_fingerprint` — durable, atomic
  sweep progress so a killed multi-seed run resumes where it died;
* :class:`FaultPlan` / :class:`FaultInjector` — seeded deterministic
  chaos injection over the storage seams (artifact store, shard
  loaders, SQLite catalog), driving the ``tests/chaos`` suite.

The error taxonomy lives in :mod:`repro.errors`
(:class:`~repro.errors.RetryableError`,
:class:`~repro.errors.IntegrityError`,
:class:`~repro.errors.TaskTimeoutError`); the self-healing store that
raises them is :class:`~repro.pipeline.store.DiskArtifactStore`.
"""

from repro.reliability.manifest import RunManifest, task_fingerprint
from repro.reliability.retry import RetryPolicy
from repro.reliability.tasks import BatchResult, TaskFailure, run_tasks

_FAULT_NAMES = ("FaultRule", "FaultPlan", "FaultInjector")


def __getattr__(name):
    # The chaos layer is re-exported lazily: faults.py needs the
    # pipeline's ArtifactStore, but repro.core.sharded imports this
    # package for RetryPolicy while the pipeline/events packages are
    # still initializing — an eager import here closes that cycle.
    if name in _FAULT_NAMES:
        from repro.reliability import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "BatchResult",
    "run_tasks",
    "RunManifest",
    "task_fingerprint",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
]
