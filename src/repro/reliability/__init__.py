"""Failure model for the ingestion and caching layers.

Production surveillance-retrieval systems treat per-clip failure as
routine: one bad camera feed, one OOM-killed worker, or one truncated
cache blob must never abort a whole sweep or poison later runs.  This
package is the system-level counterpart to the *statistical* robustness
already modeled in :mod:`repro.eval.robustness`:

* :class:`RetryPolicy` — bounded attempts, exponential backoff,
  deterministically-seeded jitter (reproducible schedules);
* :func:`run_tasks` / :class:`BatchResult` / :class:`TaskFailure` —
  per-future batch execution that isolates worker failures, restarts a
  broken pool without discarding completed results, and enforces
  per-task wall-clock timeouts;
* :class:`RunManifest` / :func:`task_fingerprint` — durable, atomic
  sweep progress so a killed multi-seed run resumes where it died.

The error taxonomy lives in :mod:`repro.errors`
(:class:`~repro.errors.RetryableError`,
:class:`~repro.errors.IntegrityError`,
:class:`~repro.errors.TaskTimeoutError`); the self-healing store that
raises them is :class:`~repro.pipeline.store.DiskArtifactStore`.
"""

from repro.reliability.manifest import RunManifest, task_fingerprint
from repro.reliability.retry import RetryPolicy
from repro.reliability.tasks import BatchResult, TaskFailure, run_tasks

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "BatchResult",
    "run_tasks",
    "RunManifest",
    "task_fingerprint",
]
