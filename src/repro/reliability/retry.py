"""Bounded retries with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is a frozen value object: given a task key and an
attempt number it always produces the same delay, because the jitter is
drawn from a hash of ``(policy.seed, key, attempt)`` rather than from
global randomness.  Two consequences the rest of the reliability layer
relies on:

* tests that exercise retry schedules are exactly reproducible, and
* concurrent tasks with different keys de-synchronise their retries
  (no thundering herd) without sharing any mutable RNG state.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError, RetryableError
from repro.obs import get_telemetry

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failing task, and how long to wait.

    ``max_attempts`` counts total executions (1 = no retries).  The
    delay before attempt ``n+1`` is ``base_delay * backoff**(n-1)``,
    capped at ``max_delay``, then stretched by a deterministic jitter
    factor in ``[1, 1 + jitter]`` derived from ``(seed, key, n)``.
    Only exceptions matching ``retry_on`` are retried; anything else is
    treated as deterministic and fails immediately.

    ``clock`` is the monotonic time source the policy measures its own
    backoff with (telemetry: ``reliability.retry.backoff_ms``); inject a
    fake alongside ``sleep`` to test schedules without real waiting.  It
    is excluded from equality/hashing — two policies with the same
    schedule are the same policy.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (RetryableError, OSError)
    clock: Callable[[], float] = field(default=time.monotonic,
                                       repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff}")
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter}")

    # ---------------------------------------------------------- schedule
    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient under this policy."""
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(
                f"attempt is 1-based, got {attempt}")
        base = min(self.base_delay * self.backoff ** (attempt - 1),
                   self.max_delay)
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * unit)

    def delays(self, key: str = "") -> list[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay(n, key=key)
                for n in range(1, self.max_attempts)]

    # --------------------------------------------------------------- run
    def run(self, fn, *args, key: str = "", sleep=time.sleep, **kwargs):
        """Call ``fn(*args, **kwargs)`` under this policy.

        Retries transient failures (per :meth:`is_retryable`) with the
        deterministic backoff schedule, re-raising the last error once
        attempts are exhausted.  ``sleep`` is injectable for tests; the
        actual time slept is measured with :attr:`clock` and recorded as
        ``reliability.retry.backoff_ms`` (with each scheduled retry
        counted under ``reliability.task.retries{reason=}``).
        """
        obs = get_telemetry()
        waited = 0.0
        try:
            for attempt in range(1, self.max_attempts + 1):
                try:
                    return fn(*args, **kwargs)
                except BaseException as exc:
                    if (attempt >= self.max_attempts
                            or not self.is_retryable(exc)):
                        raise
                    obs.counter("reliability.task.retries").inc(
                        reason=type(exc).__name__)
                    before = self.clock()
                    sleep(self.delay(attempt, key=key))
                    waited += self.clock() - before
        finally:
            if waited:
                obs.histogram("reliability.retry.backoff_ms").observe(
                    waited * 1000.0)
