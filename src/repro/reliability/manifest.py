"""Durable progress for multi-clip sweeps: the run manifest.

A :class:`RunManifest` is a small JSON file with one entry per
*completed* ``(scenario, seed, fingerprint)`` ingestion task.  The
coordinator marks a task done the moment its result lands (via the
``on_result`` hook of :func:`~repro.reliability.tasks.run_tasks`), and
every write is atomic (tmp + ``os.replace``), so a sweep killed at any
instant leaves either a valid manifest or the previous valid manifest —
never a torn one.  On restart, tasks already in the manifest are served
by replaying the shared artifact store instead of re-ingesting.

The fingerprint covers the complete task recipe (scenario, seed, sim
and build kwargs) but *not* the store location: it identifies the
computation, not where its artifacts happen to live.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path

__all__ = ["RunManifest", "task_fingerprint"]

_VERSION = 1


def task_fingerprint(scenario: str, seed: int,
                     sim_kwargs: dict | None = None,
                     build_kwargs: dict | None = None) -> str:
    """Content address of one ingestion task's complete recipe."""
    spec = (scenario, int(seed),
            tuple(sorted((str(k), repr(v))
                         for k, v in (sim_kwargs or {}).items())),
            tuple(sorted((str(k), repr(v))
                         for k, v in (build_kwargs or {}).items())))
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()


class RunManifest:
    """Atomic JSON record of which sweep tasks have completed."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def resolve(cls, spec) -> "RunManifest | None":
        """Coerce a manifest spec: None -> None, path -> RunManifest."""
        if spec is None:
            return None
        if isinstance(spec, RunManifest):
            return spec
        return cls(spec)

    # ------------------------------------------------------------ state
    def entries(self) -> dict[str, dict]:
        """fingerprint -> completion record for every finished task."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return {}
        try:
            data = json.loads(raw)
            tasks = data["tasks"]
            if not isinstance(tasks, dict):
                raise TypeError("tasks must be an object")
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            # A manifest is an accelerator, not a source of truth:
            # an unreadable one means "resume nothing", not "crash".
            warnings.warn(
                f"ignoring unreadable run manifest {self.path} ({exc})",
                RuntimeWarning, stacklevel=2)
            return {}
        return tasks

    def is_done(self, fingerprint: str) -> bool:
        return fingerprint in self.entries()

    def __len__(self) -> int:
        return len(self.entries())

    # ---------------------------------------------------------- updates
    def mark_done(self, fingerprint: str, meta: dict | None = None) -> None:
        """Record one completed task (load, merge, atomic rewrite)."""
        tasks = self.entries()
        tasks[fingerprint] = dict(meta or {}, fingerprint=fingerprint)
        self._write(tasks)

    def discard(self, fingerprint: str) -> None:
        """Forget one task (forces it to re-run on the next resume)."""
        tasks = self.entries()
        if tasks.pop(fingerprint, None) is not None:
            self._write(tasks)

    def clear(self) -> None:
        """Forget all progress."""
        self._write({})

    def _write(self, tasks: dict[str, dict]) -> None:
        payload = json.dumps({"version": _VERSION, "tasks": tasks},
                             sort_keys=True, indent=1) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
