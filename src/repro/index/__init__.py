"""Vector indexes for sublinear candidate nomination.

The two-stage ranker (:mod:`repro.core.sharded`) nominates candidate
bags per shard before the exact one-class SVM rerank.  This package
holds the index structures that make nomination *query-adaptive and
sublinear*: instead of a static heuristic order, an
:class:`~repro.index.ivf.IVFIndex` partitions a shard's instance
vectors into k-means cells once at ingest and, at query time, probes
only the cells nearest the relevant bags' instances.

Everything is pure numpy — no FAISS, no sqlite extensions — and every
build is deterministic under its seed, so an index built by the
pipeline's Index stage at ingest is bit-identical to one built lazily
at query time from the same dataset.
"""

from repro.index.ivf import IVFIndex, build_index_for_dataset, kmeans_cells

__all__ = ["IVFIndex", "build_index_for_dataset", "kmeans_cells"]
