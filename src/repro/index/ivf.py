"""Pure-numpy IVF (inverted-file) index over instance feature vectors.

The classic coarse quantizer shape: k-means partitions the shard's raw
instance vectors into ``n_cells`` Voronoi cells; each cell keeps the
rows assigned to it (CSR layout: one permutation array + cell start
offsets).  A query probes the ``nprobe`` cells nearest to its vectors
and touches only the rows inside them, so nomination cost scales with
``n_cells + nprobe * rows_per_cell`` instead of the shard's bag count —
with ``n_cells ~ sqrt(n_rows)`` both terms are O(sqrt(n)).

Indexes are built on *raw* (unstandardized) features: they exist at
ingest time, before any query session has fit the corpus-wide scaler.
Nomination is approximate by design — the exact OCSVM rerank downstream
is what guarantees result quality — so the raw/standardized metric
mismatch costs only recall, never correctness.

Determinism contract: ``kmeans_cells`` draws every random choice from
``numpy.random.default_rng(seed)``, so the same ``(matrix, n_cells,
seed, iters)`` always yields bit-identical centroids and assignments.
That is what lets the pipeline's Index stage cache the structure
content-addressed while query sessions rebuild it lazily when no store
is around: both paths produce the same index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.utils import pairwise_sq_dists

__all__ = ["IVFIndex", "build_index_for_dataset", "kmeans_cells"]


def kmeans_cells(matrix: np.ndarray, n_cells: int, *, seed: int = 0,
                 iters: int = 15) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd k-means: ``(centroids (k, d), assignments (n,))``.

    ``n_cells`` is clamped to the row count (every cell needs at least a
    chance of a member).  Initial centroids are a seeded
    without-replacement row sample; a cell that loses all members keeps
    its previous centroid, so ``centroids`` never contains NaNs and cell
    ids stay stable across iterations.  Iteration stops early once the
    assignment vector is a fixed point.
    """
    if n_cells < 1:
        raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
    if iters < 1:
        raise ConfigurationError(f"iters must be >= 1, got {iters}")
    x = np.asarray(matrix, dtype=np.float64)
    n = len(x)
    k = min(int(n_cells), n)
    if n == 0:
        return np.empty((0, x.shape[1] if x.ndim == 2 else 0)), \
            np.empty(0, dtype=np.intp)
    rng = np.random.default_rng(seed)
    centroids = x[np.sort(rng.choice(n, size=k, replace=False))].copy()
    assignments = np.full(n, -1, dtype=np.intp)
    for _ in range(int(iters)):
        new_assignments = np.argmin(
            pairwise_sq_dists(x, centroids), axis=1).astype(np.intp)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        counts = np.bincount(assignments, minlength=k).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, x)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids, assignments


@dataclass(frozen=True)
class IVFIndex:
    """One shard's inverted-file structure, probe-ready.

    ``cell_rows[cell_starts[c]:cell_starts[c + 1]]`` are the instance
    rows of cell ``c``; ``row_bags`` maps each instance row to its bag
    position in the shard's layout order.  ``params`` is the build
    identity ``(n_cells, seed, iters)`` — callers use it to decide
    whether a prebuilt index can stand in for a requested configuration.
    """

    centroids: np.ndarray
    cell_starts: np.ndarray
    cell_rows: np.ndarray
    row_bags: np.ndarray
    n_bags: int
    params: tuple[int, int, int] = field(default=(0, 0, 0))

    @property
    def n_cells(self) -> int:
        return len(self.centroids)

    @property
    def n_rows(self) -> int:
        return len(self.cell_rows)

    @classmethod
    def build(cls, matrix: np.ndarray | None, row_bags: np.ndarray,
              n_bags: int, *, n_cells: int = 32, seed: int = 0,
              iters: int = 15) -> "IVFIndex":
        """Index a shard's ``(n_rows, d)`` raw instance matrix.

        ``matrix=None`` (a shard of empty bags) builds a zero-cell index
        whose probes nominate nothing.  ``row_bags`` must map every
        matrix row to its bag position.
        """
        params = (int(n_cells), int(seed), int(iters))
        row_bags = np.asarray(row_bags, dtype=np.intp)
        if matrix is None or len(matrix) == 0:
            return cls(centroids=np.empty((0, 0)),
                       cell_starts=np.zeros(1, dtype=np.intp),
                       cell_rows=np.empty(0, dtype=np.intp),
                       row_bags=row_bags, n_bags=int(n_bags),
                       params=params)
        if len(row_bags) != len(matrix):
            raise ConfigurationError(
                f"row_bags has {len(row_bags)} entries for "
                f"{len(matrix)} matrix rows")
        obs = get_telemetry()
        with obs.span("index.build", rows=len(matrix), cells=n_cells,
                      bags=int(n_bags)):
            centroids, assignments = kmeans_cells(
                matrix, n_cells, seed=seed, iters=iters)
            order = np.argsort(assignments, kind="stable").astype(np.intp)
            counts = np.bincount(assignments, minlength=len(centroids))
            starts = np.concatenate(
                ([0], np.cumsum(counts))).astype(np.intp)
        obs.counter("index.builds").inc()
        return cls(centroids=centroids, cell_starts=starts,
                   cell_rows=order, row_bags=row_bags,
                   n_bags=int(n_bags), params=params)

    # ------------------------------------------------------------ probe
    def nearest_cells(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Ids of the union of each query row's ``nprobe`` nearest cells."""
        if self.n_cells == 0 or len(queries) == 0:
            return np.empty(0, dtype=np.intp)
        nprobe = min(max(int(nprobe), 1), self.n_cells)
        dists = pairwise_sq_dists(np.atleast_2d(queries), self.centroids)
        if nprobe >= self.n_cells:
            return np.arange(self.n_cells, dtype=np.intp)
        near = np.argpartition(dists, nprobe - 1, axis=1)[:, :nprobe]
        return np.unique(near).astype(np.intp)

    def probe(self, queries: np.ndarray, nprobe: int
              ) -> tuple[np.ndarray, dict[str, int]]:
        """Bag positions touched by the ``nprobe`` cells nearest to any
        query vector, plus probe cost stats.

        Returns ``(bag_positions, stats)`` where ``stats`` counts
        ``cells_probed`` / ``rows_gathered`` / ``bags_nominated`` — the
        numbers the telemetry layer and benchmarks report.
        """
        cells = self.nearest_cells(queries, nprobe)
        if len(cells) == 0:
            return np.empty(0, dtype=np.intp), {
                "cells_probed": 0, "rows_gathered": 0, "bags_nominated": 0}
        spans = [self.cell_rows[self.cell_starts[c]:self.cell_starts[c + 1]]
                 for c in cells]
        rows = np.concatenate(spans) if spans else np.empty(0, dtype=np.intp)
        bags = np.unique(self.row_bags[rows])
        return bags.astype(np.intp), {
            "cells_probed": int(len(cells)),
            "rows_gathered": int(len(rows)),
            "bags_nominated": int(len(bags)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IVFIndex(cells={self.n_cells}, rows={self.n_rows}, "
                f"bags={self.n_bags})")


def build_index_for_dataset(dataset, *, n_cells: int = 32, seed: int = 0,
                            iters: int = 15) -> IVFIndex:
    """Build an :class:`IVFIndex` from a :class:`MILDataset`'s instances.

    Rows follow the dataset's bag-contiguous instance order — the same
    layout :class:`repro.core.sharded.CorpusShard` uses — so the index
    the pipeline stage persists and the one a shard builds lazily agree
    row for row.
    """
    instances = dataset.all_instances()
    sizes = np.array([b.n_instances for b in dataset.bags], dtype=np.intp)
    row_bags = np.repeat(np.arange(len(dataset.bags), dtype=np.intp), sizes)
    matrix = None
    if instances:
        matrix = np.ascontiguousarray(
            np.stack([inst.vector for inst in instances]), dtype=np.float64)
    return IVFIndex.build(matrix, row_bags, len(dataset.bags),
                          n_cells=n_cells, seed=seed, iters=iters)
