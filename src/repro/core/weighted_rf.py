"""Weighted relevance-feedback baseline (paper Section 6.2).

"The proposed framework is compared with the traditional weighted
relevance feedback method": the relevance score is a weighted square sum
of the (min-max normalized) features; after each round the weight of
feature ``f`` becomes the inverse of its standard deviation over the
feature vectors of all relevant Trajectory Sequences, and the weights are
re-normalized.  The paper tried three normalizations — none, linear to
[0, 1] and percentage-of-total — and found percentage best; all three are
implemented.
"""

from __future__ import annotations

import numpy as np

from repro.core.bags import MILDataset
from repro.core.base import RetrievalEngine
from repro.core.heuristics import instance_point_scores
from repro.errors import ConfigurationError

__all__ = ["WeightedRFEngine", "normalize_weights"]

_NORMALIZATIONS = ("percentage", "linear", "none")
_STD_FLOOR = 1e-6


def normalize_weights(weights: np.ndarray, method: str) -> np.ndarray:
    """Re-normalize raw inverse-std weights.

    ``percentage`` divides by the total (the paper's winner), ``linear``
    maps to [0, 1] (the paper notes a zero weight then permanently kills
    a feature), ``none`` leaves them raw.
    """
    weights = np.asarray(weights, dtype=float)
    if method == "none":
        return weights.copy()
    if method == "linear":
        span = weights.max() - weights.min()
        if span <= 0:
            return np.ones_like(weights)
        return (weights - weights.min()) / span
    if method == "percentage":
        total = weights.sum()
        if total <= 0:
            return np.full_like(weights, 1.0 / len(weights))
        return weights / total
    raise ConfigurationError(
        f"unknown normalization {method!r}; expected one of "
        f"{_NORMALIZATIONS}"
    )


class WeightedRFEngine(RetrievalEngine):
    """Query re-weighting RF: w_f = 1/std_f over relevant feature rows."""

    def __init__(self, dataset: MILDataset, *,
                 normalization: str = "percentage",
                 normalize_heuristic_features: bool = False) -> None:
        super().__init__(
            dataset,
            normalize_heuristic_features=normalize_heuristic_features,
        )
        if normalization not in _NORMALIZATIONS:
            raise ConfigurationError(
                f"unknown normalization {normalization!r}; expected one of "
                f"{_NORMALIZATIONS}"
            )
        self.normalization = normalization
        n_features = len(dataset.feature_names)
        # "The initial weights of the three features are all 1s."
        self.weights_ = np.ones(n_features)

    def _retrain(self) -> None:
        rows = [
            self._matrices[inst.instance_id]
            for bag_id in self.relevant_bag_ids
            for inst in self.dataset.bag_by_id(bag_id).instances
        ]
        if not rows:
            return
        stacked = np.vstack(rows)  # every sampling point of relevant TSs
        std = stacked.std(axis=0)
        raw = 1.0 / np.maximum(std, _STD_FLOOR)
        self.weights_ = normalize_weights(raw, self.normalization)

    def _instance_scores(self) -> dict[int, float]:
        scores: dict[int, float] = {}
        for inst in self.dataset.all_instances():
            points = instance_point_scores(
                self._matrices[inst.instance_id], self.weights_)
            scores[inst.instance_id] = float(points.max())
        return scores
