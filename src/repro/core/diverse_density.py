"""Diverse Density MIL baseline (Maron & Lozano-Perez, paper ref [6]).

The paper's literature review positions Diverse Density as the classic
MIL approach; we implement it as an extension baseline so the benchmark
can compare the One-class-SVM engine against it.  A hypothesis is a
target concept point ``t`` and per-dimension scales ``s``; an instance's
probability of being the concept is

    p(x) = exp(-sum_d s_d^2 (x_d - t_d)^2)

and bag probabilities combine instances with the noisy-OR model.  The
negative log likelihood is minimized by gradient descent (L-BFGS-B) from
multiple starting points taken at instances of positive bags, as in the
original two-step scheme.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.core.bags import MILDataset
from repro.core.base import RetrievalEngine
from repro.errors import ConfigurationError
from repro.svm.scaling import StandardScaler
from repro.utils import check_positive

__all__ = ["DiverseDensityEngine", "dd_instance_prob", "dd_negative_log_likelihood"]

_PROB_EPS = 1e-10


def dd_instance_prob(x: np.ndarray, target: np.ndarray,
                     scales: np.ndarray) -> np.ndarray:
    """p(instance is the concept) for rows of ``x``."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    diff = x - np.asarray(target, dtype=float)
    return np.exp(-np.sum((np.asarray(scales) ** 2) * diff * diff, axis=1))


def dd_negative_log_likelihood(
    params: np.ndarray,
    positive_bags: list[np.ndarray],
    negative_bags: list[np.ndarray],
) -> float:
    """Noisy-OR DD objective over bag instance matrices."""
    d = len(params) // 2
    target, scales = params[:d], params[d:]
    nll = 0.0
    for bag in positive_bags:
        p = dd_instance_prob(bag, target, scales)
        prob = 1.0 - np.prod(1.0 - p)
        nll -= np.log(max(prob, _PROB_EPS))
    for bag in negative_bags:
        p = dd_instance_prob(bag, target, scales)
        prob = np.prod(1.0 - p)
        nll -= np.log(max(prob, _PROB_EPS))
    return float(nll)


class DiverseDensityEngine(RetrievalEngine):
    """Interactive retrieval ranked by Diverse Density instance probability.

    Relevant bags from feedback are the positive bags, irrelevant ones
    the negative bags; before any feedback the heuristic ranking applies
    (as for every engine).
    """

    def __init__(self, dataset: MILDataset, *, max_starts: int = 8,
                 max_iter: int = 200) -> None:
        super().__init__(dataset)
        check_positive("max_starts", max_starts)
        check_positive("max_iter", max_iter)
        self.max_starts = int(max_starts)
        self.max_iter = int(max_iter)
        self._scaler = StandardScaler()
        vectors = np.stack(
            [inst.vector for inst in dataset.all_instances()]
        )
        self._scaler.fit(vectors)
        self._ids = [inst.instance_id for inst in dataset.all_instances()]
        self._X = self._scaler.transform(vectors)
        self._by_id = dict(zip(self._ids, self._X))
        self.hypothesis_: tuple[np.ndarray, np.ndarray] | None = None
        self.nll_: float | None = None

    @property
    def is_trained(self) -> bool:
        return self.hypothesis_ is not None

    def _bag_matrices(self, bag_ids: list[int]) -> list[np.ndarray]:
        out = []
        for bag_id in bag_ids:
            bag = self.dataset.bag_by_id(bag_id)
            if bag.instances:
                out.append(np.stack(
                    [self._by_id[i.instance_id] for i in bag.instances]
                ))
        return out

    def _starting_points(self, positive_bags: list[np.ndarray]) -> np.ndarray:
        instances = np.vstack(positive_bags)
        if len(instances) <= self.max_starts:
            return instances
        # Deterministic spread: every k-th instance by heuristic order.
        idx = np.linspace(0, len(instances) - 1, self.max_starts)
        return instances[idx.round().astype(int)]

    def _retrain(self) -> None:
        positive = self._bag_matrices(self.relevant_bag_ids)
        negative = self._bag_matrices(self.irrelevant_bag_ids)
        if not positive:
            self.hypothesis_ = None
            return
        d = positive[0].shape[1]
        best_nll, best_params = np.inf, None
        for start in self._starting_points(positive):
            params0 = np.concatenate([start, np.full(d, 0.7)])
            result = minimize(
                dd_negative_log_likelihood,
                params0,
                args=(positive, negative),
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            if result.fun < best_nll:
                best_nll, best_params = float(result.fun), result.x
        if best_params is None:  # pragma: no cover - optimizer always returns
            raise ConfigurationError("diverse density failed to optimize")
        self.hypothesis_ = (best_params[:d], best_params[d:])
        self.nll_ = best_nll

    def _instance_scores(self) -> dict[int, float]:
        assert self.hypothesis_ is not None
        target, scales = self.hypothesis_
        probs = dd_instance_prob(self._X, target, scales)
        return dict(zip(self._ids, probs.astype(float)))
