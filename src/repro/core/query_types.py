"""Query types beyond "query by event name" (paper Section 7).

"Currently, the framework only supports the user's query by specified
event types.  We will extend this to include query by example, query by
sketches, and allow a customized combination of different query types."

Implemented here:

* :class:`ExampleQueryEngine` — the user supplies one or more example
  Trajectory Sequences (e.g. from a clip they already found); the
  *initial* round ranks by kernel similarity to the examples instead of
  the generic square-sum heuristic.  Feedback rounds then proceed exactly
  as in the base engine.
* :func:`sketch_to_example` — the user sketches a trajectory as a
  polyline with implied timing (one point per frame); it is converted
  through the standard feature extractor into an example TS vector, so a
  sketch query is an example query.
* :class:`CombinedQueryEngine` — a weighted mixture of initial rankings
  (event heuristic + any number of example sets), the paper's
  "customized combination of different query types".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bags import MILDataset
from repro.core.engine import MILRetrievalEngine
from repro.errors import ConfigurationError
from repro.events.features import SamplingConfig, extract_series
from repro.events.models import EventModel
from repro.tracking.track import Track
from repro.utils import pairwise_sq_dists
from repro.vision.blobs import Blob

__all__ = [
    "similarity_scores",
    "ExampleQueryEngine",
    "sketch_to_example",
    "CombinedQueryEngine",
]


def _as_matrix(vectors, dim: int) -> np.ndarray:
    matrix = np.atleast_2d(np.asarray(vectors, dtype=float))
    if matrix.shape[1] != dim:
        raise ConfigurationError(
            f"example vectors have {matrix.shape[1]} features, dataset "
            f"instances have {dim}"
        )
    return matrix


def similarity_scores(
    dataset: MILDataset,
    example_vectors,
    *,
    scaler=None,
    gamma: float | None = None,
) -> tuple[np.ndarray, dict[int, float]]:
    """RBF similarity of every instance to its nearest example.

    Returns ``(bag_scores, instance_scores)`` in the same layout the
    heuristic produces, so the result can replace the initial ranking.
    """
    instances = dataset.all_instances()
    if not instances:
        raise ConfigurationError("dataset has no instances to score")
    x = np.stack([inst.vector for inst in instances])
    examples = _as_matrix(example_vectors, x.shape[1])
    if scaler is not None:
        x = scaler.transform(x)
        examples = scaler.transform(examples)
    if gamma is None:
        gamma = 1.0 / x.shape[1]
    sims = np.exp(-gamma * pairwise_sq_dists(x, examples)).max(axis=1)
    instance_scores = {
        inst.instance_id: float(s) for inst, s in zip(instances, sims)
    }
    bag_scores = np.full(len(dataset.bags), -np.inf)
    for b, bag in enumerate(dataset.bags):
        for inst in bag.instances:
            bag_scores[b] = max(bag_scores[b],
                                instance_scores[inst.instance_id])
    return bag_scores, instance_scores


class ExampleQueryEngine(MILRetrievalEngine):
    """MIL retrieval whose initial round is query-by-example.

    ``examples`` is a sequence of TS vectors (flattened window x feature
    matrices) — e.g. ``instance.vector`` of hits from a previous session,
    or the output of :func:`sketch_to_example`.

    ``use_scaler`` controls the similarity space: dataset-standardized
    (default, right for examples taken from real instances) or raw
    feature units (right for sketch-derived examples, which carry no
    inter-vehicle-distance context and would be pushed away from real
    events by standardization).
    """

    def __init__(self, dataset: MILDataset, examples, *,
                 use_scaler: bool = True, **kwargs) -> None:
        super().__init__(dataset, **kwargs)
        bag_scores, instance_scores = similarity_scores(
            dataset, examples,
            scaler=self._scaler if use_scaler else None)
        self._heuristic_bag_scores = bag_scores
        self._heuristic_instance_scores = instance_scores
        # The per-bag training order follows the (replaced) initial scores.
        self._rebuild_bag_rankings()


def sketch_to_example(
    points: np.ndarray,
    model: EventModel,
    *,
    config: SamplingConfig | None = None,
    window_size: int = 3,
) -> np.ndarray:
    """Convert a sketched trajectory into an example TS vector.

    ``points`` is an (n, 2) polyline with one point per frame (the user
    sketches both shape and speed).  The sketch is run through the exact
    feature extractor used for real tracks, and the ``window_size``-
    checkpoint window with the strongest activity becomes the example.
    Distance-based channels (``inv_mdist``) are zero for a lone sketch.
    """
    cfg = config or SamplingConfig()
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    min_frames = cfg.sampling_rate * (window_size + 2)
    if len(points) < min_frames:
        raise ConfigurationError(
            f"sketch too short: needs >= {min_frames} points at one point "
            f"per frame, got {len(points)}"
        )
    track = Track(-1)
    for frame, (x, y) in enumerate(points):
        blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 4, y0=int(y) - 3,
                    x1=int(x) + 4, y1=int(y) + 3, area=48,
                    mean_intensity=200.0)
        track.add(frame, blob)
    series = extract_series([track], cfg)
    if not series:
        raise ConfigurationError("sketch produced no checkpoints")
    matrix = model.feature_matrix(series[0])
    if len(matrix) < window_size:
        raise ConfigurationError(
            f"sketch covers only {len(matrix)} checkpoints; window needs "
            f"{window_size}"
        )
    activity = (matrix ** 2).sum(axis=1)
    windows = np.array([
        activity[i : i + window_size].sum()
        for i in range(len(matrix) - window_size + 1)
    ])
    start = int(np.argmax(windows))
    return matrix[start : start + window_size].ravel()


class CombinedQueryEngine(MILRetrievalEngine):
    """Weighted combination of query types for the initial round.

    ``components`` is a sequence of ``(kind, payload, weight)`` with kind
    ``"heuristic"`` (payload ignored) or ``"examples"`` (payload = TS
    vectors).  Scores of each component are min-max normalized before the
    weighted sum so weights are comparable.
    """

    def __init__(self, dataset: MILDataset,
                 components: Sequence[tuple], **kwargs) -> None:
        super().__init__(dataset, **kwargs)
        if not components:
            raise ConfigurationError("need >= 1 query component")
        total_bag = np.zeros(len(dataset.bags))
        total_inst = {i.instance_id: 0.0 for i in dataset.all_instances()}
        weight_sum = 0.0
        for kind, payload, weight in components:
            if weight < 0:
                raise ConfigurationError("component weights must be >= 0")
            if kind == "heuristic":
                bag_scores = self._heuristic_bag_scores.copy()
                inst_scores = dict(self._heuristic_instance_scores)
            elif kind == "examples":
                bag_scores, inst_scores = similarity_scores(
                    dataset, payload, scaler=self._scaler)
            else:
                raise ConfigurationError(
                    f"unknown query component kind {kind!r}"
                )
            bag_scores = _unit_scale(bag_scores)
            inst_values = _unit_scale(np.array(list(inst_scores.values())))
            inst_scores = dict(zip(inst_scores.keys(), inst_values))
            total_bag += weight * bag_scores
            for key, value in inst_scores.items():
                total_inst[key] += weight * value
            weight_sum += weight
        if weight_sum <= 0:
            raise ConfigurationError("total component weight must be > 0")
        self._heuristic_bag_scores = total_bag / weight_sum
        self._heuristic_instance_scores = {
            k: v / weight_sum for k, v in total_inst.items()
        }
        self._rebuild_bag_rankings()


def _unit_scale(values: np.ndarray) -> np.ndarray:
    """Min-max scale finite values to [0, 1] (-inf stays worst)."""
    values = np.asarray(values, dtype=float)
    finite = np.isfinite(values)
    if not finite.any():
        return np.zeros_like(values)
    lo, hi = values[finite].min(), values[finite].max()
    span = hi - lo
    out = np.zeros_like(values)
    out[finite] = (values[finite] - lo) / span if span > 0 else 0.5
    return out
