"""Sharded retrieval corpus: per-clip shards + two-stage pruned ranking.

The paper's end state is retrieval over a whole surveillance *database*
("ideally, all the video clips in a transportation surveillance video
database shall be mined and retrieved as a whole", Section 6.2).  The
merged-dataset path (:func:`repro.core.bags.merge_datasets`) gets the
semantics right but materializes every clip into one monolithic
:class:`~repro.core.bags.MILDataset` and scores every instance with the
one-class SVM each feedback round — linear round latency in corpus size.

This module keeps the corpus sharded per clip and ranks in two stages,
the coarse-to-fine shape of progressive surveillance search systems:

1. a cheap **heuristic prefilter** (the paper's Section 5.3 square-sum
   scores, precomputed per shard) nominates the top-M candidate bags of
   every shard;
2. the **exact one-class SVM** scores only the candidate instances —
   full shards go through the per-shard
   :class:`~repro.svm.gram_cache.GramCache` so warm rounds reuse kernel
   columns, pruned shards evaluate one small kernel block;
3. per-shard rankings are **k-way merged** lazily under the global
   deterministic order (score descending, bag id ascending — exactly
   the monolithic engine's tie-break), with pruned bags appended after
   all candidates in heuristic order.

Global bag/instance ids replicate ``merge_datasets``' positional
renumbering, so with pruning disabled (``candidates_per_shard=None``)
the ranking reproduces the monolithic engine's, round for round.

The corpus layer is database-agnostic: a :class:`ShardSpec` carries a
zero-argument ``loader`` callback, so :mod:`repro.db` can hand out
lazily-loading specs without this module importing the storage layer.
"""

from __future__ import annotations

import heapq
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.core.bags import Bag, Instance, MILDataset
from repro.core.engine import _parse_policy
from repro.core.heuristics import heuristic_scores
from repro.errors import (
    ConfigurationError,
    ShardUnavailableError,
    StorageError,
)
from repro.index.ivf import IVFIndex
from repro.obs import get_telemetry
from repro.reliability.retry import RetryPolicy
from repro.svm.gram_cache import GramCache
from repro.svm.kernels import Kernel, RBFKernel
from repro.svm.one_class import OneClassSVM
from repro.svm.scaling import StandardScaler
from repro.utils import check_in_range, row_sq_norms

__all__ = ["ShardSpec", "CorpusShard", "ShardedCorpus", "CorpusPool",
           "ShardedRetrievalEngine", "HeuristicNominator", "IVFNominator",
           "ShardOutage", "CoverageReport"]


@dataclass(frozen=True)
class ShardSpec:
    """One clip's slot in a sharded corpus, loadable on demand.

    ``n_bags`` / ``n_instances`` come from the catalog (no bulk-array
    read) and fix the shard's global id range up front; ``loader``
    returns the clip's :class:`MILDataset` with *local* ids when the
    shard is actually needed.  The loaded counts are validated against
    the spec, so a stale catalog fails loudly instead of silently
    shifting every later shard's ids.
    """

    clip_id: str
    n_bags: int
    n_instances: int
    loader: Callable[[], MILDataset] = field(compare=False)
    # Optional loader for a prebuilt IVF index (e.g. the pipeline's
    # Index stage artifact).  Consulted by CorpusShard.ivf_index(); a
    # prebuilt index whose params don't match the request is ignored
    # and the shard falls back to building one lazily.
    index_loader: Callable[[], IVFIndex] | None = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_bags < 0 or self.n_instances < 0:
            raise ConfigurationError(
                f"shard {self.clip_id!r}: negative bag/instance count"
            )


class CorpusShard:
    """One loaded shard: renumbered bags + precomputed ranking arrays.

    Renumbering replicates :func:`merge_datasets` positionally — global
    bag id = ``bag_offset`` + position, global instance id =
    ``instance_offset`` + bag-contiguous row — so shard-local arrays
    translate to global ids by offset arithmetic alone.

    ``matrix`` (the standardized instance matrix) and ``gram_cache``
    stay ``None`` until the engine fits its global scaler; the heuristic
    prefilter only needs the raw features.
    """

    def __init__(self, spec: ShardSpec, bag_offset: int,
                 instance_offset: int, *, metadata_version: int = 0) -> None:
        local = spec.loader()
        if (len(local.bags) != spec.n_bags
                or local.n_instances != spec.n_instances):
            raise ConfigurationError(
                f"shard {spec.clip_id!r}: loader returned "
                f"{len(local.bags)} bags / {local.n_instances} instances, "
                f"spec declares {spec.n_bags} / {spec.n_instances}"
            )
        self.clip_id = spec.clip_id
        self.spec = spec
        self.metadata_version = int(metadata_version)
        self.bag_offset = int(bag_offset)
        self.instance_offset = int(instance_offset)
        self.dataset = self._renumber(local)
        self.n_bags = len(self.dataset.bags)
        self.n_instances = self.dataset.n_instances

        instances = self.dataset.all_instances()
        self.matrix_raw: np.ndarray | None = None
        if instances:
            self.matrix_raw = np.ascontiguousarray(
                np.stack([inst.vector for inst in instances]),
                dtype=np.float64)
        self.matrix: np.ndarray | None = None
        self.gram_cache: GramCache | None = None

        bag_scores, inst_scores = heuristic_scores(self.dataset)
        self.heuristic_bags = bag_scores
        self.heuristic_instances = np.array(
            [inst_scores[inst.instance_id] for inst in instances])
        self.bag_ranked_ids = {
            bag.bag_id: tuple(
                inst.instance_id
                for inst in sorted(bag.instances,
                                   key=lambda i: inst_scores[i.instance_id],
                                   reverse=True)
            )
            for bag in self.dataset.bags
        }
        self.bag_sizes = np.array([b.n_instances for b in self.dataset.bags])
        self.bag_starts = np.concatenate(
            ([0], np.cumsum(self.bag_sizes)))[:-1].astype(int)
        self._heuristic_order: np.ndarray | None = None
        self._heuristic_rank: np.ndarray | None = None
        # candidate_positions memo: m (or None) -> positions.  All
        # caches below die with the shard object, so a corpus reload
        # (new metadata_version) can never serve stale prefixes.
        self._candidate_cache: dict[int | None, np.ndarray] = {}
        self.heuristic_order_computes = 0
        self._ivf_indexes: dict[tuple[int, int, int], IVFIndex] = {}
        #: Serializes engine access to this shard's mutable ranking
        #: state (standardized matrix, Gram cache fills + cross reads)
        #: when several sessions share one corpus.  The engine holds it
        #: across ensure_vectors + cross so the pair stays atomic.
        self.lock = threading.RLock()

    def _renumber(self, local: MILDataset) -> MILDataset:
        out = MILDataset(
            clip_id=local.clip_id,
            event_name=local.event_name,
            feature_names=local.feature_names,
            window_size=local.window_size,
            sampling_rate=local.sampling_rate,
        )
        next_bag = self.bag_offset
        next_inst = self.instance_offset
        for bag in local.bags:
            instances = []
            for inst in bag.instances:
                instances.append(Instance(
                    instance_id=next_inst, bag_id=next_bag,
                    track_id=inst.track_id, matrix=inst.matrix,
                ))
                next_inst += 1
            out.bags.append(Bag(
                bag_id=next_bag, clip_id=bag.clip_id,
                frame_lo=bag.frame_lo, frame_hi=bag.frame_hi,
                instances=tuple(instances),
            ))
            next_bag += 1
        return out

    @property
    def heuristic_order(self) -> np.ndarray:
        """Bag positions sorted by the global order (heuristic desc,
        bag id asc) — the prefilter's nomination order."""
        if self._heuristic_order is None:
            global_ids = self.bag_offset + np.arange(self.n_bags)
            self._heuristic_order = np.lexsort(
                (global_ids, -self.heuristic_bags))
            self.heuristic_order_computes += 1
        return self._heuristic_order

    @property
    def heuristic_rank(self) -> np.ndarray:
        """Inverse permutation of :attr:`heuristic_order`: position ->
        rank in the prefilter's nomination order."""
        if self._heuristic_rank is None:
            order = self.heuristic_order
            rank = np.empty(len(order), dtype=np.intp)
            rank[order] = np.arange(len(order), dtype=np.intp)
            self._heuristic_rank = rank
        return self._heuristic_rank

    def candidate_positions(self, m: int | None) -> np.ndarray:
        """Top-``m`` bag positions by heuristic score (all if ``m`` is
        ``None`` or >= the shard's bag count).

        Memoized per ``m`` for the life of this shard object — the
        engine asks for the same prefix every round, and the answer only
        changes when the shard's data does (which builds a fresh
        ``CorpusShard`` with a bumped ``metadata_version``).
        """
        cached = self._candidate_cache.get(m)
        if cached is not None:
            return cached
        order = self.heuristic_order
        positions = order if m is None or m >= len(order) else order[:m]
        self._candidate_cache[m] = positions
        return positions

    def ivf_index(self, *, n_cells: int = 32, seed: int = 0,
                  iters: int = 15) -> IVFIndex:
        """The shard's IVF index for these build params.

        A prebuilt index from ``spec.index_loader`` (the pipeline's
        Index stage artifact) is used when its params match; otherwise
        the index is built lazily from ``matrix_raw`` and memoized.
        Both paths are bit-identical for equal params (seeded k-means).
        """
        params = (int(n_cells), int(seed), int(iters))
        cached = self._ivf_indexes.get(params)
        if cached is not None:
            return cached
        index: IVFIndex | None = None
        if self.spec.index_loader is not None:
            prebuilt = self.spec.index_loader()
            if prebuilt is not None and prebuilt.params == params:
                index = prebuilt
        if index is None:
            sizes = self.bag_sizes.astype(np.intp)
            row_bags = np.repeat(
                np.arange(self.n_bags, dtype=np.intp), sizes)
            index = IVFIndex.build(
                self.matrix_raw, row_bags, self.n_bags,
                n_cells=n_cells, seed=seed, iters=iters)
        self._ivf_indexes[params] = index
        return index

    def append_local(self, bags) -> int:
        """Append newly streamed clip-local bags in place.

        ``bags`` carry *local* ids (position == bag id, as the batch and
        streaming window builders both number them); bags whose ids are
        already present are ignored, so replaying an ingest delta is
        idempotent.  Every ranking array and memo keyed on the old bag
        set is recomputed or dropped — except the IVF index memo, which
        deliberately survives: the nominator detects the stale tail
        (``index.n_bags < shard.n_bags``) and routes it explicitly, so a
        live shard never has to pay a k-means rebuild per segment.

        Standardized state (``matrix``, ``gram_cache``) is reset to
        ``None``: the global scaler must refit over the grown corpus,
        and the engine's corpus sync re-standardizes on the next round.
        """
        fresh = sorted((b for b in bags if b.bag_id >= self.n_bags),
                       key=lambda b: b.bag_id)
        if not fresh:
            return 0
        want = list(range(self.n_bags, self.n_bags + len(fresh)))
        if [b.bag_id for b in fresh] != want:
            raise ConfigurationError(
                f"shard {self.clip_id!r}: appended bag ids "
                f"{[b.bag_id for b in fresh]} are not the contiguous tail "
                f"{want}")
        next_inst = self.instance_offset + self.n_instances
        new_rows = []
        for bag in fresh:
            instances = []
            for inst in bag.instances:
                instances.append(Instance(
                    instance_id=next_inst,
                    bag_id=self.bag_offset + bag.bag_id,
                    track_id=inst.track_id, matrix=inst.matrix,
                ))
                new_rows.append(inst.vector)
                next_inst += 1
            self.dataset.bags.append(Bag(
                bag_id=self.bag_offset + bag.bag_id, clip_id=self.clip_id,
                frame_lo=bag.frame_lo, frame_hi=bag.frame_hi,
                instances=tuple(instances),
            ))
        self.n_bags = len(self.dataset.bags)
        self.n_instances = self.dataset.n_instances
        if new_rows:
            block = np.ascontiguousarray(np.stack(new_rows),
                                         dtype=np.float64)
            self.matrix_raw = (block if self.matrix_raw is None
                               else np.vstack([self.matrix_raw, block]))
        instances = self.dataset.all_instances()
        bag_scores, inst_scores = heuristic_scores(self.dataset)
        self.heuristic_bags = bag_scores
        self.heuristic_instances = np.array(
            [inst_scores[inst.instance_id] for inst in instances])
        self.bag_ranked_ids = {
            bag.bag_id: tuple(
                inst.instance_id
                for inst in sorted(bag.instances,
                                   key=lambda i: inst_scores[i.instance_id],
                                   reverse=True)
            )
            for bag in self.dataset.bags
        }
        self.bag_sizes = np.array([b.n_instances for b in self.dataset.bags])
        self.bag_starts = np.concatenate(
            ([0], np.cumsum(self.bag_sizes)))[:-1].astype(int)
        self._heuristic_order = None
        self._heuristic_rank = None
        self._candidate_cache.clear()
        self.matrix = None
        self.gram_cache = None
        self.spec = replace(self.spec, n_bags=self.n_bags,
                            n_instances=self.n_instances)
        self.metadata_version += 1
        get_telemetry().counter("sharded.bags_appended").inc(
            len(fresh), clip=self.clip_id)
        return len(fresh)

    def rebuild_ivf_index(self, *, n_cells: int = 32, seed: int = 0,
                          iters: int = 15) -> IVFIndex:
        """Rebuild (and re-memoize) the IVF index over the current rows.

        Bypasses ``spec.index_loader`` — a prebuilt artifact predates
        any append by definition.  The nominator calls this when the
        un-indexed tail has grown past its rebuild threshold.
        """
        params = (int(n_cells), int(seed), int(iters))
        sizes = self.bag_sizes.astype(np.intp)
        row_bags = np.repeat(np.arange(self.n_bags, dtype=np.intp), sizes)
        index = IVFIndex.build(
            self.matrix_raw, row_bags, self.n_bags,
            n_cells=n_cells, seed=seed, iters=iters)
        self._ivf_indexes[params] = index
        return index

    def row_of(self, instance_id: int) -> int:
        return instance_id - self.instance_offset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CorpusShard({self.clip_id!r}, bags={self.n_bags}, "
                f"instances={self.n_instances})")


@dataclass(frozen=True)
class ShardOutage:
    """One shard skipped this round because its storage is failing.

    ``retry_in_s`` is the time remaining until the corpus reprobes the
    shard's loader (0 when the reprobe is already due); ``n_bags`` is
    the catalog's bag count for the clip — the ranking coverage this
    outage hides.
    """

    clip_id: str
    reason: str
    failures: int
    retry_in_s: float
    n_bags: int


@dataclass(frozen=True)
class CoverageReport:
    """What fraction of the corpus a ranking round actually saw.

    Attached to every round by :class:`ShardedRetrievalEngine` (see
    ``last_coverage``).  Under the default ``strict`` policy a shard
    failure raises instead, so a report you can observe is always
    *honest*: ``degraded`` is True iff any shard was skipped, and the
    skipped clips/bags are enumerated — degraded results are never
    silently presented as complete.
    """

    shards_total: int
    shards_served: tuple[str, ...]
    shards_skipped: tuple[ShardOutage, ...]
    bags_total: int
    bags_missing: int
    training_bags_skipped: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.shards_skipped)

    @property
    def missing_clip_ids(self) -> tuple[str, ...]:
        return tuple(o.clip_id for o in self.shards_skipped)

    def summary(self) -> str:
        """One-line human rendering (used by the CLI)."""
        if not self.degraded:
            return (f"complete: {self.shards_total} shard(s), "
                    f"{self.bags_total} bags")
        missing = ", ".join(self.missing_clip_ids)
        return (f"DEGRADED: {len(self.shards_served)}/{self.shards_total} "
                f"shards served; missing {self.bags_missing} bag(s) from "
                f"[{missing}]")


class ShardedCorpus:
    """Per-clip shards behind one global, contiguous bag-id space.

    Shards load lazily: constructing the corpus touches only the specs'
    counts, and :meth:`shard` / :meth:`bag_by_id` materialize a clip on
    first use.  The corpus duck-types the slice of the
    :class:`MILDataset` surface the query/session layer relies on
    (``len``, ``bag_by_id``, ``n_instances``), so oracles and sessions
    work unchanged on top of it.
    """

    def __init__(self, specs: list[ShardSpec], *,
                 corpus_id: str = "sharded",
                 event_name: str = "",
                 retry_policy: RetryPolicy | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        if not specs:
            raise ConfigurationError("ShardedCorpus needs >= 1 shard spec")
        seen: set[str] = set()
        for spec in specs:
            if spec.clip_id in seen:
                raise ConfigurationError(
                    f"duplicate shard clip id {spec.clip_id!r}")
            seen.add(spec.clip_id)
        self.specs = list(specs)
        self.corpus_id = corpus_id
        self.event_name = event_name
        #: Backoff schedule for quarantined shards: failure ``n`` blocks
        #: reprobes for ``retry_policy.delay(n, key=clip_id)`` seconds
        #: (deterministic per clip).  ``clock`` is injectable so tests
        #: can step time instead of sleeping.
        self.retry_policy = retry_policy or RetryPolicy()
        self._clock = clock or time.monotonic
        self._bag_offsets: list[int] = []
        self._instance_offsets: list[int] = []
        bags = insts = 0
        for spec in self.specs:
            self._bag_offsets.append(bags)
            self._instance_offsets.append(insts)
            bags += spec.n_bags
            insts += spec.n_instances
        self._n_bags = bags
        self._n_instances = insts
        self._shards: dict[str, CorpusShard] = {}
        self._metadata_versions: dict[str, int] = {}
        self._mutations = 0
        # clip_id -> {"failures", "next_probe_at", "reason"}
        self._quarantine: dict[str, dict] = {}
        self._availability = 0
        #: Serializes structural mutation (lazy loads, reload/refresh,
        #: quarantine bookkeeping) when several sessions share this
        #: corpus.  Reads of an already-loaded shard stay lock-free —
        #: dict lookups are atomic and shards are replaced wholesale,
        #: never mutated into inconsistency.
        self._lock = threading.RLock()

    @property
    def mutation_count(self) -> int:
        """Monotonic counter of corpus mutations (reload / refresh).

        Engines key their cross-shard state (global scaler, per-round
        streams) on this, so an open query session notices a live-shard
        append on its next round without being recreated.
        """
        return self._mutations

    def __len__(self) -> int:
        return self._n_bags

    @property
    def n_instances(self) -> int:
        return self._n_instances

    @property
    def clip_ids(self) -> list[str]:
        return [spec.clip_id for spec in self.specs]

    @property
    def loaded_clip_ids(self) -> list[str]:
        """Clips whose shards have been materialized so far."""
        return [s.clip_id for s in self.specs if s.clip_id in self._shards]

    @property
    def availability_version(self) -> int:
        """Monotonic counter of quarantine-set changes.

        Bumped when a healthy shard enters quarantine and when a
        quarantined shard recovers — engines key their per-round merge
        streams on this so a mid-session outage re-ranks instead of
        serving a stale round that still includes the dead shard.
        """
        return self._availability

    @property
    def quarantined_clip_ids(self) -> list[str]:
        return [s.clip_id for s in self.specs
                if s.clip_id in self._quarantine]

    def shard_outage(self, clip_id: str) -> ShardOutage | None:
        """The clip's current outage record, or ``None`` if healthy."""
        info = self._quarantine.get(clip_id)
        if info is None:
            return None
        spec = next(s for s in self.specs if s.clip_id == clip_id)
        return ShardOutage(
            clip_id=clip_id, reason=info["reason"],
            failures=info["failures"],
            retry_in_s=max(0.0, info["next_probe_at"] - self._clock()),
            n_bags=spec.n_bags)

    def _record_shard_failure(self, clip_id: str,
                              exc: BaseException) -> ShardUnavailableError:
        """Quarantine a shard after a storage failure; build the error.

        Each consecutive failure pushes the next reprobe further out on
        the :class:`RetryPolicy`'s backoff curve; a successful load
        (:meth:`_clear_quarantine`) resets the count.
        """
        prior = self._quarantine.get(clip_id)
        failures = (prior["failures"] if prior else 0) + 1
        delay = self.retry_policy.delay(failures, key=clip_id)
        reason = f"{type(exc).__name__}: {exc}"
        self._quarantine[clip_id] = {
            "failures": failures,
            "next_probe_at": self._clock() + delay,
            "reason": reason,
        }
        obs = get_telemetry()
        obs.counter("sharded.shard_failures").inc(clip=clip_id)
        obs.gauge("sharded.quarantined_shards").set(len(self._quarantine))
        obs.event("sharded.shard_quarantined", level="warning",
                  clip=clip_id, failures=failures,
                  retry_in_s=round(delay, 4), reason=reason)
        if prior is None:
            self._availability += 1
        return ShardUnavailableError(clip_id, reason, failures=failures,
                                     retry_in_s=delay)

    def _clear_quarantine(self, clip_id: str) -> None:
        info = self._quarantine.pop(clip_id, None)
        if info is None:
            return
        obs = get_telemetry()
        obs.counter("sharded.shard_recoveries").inc(clip=clip_id)
        obs.gauge("sharded.quarantined_shards").set(len(self._quarantine))
        obs.event("sharded.shard_recovered", clip=clip_id,
                  failures=info["failures"])
        self._availability += 1
        # A recovered shard was invisible to the engine's global scaler;
        # bump the mutation counter so engines refit over the full
        # corpus instead of ranking the shard with no standardized rows.
        self._mutations += 1

    def shard(self, clip_id: str) -> CorpusShard:
        """The clip's shard, loading (and renumbering) it on first use.

        A shard whose loader failed is *quarantined*: until its
        backoff-and-reprobe deadline passes, this raises
        :class:`ShardUnavailableError` immediately (no I/O); once due,
        the loader is reprobed — success rejoins the shard and clears
        the quarantine, another ``StorageError``/``OSError`` extends it.
        """
        loaded = self._shards.get(clip_id)
        if loaded is not None:
            return loaded
        with self._lock:
            loaded = self._shards.get(clip_id)
            if loaded is not None:
                return loaded
            info = self._quarantine.get(clip_id)
            if info is not None and self._clock() < info["next_probe_at"]:
                raise ShardUnavailableError(
                    clip_id, info["reason"], failures=info["failures"],
                    retry_in_s=info["next_probe_at"] - self._clock())
            for i, spec in enumerate(self.specs):
                if spec.clip_id == clip_id:
                    obs = get_telemetry()
                    try:
                        with obs.span("sharded.shard.load", clip=clip_id,
                                      bags=spec.n_bags,
                                      instances=spec.n_instances):
                            shard = CorpusShard(
                                spec, self._bag_offsets[i],
                                self._instance_offsets[i],
                                metadata_version=self._metadata_versions.get(
                                    clip_id, 0))
                    except (StorageError, OSError) as exc:
                        raise self._record_shard_failure(clip_id, exc) \
                            from exc
                    self._shards[clip_id] = shard
                    self._clear_quarantine(clip_id)
                    return shard
            raise ConfigurationError(f"no shard for clip {clip_id!r}")

    def reload(self, clip_id: str) -> CorpusShard:
        """Drop a clip's cached shard and re-run its loader.

        The fresh :class:`CorpusShard` carries a bumped
        ``metadata_version`` and empty per-shard caches (heuristic
        order, candidate prefixes, IVF indexes), so callers holding the
        corpus — not a stale shard object — always see current data.
        """
        with self._lock:
            if clip_id in self._shards:
                version = self._shards.pop(clip_id).metadata_version + 1
            else:
                version = self._metadata_versions.get(clip_id, 0) + 1
            self._metadata_versions[clip_id] = version
            self._mutations += 1
            return self.shard(clip_id)

    def refresh(self, clip_id: str, *, n_bags: int,
                n_instances: int) -> int:
        """Adopt a clip's new catalog counts after a streamed append.

        Returns the number of bags that arrived (0 when the counts
        already match — a cheap no-op that never touches the loader).
        An already-loaded shard absorbs the delta *in place* via
        :meth:`CorpusShard.append_local`, keeping its offsets and every
        previously issued global bag id stable; an unloaded shard just
        gets an updated spec for its lazy load.  Later shards' global
        offsets shift by the delta, so any of them already loaded are
        dropped (with a version bump) and reload lazily under their new
        offsets.
        """
        with self._lock:
            return self._refresh_locked(clip_id, n_bags=n_bags,
                                        n_instances=n_instances)

    def _refresh_locked(self, clip_id: str, *, n_bags: int,
                        n_instances: int) -> int:
        for i, spec in enumerate(self.specs):
            if spec.clip_id == clip_id:
                break
        else:
            raise ConfigurationError(f"no shard for clip {clip_id!r}")
        if n_bags == spec.n_bags and n_instances == spec.n_instances:
            return 0
        if n_bags < spec.n_bags or n_instances < spec.n_instances:
            raise ConfigurationError(
                f"shard {clip_id!r}: refresh would shrink the shard "
                f"({spec.n_bags}->{n_bags} bags); use reload() for "
                f"destructive changes")
        delta = n_bags - spec.n_bags
        shard = self._shards.get(clip_id)
        if shard is not None:
            try:
                local = spec.loader()
            except (StorageError, OSError) as exc:
                # The delta could not be read: keep the *old* spec (the
                # caller will re-refresh once the shard heals), drop the
                # loaded shard, and quarantine.  Nothing global moved,
                # so other shards' offsets and caches stay valid.
                self._shards.pop(clip_id, None)
                self._metadata_versions[clip_id] = \
                    shard.metadata_version + 1
                raise self._record_shard_failure(clip_id, exc) from exc
            if (len(local.bags) != n_bags
                    or local.n_instances != n_instances):
                raise ConfigurationError(
                    f"shard {clip_id!r}: loader returned "
                    f"{len(local.bags)} bags / {local.n_instances} "
                    f"instances, refresh declared {n_bags} / "
                    f"{n_instances}")
            self.specs[i] = replace(spec, n_bags=n_bags,
                                    n_instances=n_instances)
            shard.append_local(local.bags[shard.n_bags:])
        else:
            self.specs[i] = replace(spec, n_bags=n_bags,
                                    n_instances=n_instances)
        for j in range(i + 1, len(self.specs)):
            later = self.specs[j].clip_id
            if later in self._shards:
                self._shards.pop(later)
                self._metadata_versions[later] = \
                    self._metadata_versions.get(later, 0) + 1
        bags = insts = 0
        self._bag_offsets, self._instance_offsets = [], []
        for spec in self.specs:
            self._bag_offsets.append(bags)
            self._instance_offsets.append(insts)
            bags += spec.n_bags
            insts += spec.n_instances
        self._n_bags = bags
        self._n_instances = insts
        self._mutations += 1
        get_telemetry().event("sharded.refresh", clip=clip_id,
                              delta_bags=delta)
        return delta

    def shards(self) -> Iterator[CorpusShard]:
        """All shards in spec order (loading any that aren't yet)."""
        for spec in self.specs:
            yield self.shard(spec.clip_id)

    def _spec_index_for_bag(self, bag_id: int) -> int:
        if not 0 <= bag_id < self._n_bags:
            raise ConfigurationError(f"no bag with id {bag_id}")
        return bisect_right(self._bag_offsets, bag_id) - 1

    def shard_for_bag(self, bag_id: int) -> CorpusShard:
        return self.shard(self.specs[self._spec_index_for_bag(bag_id)].clip_id)

    def shard_for_instance(self, instance_id: int) -> CorpusShard:
        if not 0 <= instance_id < self._n_instances:
            raise ConfigurationError(f"no instance with id {instance_id}")
        i = bisect_right(self._instance_offsets, instance_id) - 1
        return self.shard(self.specs[i].clip_id)

    def bag_by_id(self, bag_id: int) -> Bag:
        shard = self.shard_for_bag(bag_id)
        return shard.dataset.bags[bag_id - shard.bag_offset]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedCorpus({self.corpus_id!r}, shards={len(self.specs)}, "
                f"bags={self._n_bags})")


class HeuristicNominator:
    """Stage-one default: nominate each shard's top-M heuristic bags.

    This is the exact-compatible path — with ``candidates_per_shard=None``
    every bag is nominated and the two-stage ranking reproduces the
    monolithic engine's.
    """

    name = "heuristic"

    #: Recall of the latest nominate() vs the heuristic baseline; the
    #: heuristic *is* the baseline, so exact by construction.
    last_recall: float | None = 1.0

    def nominate(self, engine: "ShardedRetrievalEngine",
                 shard: CorpusShard) -> np.ndarray:
        return shard.candidate_positions(engine.candidates_per_shard)


class IVFNominator:
    """Query-adaptive stage one: probe the shard's IVF index.

    Per round, the query vectors are the raw features of the training
    instances (the relevant bags' top Trajectory Sequences — the same
    rows the SVM trains on).  The ``nprobe`` cells nearest to any query
    vector are gathered and only the bags they touch are nominated, so
    stage-one cost per shard is O(n_cells + nprobe * rows_per_cell)
    instead of O(n_bags).  Nominations are then capped to the
    candidates-per-shard budget in heuristic-prefilter order, preserving
    the stage-two contract (same top-M candidate-set shape, same exact
    OCSVM rerank).

    Fallbacks keep the path exact whenever sublinearity is meaningless:
    before any relevant feedback (no query vectors yet) and when
    ``nprobe >= n_cells`` (probing every cell *is* a full scan) the
    nominator defers to the heuristic prefilter, which makes the
    exhaustive-probe ranking identical to the heuristic-nominated one by
    construction.
    """

    name = "ivf"

    def __init__(self, *, n_cells: int = 32, nprobe: int = 8,
                 seed: int = 0, iters: int = 15,
                 rebuild_tail_fraction: float = 0.5) -> None:
        if n_cells < 1:
            raise ConfigurationError(
                f"n_cells must be >= 1, got {n_cells}")
        if nprobe < 1:
            raise ConfigurationError(f"nprobe must be >= 1, got {nprobe}")
        check_in_range("rebuild_tail_fraction", rebuild_tail_fraction,
                       0.0, 1.0, inclusive=(False, True))
        self.n_cells = int(n_cells)
        self.nprobe = int(nprobe)
        self.seed = int(seed)
        self.iters = int(iters)
        #: When a live append leaves more than this fraction of the
        #: shard outside the index, rebuild it instead of routing the
        #: tail around it.
        self.rebuild_tail_fraction = float(rebuild_tail_fraction)
        #: Recall of the latest probe vs the heuristic baseline, per
        #: shard call — the quality ledger reads it after each shard.
        self.last_recall: float | None = None

    def nominate(self, engine: "ShardedRetrievalEngine",
                 shard: CorpusShard) -> np.ndarray:
        m = engine.candidates_per_shard
        queries = engine._query_vectors_raw()
        self.last_recall = None
        if queries is None:
            return shard.candidate_positions(m)
        obs = get_telemetry()
        index = shard.ivf_index(n_cells=self.n_cells, seed=self.seed,
                                iters=self.iters)
        if index.n_bags < shard.n_bags:
            # Bags streamed in after the index was built.  Past the
            # rebuild threshold, re-cluster over the grown shard; below
            # it, keep the index and route the tail explicitly below.
            tail = shard.n_bags - index.n_bags
            if tail >= self.rebuild_tail_fraction * shard.n_bags:
                index = shard.rebuild_ivf_index(
                    n_cells=self.n_cells, seed=self.seed, iters=self.iters)
                obs.counter("index.rebuilds").inc()
        if index.n_cells == 0 or self.nprobe >= index.n_cells:
            return shard.candidate_positions(m)
        with obs.span("index.probe", clip=shard.clip_id,
                      nprobe=self.nprobe, cells=index.n_cells) as sp:
            positions, stats = index.probe(queries, self.nprobe)
        obs.counter("index.cells_probed").inc(stats["cells_probed"])
        obs.counter("index.rows_gathered").inc(stats["rows_gathered"])
        obs.counter("index.bags_nominated").inc(stats["bags_nominated"])
        if sp is not None:
            sp.set(**stats)
        if index.n_bags < shard.n_bags:
            # The index never saw the appended tail, so probing can
            # never nominate it: always route un-indexed bags through
            # stage two alongside the probe hits.  Any tail bag the
            # heuristic baseline would surface in its top-M survives
            # the cap below (its heuristic rank is < M by definition),
            # so nomination recall over appended bags never hits zero.
            stale = np.arange(index.n_bags, shard.n_bags, dtype=np.intp)
            positions = np.union1d(positions, stale).astype(np.intp)
            obs.counter("index.stale_tail_routed").inc(len(stale))
        # Keep the stage-two contract: at most M candidates, walked in
        # the heuristic prefilter's nomination order.
        rank = shard.heuristic_rank
        positions = positions[np.argsort(rank[positions], kind="stable")]
        if m is not None and len(positions) > m:
            positions = positions[:m]
        baseline = shard.candidate_positions(m)
        if len(baseline):
            recall = float(np.isin(baseline, positions).mean())
            self.last_recall = recall
            obs.gauge("index.nomination_recall").set(recall)
        return positions


def _resolve_nominator(nominator):
    if isinstance(nominator, str):
        if nominator == "heuristic":
            return HeuristicNominator()
        if nominator == "ivf":
            return IVFNominator()
        raise ConfigurationError(
            f"nominator must be 'heuristic', 'ivf', or a Nominator "
            f"object, got {nominator!r}")
    if not hasattr(nominator, "nominate"):
        raise ConfigurationError(
            f"nominator object {nominator!r} has no nominate() method")
    return nominator


class ShardedRetrievalEngine:
    """Two-stage MIL retrieval over a :class:`ShardedCorpus`.

    Same learning rule as
    :class:`~repro.core.engine.MILRetrievalEngine` — one-class SVM on
    the top heuristic Trajectory Sequences of the relevant bags, nu from
    the paper's Eq. (9) — but scoring is organized shard by shard:

    * ``candidates_per_shard=None`` scores every bag exactly (through
      each shard's :class:`GramCache`, so warm rounds reuse kernel
      columns) and reproduces the monolithic engine's ranking.
    * ``candidates_per_shard=M`` scores only each shard's nominated
      candidates with the SVM; the remaining bags keep their heuristic
      order *after* all candidates — a recall/latency knob.
    * ``nominator`` picks stage one: ``"heuristic"`` (static top-M
      prefilter, exact-compatible default) or ``"ivf"`` (probe each
      shard's :class:`~repro.index.ivf.IVFIndex` near the relevant
      bags' training instances — query-adaptive and sublinear in shard
      size).  An :class:`IVFNominator` instance can be passed directly
      to set ``n_cells`` / ``nprobe``.
    * ``failure_policy`` makes the shard the failure domain: under
      ``"degraded"`` a shard whose storage fails is skipped for the
      round (it is quarantined on the corpus' backoff-and-reprobe
      schedule) and ``last_coverage`` reports exactly which clips/bags
      the ranking is missing; under ``"strict"`` (default) the
      :class:`~repro.errors.ShardUnavailableError` propagates.

    The engine deliberately duck-types ``RetrievalEngine`` (``feed`` /
    ``rank`` / ``top_k`` / ``labels`` / ``dataset``) instead of
    subclassing it: the base class materializes one dataset-wide matrix
    at construction, which is exactly what sharding avoids.
    """

    def __init__(
        self,
        corpus: ShardedCorpus,
        *,
        candidates_per_shard: int | None = None,
        nominator: str | HeuristicNominator | IVFNominator = "heuristic",
        z: float = 0.05,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "auto",
        training_policy: str = "top1",
        nu_bounds: tuple[float, float] = (0.05, 0.95),
        learner: str = "ocsvm",
        failure_policy: str = "strict",
    ) -> None:
        if len(corpus) == 0:
            raise ConfigurationError("dataset has no bags to rank")
        if failure_policy not in ("strict", "degraded"):
            raise ConfigurationError(
                f"failure_policy must be 'strict' or 'degraded', got "
                f"{failure_policy!r}")
        if corpus.n_instances == 0:
            raise ConfigurationError(
                "dataset has no instances (every bag is empty) — nothing "
                "to learn from or rank"
            )
        if candidates_per_shard is not None and candidates_per_shard < 1:
            raise ConfigurationError(
                f"candidates_per_shard must be >= 1 or None, got "
                f"{candidates_per_shard}"
            )
        check_in_range("z", z, 0.0, 0.5)
        self._top_m = _parse_policy(training_policy)
        lo, hi = nu_bounds
        check_in_range("nu lower bound", lo, 0.0, 1.0,
                       inclusive=(False, True))
        check_in_range("nu upper bound", hi, lo, 1.0)
        if learner not in ("ocsvm", "svdd"):
            raise ConfigurationError(
                f"learner must be 'ocsvm' or 'svdd', got {learner!r}"
            )
        self.dataset = corpus
        self.corpus = corpus
        self.candidates_per_shard = candidates_per_shard
        self.nominator = _resolve_nominator(nominator)
        self.z = float(z)
        self.kernel = kernel
        self.gamma = gamma
        self.training_policy = training_policy
        self.nu_bounds = (float(lo), float(hi))
        self.learner = learner
        #: ``strict`` (default): a failing shard raises
        #: :class:`ShardUnavailableError` out of rank/feed.
        #: ``degraded``: the round proceeds over the healthy shards and
        #: ``last_coverage`` reports exactly what was skipped.
        self.failure_policy = failure_policy
        #: Coverage of the most recent ranking round (``None`` before
        #: the first round).
        self.last_coverage: CoverageReport | None = None
        #: Per-shard cost/quality stats of the most recent *scored*
        #: round (``None`` until one is computed; survives cache hits).
        #: The quality ledger (:mod:`repro.db.query`) persists this.
        self.last_round_stats: dict | None = None
        self.labels: dict[int, bool] = {}
        self._scaler: StandardScaler | None = None
        self._model = None
        self._support_ids: list[int] = []
        self._support_x: np.ndarray | None = None
        self._support_sq: np.ndarray | None = None
        self._round_kernel: Kernel | None = None
        self.last_nu_: float | None = None
        self.training_size_: int = 0
        # Per-round ranking state, rebuilt lazily after each feed():
        # clip_id -> sorted [(-score, bag_id), ...] merge streams.
        self._candidate_streams: dict[str, list[tuple[float, int]]] | None = \
            None
        self._leftover_streams: dict[str, list[tuple[float, int]]] | None = \
            None
        self._round_nominated: dict[str, np.ndarray] | None = None
        self._training_ids: list[int] = []
        self._round_queries: np.ndarray | None = None
        self._corpus_version = corpus.mutation_count
        self._availability_version = corpus.availability_version
        self._training_bags_skipped = 0
        self._round_shards: list[CorpusShard] = []

    def _sync_corpus(self) -> None:
        """Catch up with live-corpus mutations (appends / reloads).

        A streamed append invalidates everything keyed on the old bag
        population: the global scaler's statistics, every shard's
        standardized matrix and Gram-cache columns, the per-round merge
        streams and cached query vectors.  Drop them all, retrain on the
        grown corpus when there is feedback, and the next round ranks
        the appended bags alongside the old ones — no session restart.
        """
        if self._corpus_version == self.corpus.mutation_count:
            return
        self._corpus_version = self.corpus.mutation_count
        self._scaler = None
        for clip_id in self.corpus.loaded_clip_ids:
            shard = self.corpus.shard(clip_id)
            with shard.lock:
                shard.matrix = None
                shard.gram_cache = None
        self._candidate_streams = None
        self._leftover_streams = None
        self._round_nominated = None
        self._round_queries = None
        get_telemetry().counter("sharded.corpus_syncs").inc()
        if self.labels:
            self._retrain()

    def _probe_shards(self) -> tuple[list[CorpusShard], list[ShardOutage]]:
        """(healthy shards in spec order, outages for the rest).

        Probing a quarantined shard whose reprobe deadline passed
        re-runs its loader, so this is also where automatic recovery
        happens.  Under ``strict`` the first unavailable shard raises.
        """
        shards: list[CorpusShard] = []
        outages: list[ShardOutage] = []
        for spec in self.corpus.specs:
            try:
                shards.append(self.corpus.shard(spec.clip_id))
            except ShardUnavailableError as exc:
                if self.failure_policy == "strict":
                    raise
                outages.append(ShardOutage(
                    clip_id=spec.clip_id, reason=exc.reason,
                    failures=exc.failures, retry_in_s=exc.retry_in_s,
                    n_bags=spec.n_bags))
        return shards, outages

    # -- feedback ---------------------------------------------------------
    def feed(self, labels: Mapping[int, bool]) -> None:
        """Accumulate bag labels (bag_id -> relevant?) and retrain.

        Validates before mutating (same contract as
        ``RetrievalEngine.feed``): a round with unknown bag ids leaves
        the engine untouched.
        """
        self._sync_corpus()
        unknown = {int(b) for b in labels
                   if not 0 <= int(b) < len(self.corpus)}
        if unknown:
            raise ConfigurationError(
                f"labels reference unknown bag ids {sorted(unknown)[:5]}"
            )
        self.labels.update({int(k): bool(v) for k, v in labels.items()})
        self._retrain()
        self._candidate_streams = None
        self._leftover_streams = None
        self._round_nominated = None
        self._round_queries = None

    @property
    def relevant_bag_ids(self) -> list[int]:
        return sorted(b for b, lab in self.labels.items() if lab)

    @property
    def irrelevant_bag_ids(self) -> list[int]:
        return sorted(b for b, lab in self.labels.items() if not lab)

    @property
    def has_relevant_feedback(self) -> bool:
        return any(self.labels.values())

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    # -- training ---------------------------------------------------------
    def _ensure_standardized(self) -> None:
        """Fit the global scaler and standardize every shard (once).

        The scaler sees the vstack of the shards' raw matrices — the
        exact rows, in the exact order, the monolithic engine stacks —
        so per-shard standardized matrices are bit-identical to the
        corresponding monolithic rows.  In degraded mode quarantined
        shards are excluded from the fit; a recovery bumps the corpus
        mutation counter, which resets the scaler so the healed corpus
        is refit in full.
        """
        if self._scaler is not None:
            return
        shards, _ = self._probe_shards()
        blocks = [s.matrix_raw for s in shards if s.matrix_raw is not None]
        self._scaler = StandardScaler().fit(np.vstack(blocks))
        for shard in shards:
            # Shared-corpus note: engines of concurrent sessions fit
            # identical scalers (same rows, same order), so whichever
            # engine standardizes a shard first does it for all — the
            # per-shard lock only prevents a torn matrix/gram_cache
            # pair, not divergent contents.
            with shard.lock:
                if shard.matrix_raw is None or shard.matrix is not None:
                    continue
                matrix = np.ascontiguousarray(
                    self._scaler.transform(shard.matrix_raw))
                shard.gram_cache = GramCache(matrix)
                shard.matrix = matrix

    def _standardized_rows(self, instance_ids: list[int]) -> np.ndarray:
        rows = []
        for i in instance_ids:
            shard = self.corpus.shard_for_instance(i)
            assert shard.matrix is not None
            rows.append(shard.matrix[shard.row_of(i)])
        return np.ascontiguousarray(np.stack(rows))

    def _training_instance_ids(self, relevant: list[int]) -> list[int]:
        ids: list[int] = []
        skipped = 0
        for bag_id in relevant:
            try:
                shard = self.corpus.shard_for_bag(bag_id)
            except ShardUnavailableError:
                if self.failure_policy == "strict":
                    raise
                skipped += 1
                continue
            ranked = shard.bag_ranked_ids[bag_id]
            take = len(ranked) if self._top_m is None else self._top_m
            ids.extend(ranked[:take])
        self._training_bags_skipped = skipped
        if skipped:
            get_telemetry().event(
                "sharded.training_bags_skipped", level="warning",
                skipped=skipped, relevant=len(relevant))
        return ids

    def _query_vectors_raw(self) -> np.ndarray | None:
        """Raw feature rows of the current training instances — the IVF
        nominator's probe queries (index cells live in raw space, which
        exists before the global scaler does).  ``None`` until there is
        relevant feedback."""
        if not self._training_ids:
            return None
        if self._round_queries is None:
            rows = []
            for i in self._training_ids:
                try:
                    shard = self.corpus.shard_for_instance(i)
                except ShardUnavailableError:
                    # Degraded: a training instance's shard died after
                    # the model was fit.  The model itself is fine (its
                    # support vectors are materialized); only the IVF
                    # probe loses this query row.
                    if self.failure_policy == "strict":
                        raise
                    continue
                assert shard.matrix_raw is not None
                rows.append(shard.matrix_raw[shard.row_of(i)])
            if not rows:
                return None
            self._round_queries = np.ascontiguousarray(np.stack(rows))
        return self._round_queries

    def _retrain(self) -> None:
        relevant = self.relevant_bag_ids
        training_ids = self._training_instance_ids(relevant)
        self._training_ids = list(training_ids)
        if not training_ids:
            self._model = None
            self._support_ids = []
            self._support_x = None
            self._round_kernel = None
            return
        self._ensure_standardized()
        x = self._standardized_rows(training_ids)
        # Eq. (9) over the bags that actually contributed training
        # rows: in degraded mode relevant bags on a dead shard are
        # excluded from both numerator and training set, so nu keeps
        # its meaning; with every shard healthy this is len(relevant).
        included = len(relevant) - self._training_bags_skipped
        nu = 1.0 - (included / len(training_ids) + self.z)
        nu = float(np.clip(nu, *self.nu_bounds))
        self.last_nu_ = nu
        self.training_size_ = len(training_ids)
        if self.learner == "svdd":
            from repro.svm.svdd import SVDD

            model = SVDD(nu=nu, kernel=self.kernel,
                         gamma=self.gamma).fit(x)
        else:
            model = OneClassSVM(nu=nu, kernel=self.kernel,
                                gamma=self.gamma).fit(x)
        self._model = model
        self._round_kernel = model.kernel_
        assert model.support_ is not None
        assert model.support_vectors_ is not None
        self._support_ids = [training_ids[s] for s in model.support_]
        self._support_x = np.ascontiguousarray(model.support_vectors_)
        self._support_sq = row_sq_norms(self._support_x)

    # -- per-shard scoring -------------------------------------------------
    def _full_shard_scores(self, shard: CorpusShard) -> np.ndarray:
        """Exact SVM scores for every bag of one shard (layout order)."""
        scores = np.full(shard.n_bags, -np.inf)
        if shard.matrix is None:
            return scores
        assert (self._model is not None and shard.gram_cache is not None
                and self._round_kernel is not None
                and self._support_x is not None)
        cache = shard.gram_cache
        cache.ensure_vectors(self._round_kernel, self._support_ids,
                             self._support_x)
        cross = cache.cross(self._support_ids)
        if self.learner == "svdd":
            decisions = self._model.decision_function(
                cross=cross, self_sim=cache.diag(self._round_kernel))
        else:
            decisions = self._model.decision_function(cross=cross)
        non_empty = shard.bag_sizes > 0
        if non_empty.any():
            scores[non_empty] = np.maximum.reduceat(
                decisions.astype(float), shard.bag_starts[non_empty])
        return scores

    def _candidate_shard_scores(self, shard: CorpusShard,
                                positions: np.ndarray) -> np.ndarray:
        """Exact SVM scores for the candidate bags only (one small
        kernel block instead of the whole shard)."""
        scores = np.full(len(positions), -np.inf)
        if shard.matrix is None:
            return scores
        assert (self._model is not None and self._round_kernel is not None
                and self._support_x is not None)
        sizes = shard.bag_sizes[positions]
        keep = sizes > 0
        if not keep.any():
            return scores
        counts = sizes[keep]
        seg_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        # Each candidate bag's instances are one contiguous row range;
        # gather them all with a single arange + per-segment offset.
        rows = np.arange(int(counts.sum())) + np.repeat(
            shard.bag_starts[positions][keep] - seg_starts, counts)
        sub = shard.matrix[rows]
        kernel = self._round_kernel
        if isinstance(kernel, RBFKernel):
            cross = kernel.compute_blocked(sub, self._support_x,
                                           b_sq=self._support_sq)
        else:
            cross = kernel.compute_blocked(sub, self._support_x)
        if self.learner == "svdd":
            decisions = self._model.decision_function(
                cross=cross, self_sim=kernel.diag(sub))
        else:
            decisions = self._model.decision_function(cross=cross)
        scores[keep] = np.maximum.reduceat(
            decisions.astype(float), seg_starts)
        return scores

    def _score_shard(self, shard: CorpusShard
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(candidate positions, their scores) for one shard this round."""
        positions = self.nominator.nominate(self, shard)
        if not self.is_trained:
            return positions, shard.heuristic_bags[positions]
        if len(positions) == shard.n_bags:
            return positions, self._full_shard_scores(shard)[positions]
        return positions, self._candidate_shard_scores(shard, positions)

    def _coverage_report(self, shards: list[CorpusShard],
                         outages: list[ShardOutage]) -> CoverageReport:
        return CoverageReport(
            shards_total=len(self.corpus.specs),
            shards_served=tuple(s.clip_id for s in shards),
            shards_skipped=tuple(outages),
            bags_total=len(self.corpus),
            bags_missing=sum(o.n_bags for o in outages),
            training_bags_skipped=self._training_bags_skipped)

    def _ensure_round(self) -> None:
        """Score all healthy shards for the current feedback state
        (cached until the next ``feed``, corpus mutation, or change in
        shard availability)."""
        shards, outages = self._probe_shards()
        self._sync_corpus()
        if self._availability_version != self.corpus.availability_version:
            # A shard died or rejoined since the cached round: the
            # cached merge streams cover the wrong shard set.
            self._availability_version = self.corpus.availability_version
            self._candidate_streams = None
            self._leftover_streams = None
            self._round_nominated = None
        if self._candidate_streams is not None:
            self.last_coverage = self._coverage_report(shards, outages)
            return
        obs = get_telemetry()
        streams: dict[str, list[tuple[float, int]]] = {}
        nominated: dict[str, np.ndarray] = {}
        shard_stats: list[dict] = []
        total_scored = total_pruned = 0
        with obs.span("sharded.rank", shards=len(self.corpus.specs),
                      trained=self.is_trained,
                      nominator=getattr(self.nominator, "name", "custom"),
                      candidates_per_shard=self.candidates_per_shard
                      or 0) as sp:
            for shard in shards:
                with obs.span("sharded.shard.score",
                              clip=shard.clip_id,
                              n_bags=shard.n_bags) as shard_sp:
                    # Held across nominate + ensure_vectors + cross:
                    # GramCache has no internal locking, and the
                    # fill/read pair must be atomic when concurrent
                    # sessions share this shard's cache.
                    with shard.lock:
                        positions, scores = self._score_shard(shard)
                    n_candidates = len(positions)
                    n_pruned = shard.n_bags - n_candidates
                    if shard_sp is not None:
                        shard_sp.set(candidates=n_candidates,
                                     pruned=n_pruned)
                nominated[shard.clip_id] = positions
                bag_ids = shard.bag_offset + positions
                order = np.lexsort((bag_ids, -scores))
                streams[shard.clip_id] = [
                    (-float(scores[i]), int(bag_ids[i])) for i in order
                ]
                total_scored += n_candidates
                total_pruned += n_pruned
                recall = getattr(self.nominator, "last_recall", None)
                shard_stats.append({
                    "clip_id": shard.clip_id,
                    "n_bags": shard.n_bags,
                    "candidates": n_candidates,
                    "pruned": n_pruned,
                    "nomination_recall": recall,
                    "wall_ms": (round(shard_sp.wall_ms, 3)
                                if shard_sp is not None else None),
                })
                obs.histogram("sharded.shard.candidates").observe(
                    n_candidates)
                if n_pruned:
                    obs.counter("sharded.bags_pruned").inc(n_pruned)
                finite = scores[np.isfinite(scores)]
                if finite.size:
                    obs.histogram("sharded.shard.score_span").observe(
                        float(finite.max() - finite.min()))
            obs.counter("sharded.bags_scored").inc(total_scored)
            if sp is not None:
                sp.set(scored=total_scored, pruned=total_pruned)
        self._candidate_streams = streams
        self._round_nominated = nominated
        self._round_shards = shards
        self.last_coverage = self._coverage_report(shards, outages)
        bags_total = len(self.corpus)
        recalls = [s["nomination_recall"] for s in shard_stats
                   if s["nomination_recall"] is not None]
        self.last_round_stats = {
            "shards": shard_stats,
            "bags_total": bags_total,
            "bags_scored": total_scored,
            "bags_pruned": total_pruned,
            "bags_scanned_fraction": (total_scored / bags_total
                                      if bags_total else 1.0),
            "nomination_recall": (float(np.mean(recalls))
                                  if recalls else None),
            "nominator": getattr(self.nominator, "name", "custom"),
            "trained": self.is_trained,
        }
        coverage_fraction = (
            (bags_total - self.last_coverage.bags_missing) / bags_total
            if bags_total else 1.0)
        obs.gauge("query.coverage_fraction").set(coverage_fraction)
        if outages:
            obs.counter("sharded.degraded_rounds").inc()
            obs.event(
                "sharded.degraded_round", level="warning",
                served=len(shards), skipped=len(outages),
                missing_bags=self.last_coverage.bags_missing,
                clips=",".join(o.clip_id for o in outages))

    def _ensure_leftovers(self) -> None:
        """Heuristic-ordered streams of the bags stage one pruned."""
        if self._leftover_streams is not None:
            return
        self._ensure_round()
        assert self._round_nominated is not None
        streams: dict[str, list[tuple[float, int]]] = {}
        for shard in self._round_shards:
            positions = self._round_nominated[shard.clip_id]
            if len(positions) == shard.n_bags:
                continue
            pruned = np.ones(shard.n_bags, dtype=bool)
            pruned[positions] = False
            order = shard.heuristic_order
            # heuristic_order is already (score desc, bag id asc), so
            # its pruned subsequence is a ready-sorted merge stream.
            streams[shard.clip_id] = [
                (-float(shard.heuristic_bags[p]),
                 int(shard.bag_offset + p))
                for p in order[pruned[order]]
            ]
        self._leftover_streams = streams

    # -- ranking ----------------------------------------------------------
    def rank_iter(self) -> Iterator[int]:
        """Bag ids in descending relevance, lazily merged across shards.

        All exactly-scored candidates come first (global score order,
        ties by bag id); pruned bags follow in heuristic order.  Only
        the consumed prefix of the merge is materialized, so
        ``top_k(20)`` over a large corpus never sorts it globally.
        """
        self._ensure_round()
        assert self._candidate_streams is not None
        for _, bag_id in heapq.merge(*self._candidate_streams.values()):
            yield bag_id
        self._ensure_leftovers()
        assert self._leftover_streams is not None
        for _, bag_id in heapq.merge(*self._leftover_streams.values()):
            yield bag_id

    def rank(self) -> list[int]:
        """Bag ids in descending relevance (ties broken by bag id)."""
        return list(self.rank_iter())

    def top_k(self, k: int) -> list[int]:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        return list(islice(self.rank_iter(), k))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedRetrievalEngine(shards={len(self.corpus.specs)}, "
                f"bags={len(self.corpus)}, "
                f"candidates_per_shard={self.candidates_per_shard})")


class CorpusPool:
    """Refcounted cache of shared, read-only :class:`ShardedCorpus` objects.

    The multi-tenant service's amortization point: every session over
    the same ``(corpus, event)`` shares one corpus object, so shard
    loads happen once, the standardized matrices are built once, and
    concurrent users reuse each other's Gram-cache kernel columns
    (:class:`~repro.svm.gram_cache.GramCache` keys columns on kernel
    parameters, so this pays off when sessions agree on them — the
    engine defaults — and degrades to correct-but-unshared work when
    they don't).

    Sharing is sound only while the corpus is *read-only*: a mutation
    (reload/refresh) would invalidate every sharing engine's scaler at
    once.  The service never mutates datasets, which is what makes this
    pool safe there; don't pool corpora over a live streaming ingest.

    ``acquire`` builds the corpus on first use (outside the pool lock —
    catalog reads can be slow) and bumps a refcount after; ``release``
    drops the entry when the last holder leaves so memory is returned
    once a corpus has no sessions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}

    def acquire(self, key: str,
                factory: Callable[[], ShardedCorpus]) -> ShardedCorpus:
        """The pooled corpus for ``key``, building it via ``factory``
        if absent.  Every acquire must be paired with one release."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry["refs"] += 1
                get_telemetry().counter("sharded.corpus_pool_hits").inc()
                return entry["corpus"]
        corpus = factory()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # Lost the build race; adopt the winner and let ours
                # be garbage (nothing holds it).
                entry["refs"] += 1
                get_telemetry().counter("sharded.corpus_pool_hits").inc()
                return entry["corpus"]
            self._entries[key] = {"corpus": corpus, "refs": 1}
            return corpus

    def release(self, key: str) -> bool:
        """Drop one reference; returns True when the corpus was evicted
        (refcount hit zero)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise ConfigurationError(
                    f"release of unknown pooled corpus {key!r}")
            entry["refs"] -= 1
            if entry["refs"] <= 0:
                del self._entries[key]
                return True
            return False

    def refcount(self, key: str) -> int:
        with self._lock:
            entry = self._entries.get(key)
            return entry["refs"] if entry else 0

    def stats(self) -> dict[str, int]:
        """{key: refcount} snapshot (diagnostics / service introspection)."""
        with self._lock:
            return {k: e["refs"] for k, e in self._entries.items()}
