"""Initial, feedback-free ranking (paper Section 5.3).

Before any relevance feedback exists, a Video Sequence's relevance score
is the highest score of its Trajectory Sequences; a TS's score is the
highest score of its sampling points; a sampling point's score is the
square sum of its feature vector ("it is assumed that a big velocity
change, a sudden change of driving direction, and a short distance
between two vehicles are indications of possible accidents").

The paper scores *raw* features (only the baseline's weights are ever
normalized), which is part of why its Initial round sits at a modest 40%;
we follow that by default and expose min-max normalization as an option
(used by ablations).
"""

from __future__ import annotations

import numpy as np

from repro.core.bags import MILDataset
from repro.errors import ConfigurationError
from repro.svm.scaling import MinMaxScaler

__all__ = [
    "instance_feature_matrices",
    "normalize_features",
    "heuristic_scores",
    "instance_point_scores",
]


def instance_feature_matrices(
    dataset: MILDataset, *, normalize: bool = False
) -> dict[int, np.ndarray]:
    """Per-instance (window, n_features) matrices, raw or min-max scaled."""
    if normalize:
        return normalize_features(dataset)[0]
    return {
        inst.instance_id: inst.matrix for inst in dataset.all_instances()
    }


def normalize_features(
    dataset: MILDataset,
) -> tuple[dict[int, np.ndarray], MinMaxScaler]:
    """Min-max normalize per-checkpoint features across the dataset.

    Returns ``(matrices, scaler)`` where ``matrices[instance_id]`` is the
    normalized (window, n_features) matrix of that instance.
    """
    instances = dataset.all_instances()
    if not instances:
        return {}, MinMaxScaler()
    rows = np.vstack([inst.matrix for inst in instances])
    scaler = MinMaxScaler().fit(rows)
    matrices = {
        inst.instance_id: scaler.transform(inst.matrix)
        for inst in instances
    }
    return matrices, scaler


def instance_point_scores(matrix: np.ndarray,
                          weights: np.ndarray | None = None) -> np.ndarray:
    """Per-sampling-point scores: (weighted) square sum of the features."""
    squared = np.asarray(matrix, dtype=float) ** 2
    if weights is not None:
        squared = squared * np.asarray(weights, dtype=float)
    return squared.sum(axis=1)


def heuristic_scores(
    dataset: MILDataset,
    *,
    matrices: dict[int, np.ndarray] | None = None,
    weights: np.ndarray | None = None,
    normalize: bool = False,
) -> tuple[np.ndarray, dict[int, float]]:
    """Initial scores: S_v = max_T S_T, S_T = max_i S_alpha_i.

    Returns ``(bag_scores, instance_scores)`` with ``bag_scores`` aligned
    to ``dataset.bags`` (empty bags score ``-inf``).

    ``matrices`` and ``normalize`` are mutually exclusive: precomputed
    matrices are scored as given, so a ``normalize=True`` alongside them
    would be silently ignored — callers believing they ranked normalized
    features when they didn't.  That combination raises instead.
    """
    if matrices is not None and normalize:
        raise ConfigurationError(
            "heuristic_scores: pass precomputed matrices or "
            "normalize=True, not both — explicit matrices are scored "
            "as given and cannot be normalized here"
        )
    if matrices is None:
        matrices = instance_feature_matrices(dataset, normalize=normalize)
    instance_scores: dict[int, float] = {}
    bag_scores = np.full(len(dataset.bags), -np.inf)
    for b, bag in enumerate(dataset.bags):
        for inst in bag.instances:
            points = instance_point_scores(matrices[inst.instance_id],
                                           weights)
            score = float(points.max())
            instance_scores[inst.instance_id] = score
            bag_scores[b] = max(bag_scores[b], score)
    return bag_scores, instance_scores
