"""MIL data structures: bags (Video Sequences) and instances (Trajectory
Sequences).

Paper Section 5.1, Eq. (3)-(4): a bag is positive iff at least one of its
instances is positive; a negative bag has only negative instances.  Bag
labels come from relevance feedback, instance labels stay latent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Instance", "Bag", "MILDataset", "merge_datasets"]


@dataclass(frozen=True)
class Instance:
    """One Trajectory Sequence inside one Video Sequence.

    ``matrix`` is the (window_size, n_features) per-checkpoint feature
    matrix; ``vector`` is its flattened form — the representation the
    One-class SVM learns from ("the One-class SVM learns from the entire
    trajectory sequence ... not only the highest scored sampling point",
    paper Section 5.3).
    """

    instance_id: int
    bag_id: int
    track_id: int
    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ConfigurationError(
                f"instance matrix must be non-empty 2-D, got shape "
                f"{matrix.shape}"
            )
        object.__setattr__(self, "matrix", matrix)

    @property
    def vector(self) -> np.ndarray:
        return self.matrix.ravel()

    @property
    def window_size(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]


@dataclass(frozen=True)
class Bag:
    """One Video Sequence: a frame window and its contained instances."""

    bag_id: int
    clip_id: str
    frame_lo: int
    frame_hi: int
    instances: tuple[Instance, ...]

    def __post_init__(self) -> None:
        if self.frame_hi < self.frame_lo:
            raise ConfigurationError(
                f"bag {self.bag_id}: frame_hi {self.frame_hi} < frame_lo "
                f"{self.frame_lo}"
            )
        for inst in self.instances:
            if inst.bag_id != self.bag_id:
                raise ConfigurationError(
                    f"instance {inst.instance_id} carries bag_id "
                    f"{inst.bag_id}, expected {self.bag_id}"
                )

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def frame_range(self) -> tuple[int, int]:
        return (self.frame_lo, self.frame_hi)

    def instance_matrix(self) -> np.ndarray:
        """(n_instances, window*features) stacked instance vectors."""
        if not self.instances:
            return np.empty((0, 0))
        return np.stack([inst.vector for inst in self.instances])


@dataclass
class MILDataset:
    """All bags of one clip for one event model."""

    clip_id: str
    event_name: str
    feature_names: tuple[str, ...]
    window_size: int
    sampling_rate: int
    bags: list[Bag] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.bags)

    def __iter__(self) -> Iterator[Bag]:
        return iter(self.bags)

    @property
    def n_instances(self) -> int:
        return sum(b.n_instances for b in self.bags)

    def bag_by_id(self, bag_id: int) -> Bag:
        """O(1) lookup via a lazily built id index.

        The index is rebuilt whenever the bag count changed since it was
        built (``merge_datasets`` appends after construction), so plain
        list mutation stays supported.
        """
        index = self.__dict__.get("_bag_index")
        if index is None or len(index) != len(self.bags):
            index = {}
            for bag in self.bags:
                index.setdefault(bag.bag_id, bag)
            self.__dict__["_bag_index"] = index
        try:
            return index[bag_id]
        except KeyError:
            raise ConfigurationError(f"no bag with id {bag_id}") from None

    def all_instances(self) -> list[Instance]:
        return [inst for bag in self.bags for inst in bag.instances]

    def instance_matrix(self) -> np.ndarray:
        """(total_instances, window*features) matrix over the dataset."""
        instances = self.all_instances()
        if not instances:
            raise ConfigurationError(
                f"dataset for clip {self.clip_id!r} has no instances"
            )
        return np.stack([inst.vector for inst in instances])

    def non_empty_bags(self) -> list[Bag]:
        return [b for b in self.bags if b.n_instances > 0]

    def frame_windows(self) -> list[tuple[int, int]]:
        return [(b.frame_lo, b.frame_hi) for b in self.bags]


def merge_datasets(datasets: list["MILDataset"],
                   merged_id: str = "merged") -> "MILDataset":
    """Merge per-clip datasets into one retrievable corpus.

    This is the paper's "ideally, all the video clips ... shall be mined
    and retrieved as a whole" (Section 6.2): bags keep their source
    ``clip_id`` (so a user/oracle can still judge them against the right
    clip) while bag and instance ids are renumbered to be globally
    unique.  All datasets must share the event model and windowing.
    """
    if not datasets:
        raise ConfigurationError("merge_datasets needs >= 1 dataset")
    head = datasets[0]
    for ds in datasets[1:]:
        if (ds.event_name != head.event_name
                or ds.feature_names != head.feature_names
                or ds.window_size != head.window_size
                or ds.sampling_rate != head.sampling_rate):
            raise ConfigurationError(
                f"dataset {ds.clip_id!r} is not compatible with "
                f"{head.clip_id!r} (event/features/windowing differ)"
            )
    merged = MILDataset(
        clip_id=merged_id,
        event_name=head.event_name,
        feature_names=head.feature_names,
        window_size=head.window_size,
        sampling_rate=head.sampling_rate,
    )
    next_bag, next_inst = 0, 0
    for ds in datasets:
        for bag in ds.bags:
            instances = []
            for inst in bag.instances:
                instances.append(Instance(
                    instance_id=next_inst, bag_id=next_bag,
                    track_id=inst.track_id, matrix=inst.matrix,
                ))
                next_inst += 1
            merged.bags.append(Bag(
                bag_id=next_bag, clip_id=bag.clip_id,
                frame_lo=bag.frame_lo, frame_hi=bag.frame_hi,
                instances=tuple(instances),
            ))
            next_bag += 1
    return merged
