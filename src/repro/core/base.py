"""Shared machinery for interactive retrieval engines.

An engine ranks the bags of one :class:`~repro.core.bags.MILDataset`;
relevance feedback arrives via :meth:`RetrievalEngine.feed` as bag-level
labels and accumulates across rounds ("the training set for the user's
specific query is built up gradually", paper Section 1).  Until the first
relevant label arrives every engine falls back to the heuristic initial
ranking, which is why the paper's accuracy curves all share their
``Initial`` point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.bags import MILDataset
from repro.core.heuristics import heuristic_scores, instance_feature_matrices
from repro.errors import ConfigurationError

__all__ = ["RetrievalEngine", "InstanceExplanation"]


@dataclass(frozen=True)
class InstanceExplanation:
    """One Trajectory Sequence's standing inside a retrieved bag.

    The user-facing payoff of the MIL mapping: after labelling whole
    Video Sequences, :meth:`RetrievalEngine.explain` ranks the vehicles
    inside a result so a UI can highlight the ones the engine believes
    are involved.
    """

    rank: int
    instance_id: int
    track_id: int
    score: float
    feature_names: tuple[str, ...]
    matrix: np.ndarray

    def peak_feature(self) -> tuple[str, float]:
        """(channel name, signed value) of the largest |feature| entry."""
        flat_index = int(np.argmax(np.abs(self.matrix)))
        _, col = np.unravel_index(flat_index, self.matrix.shape)
        return (self.feature_names[col],
                float(self.matrix.ravel()[flat_index]))


class RetrievalEngine(ABC):
    """Base class: label bookkeeping, heuristic fallback, bag ranking.

    ``normalize_heuristic_features`` switches the square-sum scores (the
    shared Initial round, and the weighted-RF baseline) from the paper's
    raw features to dataset min-max-normalized ones; kept as an ablation
    knob.
    """

    def __init__(self, dataset: MILDataset, *,
                 normalize_heuristic_features: bool = False) -> None:
        if not dataset.bags:
            raise ConfigurationError("dataset has no bags to rank")
        if dataset.n_instances == 0:
            raise ConfigurationError(
                "dataset has no instances (every bag is empty) — nothing "
                "to learn from or rank"
            )
        self.dataset = dataset
        self.labels: dict[int, bool] = {}
        self._matrices = instance_feature_matrices(
            dataset, normalize=normalize_heuristic_features)
        self._heuristic_bag_scores, self._heuristic_instance_scores = (
            heuristic_scores(dataset, matrices=self._matrices)
        )
        # Bag layout for the vectorized instance-max reduction: instances
        # are stored bag-contiguously, so each bag is one reduceat segment.
        self._instance_order = [
            inst.instance_id for bag in dataset.bags for inst in bag.instances
        ]
        self._bag_sizes = np.array([b.n_instances for b in dataset.bags])
        self._bag_starts = np.concatenate(
            ([0], np.cumsum(self._bag_sizes)))[:-1].astype(int)

    # -- feedback ---------------------------------------------------------
    def feed(self, labels: Mapping[int, bool]) -> None:
        """Accumulate bag labels (bag_id -> relevant?) and retrain."""
        known = {b.bag_id for b in self.dataset.bags}
        unknown = set(labels) - known
        if unknown:
            raise ConfigurationError(
                f"labels reference unknown bag ids {sorted(unknown)[:5]}"
            )
        self.labels.update({int(k): bool(v) for k, v in labels.items()})
        self._retrain()

    @property
    def relevant_bag_ids(self) -> list[int]:
        return sorted(b for b, lab in self.labels.items() if lab)

    @property
    def irrelevant_bag_ids(self) -> list[int]:
        return sorted(b for b, lab in self.labels.items() if not lab)

    @property
    def has_relevant_feedback(self) -> bool:
        return any(self.labels.values())

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`_instance_scores` is currently usable.

        Subclasses override when training can fail to produce a model
        even with relevant feedback (e.g. every relevant bag was empty).
        """
        return self.has_relevant_feedback

    # -- ranking ----------------------------------------------------------
    def _instance_score_values(self) -> np.ndarray:
        """Instance scores aligned with bag-contiguous instance order.

        Default adapts the :meth:`_instance_scores` dict; engines that
        already hold scores as an aligned array override this to skip
        the dict round-trip on the ranking hot path.
        """
        scores = self._instance_scores()
        return np.fromiter((scores[i] for i in self._instance_order),
                           dtype=float, count=len(self._instance_order))

    def bag_scores(self) -> np.ndarray:
        """Scores aligned with ``dataset.bags`` (higher = more relevant).

        A bag's score is the max over its instances (the Eq. 3 bag
        semantics), computed segment-wise over the bag-contiguous
        instance layout; empty bags score ``-inf``.
        """
        if not self.is_trained:
            return self._heuristic_bag_scores.copy()
        values = self._instance_score_values()
        scores = np.full(len(self.dataset.bags), -np.inf)
        non_empty = self._bag_sizes > 0
        if non_empty.any():
            # reduceat over non-empty starts: each segment runs to the
            # next non-empty start, and the empty bags in between
            # contribute no values, so segments match bags exactly.
            scores[non_empty] = np.maximum.reduceat(
                values, self._bag_starts[non_empty])
        return scores

    def instance_relevance(self) -> dict[int, float]:
        """Current per-instance relevance scores (instance_id -> score).

        Heuristic scores before any relevant feedback, model scores
        after — the quantity behind the MIL claim that bag-level labels
        let the engine point at the responsible Trajectory Sequences.
        """
        if not self.is_trained:
            return dict(self._heuristic_instance_scores)
        return self._instance_scores()

    def rank(self) -> list[int]:
        """Bag ids in descending relevance (ties broken by bag id)."""
        scores = self.bag_scores()
        order = np.lexsort(
            (np.array([b.bag_id for b in self.dataset.bags]), -scores)
        )
        return [self.dataset.bags[i].bag_id for i in order]

    def rank_iter(self) -> Iterator[int]:
        """Lazy view of :meth:`rank`.

        The base ranking is one global sort, so this is just an
        iterator over it; engines that can rank incrementally (the
        sharded corpus engine's k-way merge) override it so consumers
        that stop early — ``results(vehicle_class=...)`` walking until
        ``top_k`` matches — never pay for a full materialized ranking.
        """
        return iter(self.rank())

    def top_k(self, k: int) -> list[int]:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        return self.rank()[:k]

    def explain(self, bag_id: int) -> list[InstanceExplanation]:
        """Rank the instances of one bag by current relevance.

        Returns one :class:`InstanceExplanation` per Trajectory Sequence,
        best first — "which vehicles in this Video Sequence made it a
        hit".  Uses the trained model's scores when available, the
        heuristic otherwise.
        """
        bag = self.dataset.bag_by_id(bag_id)
        scores = self.instance_relevance()
        ordered = sorted(bag.instances,
                         key=lambda i: scores[i.instance_id],
                         reverse=True)
        return [
            InstanceExplanation(
                rank=rank,
                instance_id=inst.instance_id,
                track_id=inst.track_id,
                score=float(scores[inst.instance_id]),
                feature_names=self.dataset.feature_names,
                matrix=inst.matrix,
            )
            for rank, inst in enumerate(ordered, start=1)
        ]

    # -- to implement ------------------------------------------------------
    @abstractmethod
    def _retrain(self) -> None:
        """Refresh the internal model after new feedback arrived."""

    @abstractmethod
    def _instance_scores(self) -> dict[int, float]:
        """Relevance score per instance id, given the trained model."""
