"""The paper's MIL retrieval engine: One-class SVM over TS vectors.

Section 5.3: the training set collects the Trajectory Sequences of the
bags the user confirmed relevant; the One-class SVM "learns from the
entire trajectory sequence (TS) within the window" — the flattened
(window x features) vector — with outlier fraction

    delta = 1 - (h / H + z)                      (paper Eq. 9)

where ``h`` is the number of relevant VSs, ``H`` the number of TSs in the
training set and ``z`` a small slack (0.05 in the paper).  Every TS in
the database is then scored by the SVM decision value and each VS by the
maximum over its TSs (the Eq. 3 bag semantics).
"""

from __future__ import annotations

import numpy as np

from repro.core.bags import Bag, MILDataset
from repro.core.base import RetrievalEngine
from repro.errors import ConfigurationError
from repro.svm.kernels import Kernel
from repro.svm.one_class import OneClassSVM
from repro.svm.scaling import StandardScaler
from repro.utils import check_in_range

__all__ = ["MILRetrievalEngine"]


def _parse_policy(policy: str) -> int | None:
    """'all' -> None (no cap); 'top<m>' -> m."""
    if policy == "all":
        return None
    if policy.startswith("top"):
        try:
            m = int(policy[3:])
        except ValueError:
            m = 0
        if m >= 1:
            return m
    raise ConfigurationError(
        f"training_policy must be 'all' or 'top<m>' (m >= 1), got "
        f"{policy!r}"
    )


class MILRetrievalEngine(RetrievalEngine):
    """Interactive MIL retrieval with a One-class SVM core.

    Parameters
    ----------
    dataset:
        The clip's bags/instances for one event model.
    z:
        Slack of Eq. (9); the paper reports z = 0.05 "works well".
    kernel / gamma:
        Passed to :class:`~repro.svm.one_class.OneClassSVM`.  Default is
        RBF with gamma = 1/d on the standardized TS vectors; gamma =
        "scale" is a poor choice here because the training set consists
        of feature *spikes* whose variance is far above the dataset's.
    training_policy:
        How "the highest scored TSs in the relevant VSs" (Section 5.3)
        are collected: ``"top<m>"`` takes the m highest heuristic-scored
        TSs per relevant bag (default ``"top1"``, the paper's literal
        reading), ``"all"`` takes every TS (the reading under which
        Eq. 9's h/H ratio is informative).  Under Eq. 9 the outlier
        fraction expels the collected-but-irrelevant extras.
    nu_bounds:
        Clipping range for the computed outlier fraction.
    warm_start:
        Seed each round's SMO solve with the previous round's alphas
        (matched by instance id, projected to feasibility).  Same optimum
        within solver tolerance, fewer iterations per round.
    learner:
        ``"ocsvm"`` (Schoelkopf's hyperplane machine, the paper's cited
        learner) or ``"svdd"`` (Tax & Duin's hypersphere — the "ball" of
        the paper's Figure 5).  Equivalent rankings under RBF kernels;
        they differ for linear/polynomial kernels.
    """

    def __init__(
        self,
        dataset: MILDataset,
        *,
        z: float = 0.05,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "auto",
        training_policy: str = "top1",
        nu_bounds: tuple[float, float] = (0.05, 0.95),
        warm_start: bool = False,
        learner: str = "ocsvm",
    ) -> None:
        super().__init__(dataset)
        check_in_range("z", z, 0.0, 0.5)
        self._top_m = _parse_policy(training_policy)
        lo, hi = nu_bounds
        check_in_range("nu lower bound", lo, 0.0, 1.0, inclusive=(False, True))
        check_in_range("nu upper bound", hi, lo, 1.0)
        if learner not in ("ocsvm", "svdd"):
            raise ConfigurationError(
                f"learner must be 'ocsvm' or 'svdd', got {learner!r}"
            )
        self.z = float(z)
        self.kernel = kernel
        self.gamma = gamma
        self.training_policy = training_policy
        self.nu_bounds = (float(lo), float(hi))
        self.learner = learner

        self._scaler = StandardScaler()
        instances = dataset.all_instances()
        self._vectors = {
            inst.instance_id: inst.vector for inst in instances
        }
        self._scaler.fit(np.stack([v for v in self._vectors.values()]))
        self._model: OneClassSVM | None = None
        self.warm_start = bool(warm_start)
        self._previous_alpha: dict[int, float] = {}
        self.last_nu_: float | None = None
        self.training_size_: int = 0

    # -- training set construction ----------------------------------------
    def _training_instance_ids(self, relevant_bags: list[Bag]) -> list[int]:
        ids: list[int] = []
        for bag in relevant_bags:
            if not bag.instances:
                continue
            ranked = sorted(
                bag.instances,
                key=lambda i:
                    self._heuristic_instance_scores[i.instance_id],
                reverse=True,
            )
            take = len(ranked) if self._top_m is None else self._top_m
            ids.extend(inst.instance_id for inst in ranked[:take])
        return ids

    def _compute_nu(self, n_relevant_bags: int, n_training: int) -> float:
        nu = 1.0 - (n_relevant_bags / n_training + self.z)
        return float(np.clip(nu, *self.nu_bounds))

    # -- RetrievalEngine hooks ----------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _retrain(self) -> None:
        relevant = [
            self.dataset.bag_by_id(b) for b in self.relevant_bag_ids
        ]
        training_ids = self._training_instance_ids(relevant)
        if not training_ids:
            self._model = None
            return
        x = self._scaler.transform(
            np.stack([self._vectors[i] for i in training_ids])
        )
        nu = self._compute_nu(len(relevant), len(training_ids))
        self.last_nu_ = nu
        self.training_size_ = len(training_ids)
        if self.learner == "svdd":
            from repro.svm.svdd import SVDD

            self._model = SVDD(nu=nu, kernel=self.kernel,
                               gamma=self.gamma).fit(x)
            return
        alpha0 = None
        if self.warm_start and self._previous_alpha:
            alpha0 = np.array([
                self._previous_alpha.get(i, 0.0) for i in training_ids
            ])
        self._model = OneClassSVM(nu=nu, kernel=self.kernel,
                                  gamma=self.gamma).fit(x, alpha0=alpha0)
        if self.warm_start:
            assert self._model.alpha_ is not None
            self._previous_alpha = dict(
                zip(training_ids, self._model.alpha_)
            )

    def _instance_scores(self) -> dict[int, float]:
        assert self._model is not None, "scored before any relevant feedback"
        ids = list(self._vectors)
        x = self._scaler.transform(np.stack([self._vectors[i] for i in ids]))
        decisions = self._model.decision_function(x)
        return dict(zip(ids, decisions.astype(float)))
