"""The paper's MIL retrieval engine: One-class SVM over TS vectors.

Section 5.3: the training set collects the Trajectory Sequences of the
bags the user confirmed relevant; the One-class SVM "learns from the
entire trajectory sequence (TS) within the window" — the flattened
(window x features) vector — with outlier fraction

    delta = 1 - (h / H + z)                      (paper Eq. 9)

where ``h`` is the number of relevant VSs, ``H`` the number of TSs in the
training set and ``z`` a small slack (0.05 in the paper).  Every TS in
the database is then scored by the SVM decision value and each VS by the
maximum over its TSs (the Eq. 3 bag semantics).
"""

from __future__ import annotations

import numpy as np

from repro.core.bags import Bag, MILDataset
from repro.core.base import RetrievalEngine
from repro.errors import ConfigurationError
from repro.svm.gram_cache import GramCache
from repro.svm.kernels import Kernel, resolve_kernel
from repro.svm.one_class import OneClassSVM
from repro.svm.scaling import StandardScaler
from repro.utils import check_in_range

__all__ = ["MILRetrievalEngine"]


def _parse_policy(policy: str) -> int | None:
    """'all' -> None (no cap); 'top<m>' -> m."""
    if policy == "all":
        return None
    if policy.startswith("top"):
        try:
            m = int(policy[3:])
        except ValueError:
            m = 0
        if m >= 1:
            return m
    raise ConfigurationError(
        f"training_policy must be 'all' or 'top<m>' (m >= 1), got "
        f"{policy!r}"
    )


class MILRetrievalEngine(RetrievalEngine):
    """Interactive MIL retrieval with a One-class SVM core.

    Parameters
    ----------
    dataset:
        The clip's bags/instances for one event model.
    z:
        Slack of Eq. (9); the paper reports z = 0.05 "works well".
    kernel / gamma:
        Passed to :class:`~repro.svm.one_class.OneClassSVM`.  Default is
        RBF with gamma = 1/d on the standardized TS vectors; gamma =
        "scale" is a poor choice here because the training set consists
        of feature *spikes* whose variance is far above the dataset's.
    training_policy:
        How "the highest scored TSs in the relevant VSs" (Section 5.3)
        are collected: ``"top<m>"`` takes the m highest heuristic-scored
        TSs per relevant bag (default ``"top1"``, the paper's literal
        reading), ``"all"`` takes every TS (the reading under which
        Eq. 9's h/H ratio is informative).  Under Eq. 9 the outlier
        fraction expels the collected-but-irrelevant extras.
    nu_bounds:
        Clipping range for the computed outlier fraction.
    warm_start:
        Seed each round's SMO solve with the previous round's alphas
        (matched by instance id, projected to feasibility).  Same optimum
        within solver tolerance, fewer iterations per round.
    learner:
        ``"ocsvm"`` (Schoelkopf's hyperplane machine, the paper's cited
        learner) or ``"svdd"`` (Tax & Duin's hypersphere — the "ball" of
        the paper's Figure 5).  Equivalent rankings under RBF kernels;
        they differ for linear/polynomial kernels.
    use_cache:
        Reuse kernel columns between the database matrix and training
        instances across feedback rounds (:class:`GramCache`).  Since
        labels accumulate, a warm round only evaluates the kernel
        against *newly* labelled instances; scores agree with the
        uncached path to floating point tolerance.  Disable to force a
        full kernel evaluation every round.

    The engine materializes one contiguous ``(n_instances, d)`` float64
    matrix and an ``instance_id -> row`` index at construction; training
    and scoring slice rows of the standardized database matrix (computed
    exactly once) instead of re-stacking per-instance vectors per round.
    """

    def __init__(
        self,
        dataset: MILDataset,
        *,
        z: float = 0.05,
        kernel: str | Kernel = "rbf",
        gamma: float | str = "auto",
        training_policy: str = "top1",
        nu_bounds: tuple[float, float] = (0.05, 0.95),
        warm_start: bool = False,
        learner: str = "ocsvm",
        use_cache: bool = True,
    ) -> None:
        super().__init__(dataset)
        check_in_range("z", z, 0.0, 0.5)
        self._top_m = _parse_policy(training_policy)
        lo, hi = nu_bounds
        check_in_range("nu lower bound", lo, 0.0, 1.0, inclusive=(False, True))
        check_in_range("nu upper bound", hi, lo, 1.0)
        if learner not in ("ocsvm", "svdd"):
            raise ConfigurationError(
                f"learner must be 'ocsvm' or 'svdd', got {learner!r}"
            )
        self.z = float(z)
        self.kernel = kernel
        self.gamma = gamma
        self.training_policy = training_policy
        self.nu_bounds = (float(lo), float(hi))
        self.learner = learner

        instances = dataset.all_instances()
        self._instance_ids = [inst.instance_id for inst in instances]
        self._row_of = {iid: r for r, iid in enumerate(self._instance_ids)}
        matrix = np.ascontiguousarray(
            np.stack([inst.vector for inst in instances]), dtype=np.float64)
        self._scaler = StandardScaler().fit(matrix)
        self._database = np.ascontiguousarray(
            self._scaler.transform(matrix))
        self.use_cache = bool(use_cache)
        self._gram_cache = GramCache(self._database) if use_cache else None
        self._round_training_ids: list[int] | None = None
        self._round_kernel: Kernel | None = None
        self._bag_ranked_ids: dict[int, tuple[int, ...]] = {}
        self._rebuild_bag_rankings()
        self._model: OneClassSVM | None = None
        self.warm_start = bool(warm_start)
        self._previous_alpha: dict[int, float] = {}
        self.last_nu_: float | None = None
        self.training_size_: int = 0

    # -- training set construction ----------------------------------------
    def _rebuild_bag_rankings(self) -> None:
        """Precompute each bag's instances in descending heuristic order.

        The training-set policy ("the highest scored TSs in the relevant
        VSs") needs every relevant bag's instances ranked by heuristic
        score; those scores are fixed after construction, so the sort
        happens once here instead of once per bag per feedback round.
        Subclasses that replace ``_heuristic_instance_scores`` (e.g. the
        query-by-example engines) must call this again afterwards.
        """
        scores = self._heuristic_instance_scores
        self._bag_ranked_ids = {
            bag.bag_id: tuple(
                inst.instance_id
                for inst in sorted(bag.instances,
                                   key=lambda i: scores[i.instance_id],
                                   reverse=True)
            )
            for bag in self.dataset.bags
        }

    def _training_instance_ids(self, relevant_bags: list[Bag]) -> list[int]:
        ids: list[int] = []
        for bag in relevant_bags:
            ranked = self._bag_ranked_ids[bag.bag_id]
            take = len(ranked) if self._top_m is None else self._top_m
            ids.extend(ranked[:take])
        return ids

    def _compute_nu(self, n_relevant_bags: int, n_training: int) -> float:
        nu = 1.0 - (n_relevant_bags / n_training + self.z)
        return float(np.clip(nu, *self.nu_bounds))

    # -- RetrievalEngine hooks ----------------------------------------------
    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _retrain(self) -> None:
        relevant = [
            self.dataset.bag_by_id(b) for b in self.relevant_bag_ids
        ]
        training_ids = self._training_instance_ids(relevant)
        if not training_ids:
            self._model = None
            self._round_training_ids = None
            return
        rows = np.asarray([self._row_of[i] for i in training_ids])
        x = self._database[rows]
        nu = self._compute_nu(len(relevant), len(training_ids))
        self.last_nu_ = nu
        self.training_size_ = len(training_ids)
        gram = None
        self._round_training_ids = None
        self._round_kernel = None
        if self._gram_cache is not None:
            # Resolve + prepare exactly as the learner will, so the cached
            # columns and the learner's kernel carry identical parameters.
            kernel = resolve_kernel(self.kernel,
                                    gamma=self.gamma).prepare(x)
            self._gram_cache.ensure(kernel, training_ids, rows)
            gram = self._gram_cache.gram(training_ids, rows)
            self._round_training_ids = training_ids
            self._round_kernel = kernel
        if self.learner == "svdd":
            from repro.svm.svdd import SVDD

            self._model = SVDD(nu=nu, kernel=self.kernel,
                               gamma=self.gamma).fit(x, gram=gram)
            return
        alpha0 = None
        if self.warm_start and self._previous_alpha:
            alpha0 = np.array([
                self._previous_alpha.get(i, 0.0) for i in training_ids
            ])
        self._model = OneClassSVM(nu=nu, kernel=self.kernel,
                                  gamma=self.gamma).fit(x, alpha0=alpha0,
                                                        gram=gram)
        if self.warm_start:
            assert self._model.alpha_ is not None
            self._previous_alpha = dict(
                zip(training_ids, self._model.alpha_)
            )

    def _instance_score_values(self) -> np.ndarray:
        """Database decision values, aligned with the instance row order."""
        assert self._model is not None, "scored before any relevant feedback"
        if self._round_training_ids is not None:
            assert (self._model.support_ is not None
                    and self._gram_cache is not None)
            support_ids = [self._round_training_ids[s]
                           for s in self._model.support_]
            cross = self._gram_cache.cross(support_ids)
            if self.learner == "svdd":
                assert (self._gram_cache is not None
                        and self._round_kernel is not None)
                assert self._round_kernel is not None
                decisions = self._model.decision_function(
                    cross=cross,
                    self_sim=self._gram_cache.diag(self._round_kernel))
            else:
                decisions = self._model.decision_function(cross=cross)
        else:
            decisions = self._model.decision_function(self._database)
        return decisions.astype(float)

    def _instance_scores(self) -> dict[int, float]:
        return dict(zip(self._instance_ids, self._instance_score_values()))
