"""The interactive loop: simulated user + retrieval session.

The paper's protocol (Section 6.2): each round the top 20 Video Sequences
are shown; the user marks each relevant or irrelevant; the engine learns
and re-ranks; five rounds are run (Initial plus four feedback rounds).
:class:`OracleUser` plays the user against simulator ground truth — a VS
is relevant iff a queried incident is visible in its frame window — with
optional label-flip noise to model human error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.bags import Bag
from repro.core.base import RetrievalEngine
from repro.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.sim.ground_truth import GroundTruth
from repro.utils import as_rng, check_in_range

__all__ = ["OracleUser", "MultiClipOracle", "RoundResult",
           "RetrievalSession"]


class OracleUser:
    """Labels bags from ground truth, like the paper's human user.

    Parameters
    ----------
    ground_truth:
        The clip's incident log.
    kinds:
        Incident kinds this user's query targets (None = accidents).
    flip_prob:
        Probability of flipping each label (human labelling noise).
    """

    def __init__(self, ground_truth: GroundTruth,
                 kinds: Iterable[str] | None = None,
                 *, flip_prob: float = 0.0,
                 seed: int | np.random.Generator | None = 0) -> None:
        check_in_range("flip_prob", flip_prob, 0.0, 1.0)
        self.ground_truth = ground_truth
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.flip_prob = float(flip_prob)
        self.rng = as_rng(seed)

    def true_label(self, bag: Bag) -> bool:
        return self.ground_truth.label_window(
            bag.frame_lo, bag.frame_hi,
            self.kinds if self.kinds is not None else None,
        )

    def label(self, bag: Bag) -> bool:
        truth = self.true_label(bag)
        if self.flip_prob > 0 and self.rng.random() < self.flip_prob:
            return not truth
        return truth

    def label_bags(self, bags: Iterable[Bag]) -> dict[int, bool]:
        return {bag.bag_id: self.label(bag) for bag in bags}


class MultiClipOracle:
    """Oracle over a merged corpus: routes each bag to its clip's truth.

    Bags of a merged dataset (see
    :func:`repro.core.bags.merge_datasets`) carry their source clip id;
    this oracle labels each one against the matching ground truth.
    """

    def __init__(self, truths: dict[str, GroundTruth],
                 kinds: Iterable[str] | None = None,
                 *, flip_prob: float = 0.0,
                 seed: int | np.random.Generator | None = 0) -> None:
        if not truths:
            raise ConfigurationError("MultiClipOracle needs >= 1 clip")
        rng = as_rng(seed)
        self.users = {
            clip_id: OracleUser(gt, kinds, flip_prob=flip_prob, seed=rng)
            for clip_id, gt in truths.items()
        }

    def _user_for(self, bag: Bag) -> OracleUser:
        try:
            return self.users[bag.clip_id]
        except KeyError:
            raise ConfigurationError(
                f"bag {bag.bag_id} references unknown clip "
                f"{bag.clip_id!r}"
            ) from None

    def true_label(self, bag: Bag) -> bool:
        return self._user_for(bag).true_label(bag)

    def label(self, bag: Bag) -> bool:
        return self._user_for(bag).label(bag)

    def label_bags(self, bags: Iterable[Bag]) -> dict[int, bool]:
        return {bag.bag_id: self.label(bag) for bag in bags}


@dataclass
class RoundResult:
    """Outcome of one retrieval round."""

    round_index: int
    returned_bag_ids: list[int]
    labels: dict[int, bool]

    @property
    def n_relevant(self) -> int:
        return sum(self.labels.values())

    def accuracy(self) -> float:
        """Fraction of returned bags the user marked relevant (the
        paper's 'accuracy' measure, Section 6.2)."""
        if not self.returned_bag_ids:
            return 0.0
        return self.n_relevant / len(self.returned_bag_ids)


@dataclass
class RetrievalSession:
    """Drive engine/user rounds and record what was shown and labelled."""

    engine: RetrievalEngine
    user: OracleUser
    top_k: int = 20
    rounds: list[RoundResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.top_k <= 0:
            raise ConfigurationError("top_k must be positive")

    def run_round(self) -> RoundResult:
        """One iteration: rank, show top-k, collect labels, learn.

        Each round is a ``rf.round`` span; its wall clock — the paper's
        user-facing latency (ranking + re-training) — also lands in the
        ``rf.round.latency_ms`` histogram.
        """
        obs = get_telemetry()
        with obs.span("rf.round", round=len(self.rounds),
                      top_k=self.top_k) as sp:
            returned = self.engine.top_k(self.top_k)
            bags = [self.engine.dataset.bag_by_id(b) for b in returned]
            labels = self.user.label_bags(bags)
            result = RoundResult(
                round_index=len(self.rounds),
                returned_bag_ids=returned,
                labels=labels,
            )
            self.rounds.append(result)
            self.engine.feed(labels)
            if sp is not None:
                sp.set(returned=len(returned),
                       relevant=result.n_relevant)
        if sp is not None:
            obs.histogram("rf.round.latency_ms").observe(sp.wall_ms)
            obs.gauge("rf.round.ranking_size").set(len(returned))
        return result

    def run(self, n_rounds: int = 5) -> list[RoundResult]:
        """Run the paper's protocol: Initial + (n_rounds - 1) RF rounds."""
        if n_rounds <= 0:
            raise ConfigurationError("n_rounds must be positive")
        for _ in range(n_rounds):
            self.run_round()
        return self.rounds

    def accuracies(self) -> list[float]:
        return [r.accuracy() for r in self.rounds]
