"""Active relevance feedback: spend part of each round exploring.

The paper's protocol shows the user the plain top-k every round — pure
exploitation.  A classic refinement is to reserve a few slots for the
bags the current model is most *uncertain* about (decision value nearest
the boundary): their labels carry the most information for the next
round.  :class:`ActiveRetrievalSession` implements that mix and tracks
both what was shown and how good the pure top-k ranking would be.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import RetrievalEngine
from repro.core.feedback import OracleUser, RetrievalSession, RoundResult
from repro.errors import ConfigurationError

__all__ = ["ActiveRetrievalSession"]


class ActiveRetrievalSession(RetrievalSession):
    """Feedback session that labels top bags *and* uncertain bags.

    Each round shows ``top_k - explore_k`` best-ranked bags plus
    ``explore_k`` unlabeled bags whose scores sit closest to the decision
    boundary (after feedback exists; before that, the exploration slots
    take the bags just below the cut, the "frontier").
    """

    def __init__(self, engine: RetrievalEngine, user: OracleUser,
                 top_k: int = 20, explore_k: int = 5) -> None:
        super().__init__(engine=engine, user=user, top_k=top_k)
        if not 0 <= explore_k < top_k:
            raise ConfigurationError(
                f"explore_k must be in [0, top_k), got {explore_k}"
            )
        self.explore_k = int(explore_k)

    def _exploration_candidates(self, exclude: set[int]) -> list[int]:
        scores = self.engine.bag_scores()
        bags = self.engine.dataset.bags
        unlabeled = [
            (b.bag_id, scores[i]) for i, b in enumerate(bags)
            if b.bag_id not in exclude and b.bag_id not in self.engine.labels
            and np.isfinite(scores[i])
        ]
        if not unlabeled:
            return []
        if self.engine.has_relevant_feedback:
            # One-class decision boundary sits at zero.
            unlabeled.sort(key=lambda pair: abs(pair[1]))
        # Heuristic rounds: candidates are already in frontier order via
        # the ranking; keep score-descending among unlabeled.
        else:
            unlabeled.sort(key=lambda pair: -pair[1])
        return [bag_id for bag_id, _ in unlabeled]

    def run_round(self) -> RoundResult:
        exploit_k = self.top_k - self.explore_k
        ranking = self.engine.rank()
        shown = ranking[:exploit_k]
        explore = self._exploration_candidates(set(shown))
        shown = shown + explore[: self.top_k - len(shown)]
        if len(shown) < self.top_k:
            # Exploration pool exhausted (everything labeled): backfill
            # with the next best-ranked bags so a round always shows
            # top_k results.
            have = set(shown)
            shown += [b for b in ranking
                      if b not in have][: self.top_k - len(shown)]
        bags = [self.engine.dataset.bag_by_id(b) for b in shown]
        labels = self.user.label_bags(bags)
        result = RoundResult(
            round_index=len(self.rounds),
            returned_bag_ids=shown,
            labels=labels,
        )
        self.rounds.append(result)
        self.engine.feed(labels)
        return result

    def ranking_accuracy(self, relevant_bag_ids, k: int | None = None
                         ) -> float:
        """Accuracy@k of the *pure* ranking (what a consumer would see),
        independent of which bags were shown for labelling."""
        from repro.eval.metrics import accuracy_at_k

        return accuracy_at_k(self.engine.rank(),
                             relevant_bag_ids, k or self.top_k)
