"""EM-DD MIL baseline (Zhang & Goldman, paper ref [7]).

EM-DD speeds up and robustifies Diverse Density: the E-step picks, per
bag, the single instance most likely to be the concept under the current
hypothesis; the M-step then solves the much easier single-instance DD
problem; the two steps alternate until the likelihood stops improving.
The paper's review notes EM-DD "is more robust in dealing with
high-dimension data", which is why it is the interesting comparator for
the 9-dimensional TS vectors here.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.core.bags import MILDataset
from repro.core.diverse_density import (
    DiverseDensityEngine,
    dd_instance_prob,
)

__all__ = ["EMDDEngine"]

_PROB_EPS = 1e-10


def _single_instance_nll(params: np.ndarray, positives: np.ndarray,
                         negatives: np.ndarray) -> float:
    """DD objective when each bag is reduced to one responsible instance."""
    d = len(params) // 2
    target, scales = params[:d], params[d:]
    nll = 0.0
    if len(positives):
        p = dd_instance_prob(positives, target, scales)
        nll -= np.sum(np.log(np.maximum(p, _PROB_EPS)))
    if len(negatives):
        p = dd_instance_prob(negatives, target, scales)
        nll -= np.sum(np.log(np.maximum(1.0 - p, _PROB_EPS)))
    return float(nll)


class EMDDEngine(DiverseDensityEngine):
    """Diverse Density trained with the EM-DD alternation."""

    def __init__(self, dataset: MILDataset, *, max_starts: int = 8,
                 max_iter: int = 200, em_iterations: int = 10,
                 em_tol: float = 1e-4) -> None:
        super().__init__(dataset, max_starts=max_starts, max_iter=max_iter)
        self.em_iterations = int(em_iterations)
        self.em_tol = float(em_tol)

    def _em_from_start(self, start: np.ndarray,
                       positive: list[np.ndarray],
                       negative: list[np.ndarray]) -> tuple[float, np.ndarray]:
        d = len(start)
        params = np.concatenate([start, np.full(d, 0.7)])
        best_nll = np.inf
        for _ in range(self.em_iterations):
            target, scales = params[:d], params[d:]
            # E-step: most responsible instance per bag.
            positives = np.stack([
                bag[int(np.argmax(dd_instance_prob(bag, target, scales)))]
                for bag in positive
            ])
            if negative:
                negatives = np.stack([
                    bag[int(np.argmax(dd_instance_prob(bag, target, scales)))]
                    for bag in negative
                ])
            else:
                negatives = np.empty((0, d))
            # M-step: single-instance optimization.
            result = minimize(
                _single_instance_nll,
                params,
                args=(positives, negatives),
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            params = result.x
            nll = float(result.fun)
            if best_nll - nll < self.em_tol:
                best_nll = min(best_nll, nll)
                break
            best_nll = nll
        return best_nll, params

    def _retrain(self) -> None:
        positive = self._bag_matrices(self.relevant_bag_ids)
        negative = self._bag_matrices(self.irrelevant_bag_ids)
        if not positive:
            self.hypothesis_ = None
            return
        d = positive[0].shape[1]
        best_nll, best_params = np.inf, None
        for start in self._starting_points(positive):
            nll, params = self._em_from_start(start, positive, negative)
            if nll < best_nll:
                best_nll, best_params = nll, params
        assert best_params is not None
        self.hypothesis_ = (best_params[:d], best_params[d:])
        self.nll_ = best_nll
