"""The paper's contribution: MIL + relevance-feedback retrieval.

* :mod:`repro.core.bags` — Video Sequences as MIL bags, Trajectory
  Sequences as instances (paper Eq. 3-4).
* :mod:`repro.core.heuristics` — the initial, feedback-free ranking.
* :mod:`repro.core.engine` — the One-class-SVM MIL retrieval engine
  (paper Section 5).
* :mod:`repro.core.weighted_rf` — the weighted relevance-feedback
  baseline the paper compares against (Section 6.2).
* :mod:`repro.core.feedback` — the interactive loop and the oracle user.
* :mod:`repro.core.diverse_density` / :mod:`repro.core.emdd` — extension
  MIL baselines from the paper's literature review (Section 2.1).
"""

from repro.core.bags import Bag, Instance, MILDataset, merge_datasets
from repro.core.base import InstanceExplanation, RetrievalEngine
from repro.core.active import ActiveRetrievalSession
from repro.core.heuristics import heuristic_scores, normalize_features
from repro.core.engine import MILRetrievalEngine
from repro.core.weighted_rf import WeightedRFEngine
from repro.core.feedback import MultiClipOracle, OracleUser, RetrievalSession
from repro.core.diverse_density import DiverseDensityEngine
from repro.core.emdd import EMDDEngine
from repro.core.sharded import (
    CorpusShard,
    CoverageReport,
    ShardOutage,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.core.query_types import (
    CombinedQueryEngine,
    ExampleQueryEngine,
    sketch_to_example,
)

__all__ = [
    "Bag",
    "Instance",
    "MILDataset",
    "merge_datasets",
    "MultiClipOracle",
    "heuristic_scores",
    "normalize_features",
    "MILRetrievalEngine",
    "WeightedRFEngine",
    "OracleUser",
    "RetrievalSession",
    "DiverseDensityEngine",
    "EMDDEngine",
    "ExampleQueryEngine",
    "CombinedQueryEngine",
    "sketch_to_example",
    "RetrievalEngine",
    "InstanceExplanation",
    "ActiveRetrievalSession",
    "ShardSpec",
    "CorpusShard",
    "ShardedCorpus",
    "ShardedRetrievalEngine",
    "ShardOutage",
    "CoverageReport",
]
