"""Typed records stored in the video database catalog."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError

__all__ = ["ClipRecord", "TrackRecord", "LabelRecord", "SessionRecord"]


@dataclass(frozen=True)
class ClipRecord:
    """Catalog entry for one surveillance clip (paper: "organized with
    the corresponding metadata such as the time and place")."""

    clip_id: str
    location: str = ""
    camera: str = ""
    start_time: str = ""  # ISO-8601 wall-clock time of frame 0
    fps: float = 25.0
    n_frames: int = 0
    width: int = 0
    height: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.clip_id:
            raise StorageError("clip_id must be non-empty")
        if self.fps <= 0:
            raise StorageError(f"clip {self.clip_id}: fps must be > 0")

    def extra_json(self) -> str:
        return json.dumps(self.extra, sort_keys=True)

    @staticmethod
    def extra_from_json(text: str) -> dict:
        return json.loads(text) if text else {}


@dataclass(frozen=True)
class TrackRecord:
    """One stored vehicle track: span, size, vehicle class, and the
    compact polynomial trajectory model of paper Section 3.2."""

    clip_id: str
    track_id: int
    first_frame: int
    last_frame: int
    n_points: int
    degree: int
    coeff_x: tuple[float, ...]
    coeff_y: tuple[float, ...]
    shift: float
    scale: float
    rms_error: float
    vehicle_class: str = ""

    def curves(self):
        """Rebuild the (x(t), y(t)) polynomial curves."""
        from repro.trajectory.curve import PolynomialCurve

        return (
            PolynomialCurve(np.asarray(self.coeff_x), shift=self.shift,
                            scale=self.scale),
            PolynomialCurve(np.asarray(self.coeff_y), shift=self.shift,
                            scale=self.scale),
        )

    def position_at(self, frame: float) -> np.ndarray:
        cx, cy = self.curves()
        return np.array([cx(float(frame)), cy(float(frame))])


@dataclass(frozen=True)
class LabelRecord:
    """One relevance-feedback label from one user in one round."""

    clip_id: str
    event_name: str
    bag_id: int
    user_id: str
    round_index: int
    relevant: bool


@dataclass(frozen=True)
class SessionRecord:
    """Durable description of one relevance-feedback session.

    Enough to reconstruct the session on any worker: which clips make
    up the corpus, which engine ranks it, and the engine parameters.
    The feedback itself lives in the ``labels`` table keyed by the same
    ``(corpus_id, event, user_id)`` triple, so reconstruction replays
    it automatically.
    """

    session_id: str
    user_id: str
    corpus_id: str
    event_name: str
    clip_ids: tuple[str, ...]
    engine: str = "mil_ocsvm"
    top_k: int = 20
    params: dict = field(default_factory=dict)
    created_at: str = ""
    last_seen_at: str = ""

    def params_json(self) -> str:
        return json.dumps(self.params, sort_keys=True)

    def clip_ids_json(self) -> str:
        return json.dumps(list(self.clip_ids))
