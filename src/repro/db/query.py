"""Interactive semantic queries over the video database.

A :class:`SemanticQuerySession` binds a stored clip + event model to a
retrieval engine.  Each feedback round is persisted as label records, so
a query can be resumed later ("the training set ... is built up
gradually with the help of the user's feedback", paper Section 1) and
different users' feedback histories stay separate (Section 1's point
that relevance is user-specific).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bags import MILDataset, merge_datasets
from repro.core.base import RetrievalEngine
from repro.core.engine import MILRetrievalEngine
from repro.core.weighted_rf import WeightedRFEngine
from repro.db.database import VideoDatabase
from repro.db.schema import LabelRecord
from repro.errors import ConfigurationError

__all__ = ["SemanticQuerySession", "MultiClipQuerySession",
           "ENGINE_FACTORIES"]

ENGINE_FACTORIES = {
    "mil_ocsvm": MILRetrievalEngine,
    "weighted_rf": WeightedRFEngine,
}


class _QuerySessionBase:
    """Shared engine construction + feedback persistence/resume.

    ``corpus_id`` is the label-table key the feedback is stored under —
    the clip id for single-clip sessions, a derived stable id for merged
    corpora.
    """

    def __init__(
        self,
        db: VideoDatabase,
        corpus_id: str,
        event_name: str,
        dataset: MILDataset,
        *,
        user_id: str = "default",
        engine: str | RetrievalEngine = "mil_ocsvm",
        top_k: int = 20,
        engine_kwargs: dict | None = None,
    ) -> None:
        if top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        self.db = db
        self.corpus_id = corpus_id
        self.event_name = event_name
        self.user_id = user_id
        self.top_k = int(top_k)
        self.dataset = dataset
        if isinstance(engine, RetrievalEngine):
            self.engine = engine
        else:
            try:
                factory = ENGINE_FACTORIES[engine]
            except KeyError:
                raise ConfigurationError(
                    f"unknown engine {engine!r}; available: "
                    f"{sorted(ENGINE_FACTORIES)}"
                ) from None
            self.engine = factory(self.dataset, **(engine_kwargs or {}))
        # Resume: replay this user's stored feedback into the engine.
        stored = db.accumulated_labels(corpus_id, event_name, user_id)
        self.round_index = max(
            (r.round_index + 1
             for r in db.labels(corpus_id, event_name, user_id)),
            default=0,
        )
        if stored:
            self.engine.feed(stored)

    def results(self, *, vehicle_class: str | None = None) -> list[int]:
        """Current top-k bag ids, best first.

        ``vehicle_class`` restricts results to Video Sequences containing
        at least one Trajectory Sequence of a vehicle with that stored
        class ("accidents involving trucks") — combining the metadata and
        semantic sides of the database.
        """
        if vehicle_class is None:
            return self.engine.top_k(self.top_k)
        class_cache: dict[str, dict[int, str]] = {}
        ranking = self.engine.rank()
        out: list[int] = []
        for bag_id in ranking:
            bag = self.dataset.bag_by_id(bag_id)
            if bag.clip_id not in class_cache:
                class_cache[bag.clip_id] = \
                    self.db.vehicle_classes(bag.clip_id)
            classes = class_cache[bag.clip_id]
            if any(classes.get(i.track_id) == vehicle_class
                   for i in bag.instances):
                out.append(bag_id)
            if len(out) >= self.top_k:
                break
        return out

    def result_windows(self) -> list[tuple[int, int, int]]:
        """(bag_id, frame_lo, frame_hi) for the current results — what a
        UI would let the user play back."""
        return [
            (b, self.dataset.bag_by_id(b).frame_lo,
             self.dataset.bag_by_id(b).frame_hi)
            for b in self.results()
        ]

    def feed(self, labels: Mapping[int, bool]) -> None:
        """Apply one round of user feedback; persists and retrains."""
        if not labels:
            raise ConfigurationError("feedback round must label >= 1 bag")
        self.db.add_labels([
            LabelRecord(clip_id=self.corpus_id,
                        event_name=self.event_name,
                        bag_id=int(bag_id), user_id=self.user_id,
                        round_index=self.round_index,
                        relevant=bool(relevant))
            for bag_id, relevant in labels.items()
        ])
        self.round_index += 1
        self.engine.feed(labels)


class SemanticQuerySession(_QuerySessionBase):
    """One user's interactive query against one clip/event dataset."""

    def __init__(
        self,
        db: VideoDatabase,
        clip_id: str,
        event_name: str,
        **kwargs,
    ) -> None:
        super().__init__(db, clip_id, event_name,
                         db.dataset(clip_id, event_name), **kwargs)

    @property
    def clip_id(self) -> str:
        return self.corpus_id


class MultiClipQuerySession(_QuerySessionBase):
    """One query over several clips merged into a single corpus.

    The paper's goal state: "Ideally, all the video clips in a
    transportation surveillance video database shall be mined and
    retrieved as a whole" (Section 6.2).  Feedback is persisted under a
    stable corpus id derived from the (ordered) clip ids, so a resumed
    session over the same clips continues where it left off.  For clips
    from different cameras, normalize the tracks before building the
    stored datasets (see :mod:`repro.vision.calibration`).
    """

    def __init__(
        self,
        db: VideoDatabase,
        clip_ids: list[str],
        event_name: str,
        **kwargs,
    ) -> None:
        if not clip_ids:
            raise ConfigurationError("need >= 1 clip id")
        datasets = [db.dataset(c, event_name) for c in clip_ids]
        corpus_id = "merged:" + "+".join(clip_ids)
        merged = merge_datasets(datasets, merged_id=corpus_id)
        self.clip_ids = list(clip_ids)
        super().__init__(db, corpus_id, event_name, merged, **kwargs)


