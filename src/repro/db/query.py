"""Interactive semantic queries over the video database.

A :class:`SemanticQuerySession` binds a stored clip + event model to a
retrieval engine.  Each feedback round is persisted as label records, so
a query can be resumed later ("the training set ... is built up
gradually with the help of the user's feedback", paper Section 1) and
different users' feedback histories stay separate (Section 1's point
that relevance is user-specific).

Multi-clip queries (:class:`MultiClipQuerySession`) run on the sharded
corpus by default (see :mod:`repro.core.sharded`): clips stay per-shard
instead of being merged into one monolithic dataset, and an optional
heuristic prefilter bounds how many bags per shard the one-class SVM
scores exactly each round.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import partial
from typing import Callable, Mapping

from repro.core.bags import merge_datasets
from repro.core.engine import MILRetrievalEngine
from repro.core.sharded import (
    CoverageReport,
    IVFNominator,
    ShardedCorpus,
    ShardedRetrievalEngine,
    ShardSpec,
)
from repro.core.weighted_rf import WeightedRFEngine
from repro.db.database import VideoDatabase
from repro.db.schema import LabelRecord
from repro.errors import ConfigurationError, SessionConflictError, StorageError
from repro.obs import TailProfiler, get_telemetry, new_query_id, query_context
from repro.reliability.retry import RetryPolicy

__all__ = ["SemanticQuerySession", "MultiClipQuerySession",
           "sharded_corpus", "ENGINE_FACTORIES"]

ENGINE_FACTORIES = {
    "mil_ocsvm": MILRetrievalEngine,
    "weighted_rf": WeightedRFEngine,
}


def sharded_corpus(db: VideoDatabase, clip_ids: list[str],
                   event_name: str, *,
                   retry_policy: RetryPolicy | None = None,
                   clock=None) -> ShardedCorpus:
    """Build a lazily-loading :class:`ShardedCorpus` over stored clips.

    Only catalog metadata is read here (:meth:`VideoDatabase.dataset_meta`);
    each shard's bulk instance matrices load on first use.  Cross-clip
    compatibility (event model, features, windowing) is validated up
    front with the same contract as
    :func:`~repro.core.bags.merge_datasets`.  ``retry_policy`` /
    ``clock`` configure the corpus' shard quarantine backoff schedule
    (see :class:`~repro.core.sharded.ShardedCorpus`).
    """
    if not clip_ids:
        raise ConfigurationError("need >= 1 clip id")
    metas = [db.dataset_meta(c, event_name) for c in clip_ids]
    head = metas[0]
    for meta in metas[1:]:
        if (meta["feature_names"] != head["feature_names"]
                or meta["window_size"] != head["window_size"]
                or meta["sampling_rate"] != head["sampling_rate"]):
            raise ConfigurationError(
                f"dataset {meta['clip_id']!r} is not compatible with "
                f"{head['clip_id']!r} (event/features/windowing differ)"
            )
    specs = [
        ShardSpec(clip_id=meta["clip_id"], n_bags=meta["n_bags"],
                  n_instances=meta["n_instances"],
                  loader=partial(db.dataset, meta["clip_id"], event_name))
        for meta in metas
    ]
    kwargs = {}
    if retry_policy is not None:
        kwargs["retry_policy"] = retry_policy
    if clock is not None:
        kwargs["clock"] = clock
    return ShardedCorpus(specs, corpus_id="merged:" + "+".join(clip_ids),
                         event_name=event_name, **kwargs)


class _QuerySessionBase:
    """Shared engine construction + feedback persistence/resume.

    ``corpus_id`` is the label-table key the feedback is stored under —
    the clip id for single-clip sessions, a derived stable id for merged
    corpora.
    """

    def __init__(
        self,
        db: VideoDatabase,
        corpus_id: str,
        event_name: str,
        dataset,
        *,
        user_id: str = "default",
        engine="mil_ocsvm",
        top_k: int = 20,
        engine_kwargs: dict | None = None,
        engine_factory: Callable[[], object] | None = None,
        ledger: bool = True,
        profiler: TailProfiler | float | None = None,
        query_id: str | None = None,
    ) -> None:
        if top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        if not user_id or ":" in user_id:
            # The ledger key is "user:corpus:event".  The corpus id
            # legitimately contains ':' ("merged:a+b"), so the only way
            # to keep the triple unambiguous is to ban the delimiter in
            # the user field — otherwise tenants "a:b"/corpus "c" and
            # "a"/corpus "b:c" would merge their feedback histories.
            raise ConfigurationError(
                f"user_id must be non-empty and must not contain ':' "
                f"(got {user_id!r})")
        self.db = db
        self.corpus_id = corpus_id
        self.event_name = event_name
        self.user_id = user_id
        self.top_k = int(top_k)
        self.dataset = dataset
        #: Stable identity for the feedback history this session extends
        #: — a resumed session lands in the same ledger session.
        self.session_id = f"{user_id}:{corpus_id}:{event_name}"
        #: Fresh per-session-object correlation id, stamped (via
        #: :func:`repro.obs.query_context`) onto every span and event
        #: either side of the process boundary.
        self.query_id = query_id or new_query_id()
        self.ledger = bool(ledger)
        if isinstance(profiler, (int, float)):
            profiler = TailProfiler(float(profiler))
        self.profiler = profiler
        self._class_cache: dict[str, dict[int, str]] = {}
        self._class_cache_version: int | None = None
        #: Serializes feed/results/resync so one session object can be
        #: shared by service worker threads without interleaving a feed
        #: mid-retrain with a ranking read.
        self._round_lock = threading.RLock()
        if isinstance(engine, str):
            try:
                factory = ENGINE_FACTORIES[engine]
            except KeyError:
                raise ConfigurationError(
                    f"unknown engine {engine!r}; available: "
                    f"{sorted(ENGINE_FACTORIES)}"
                ) from None
            built_kwargs = dict(engine_kwargs or {})
            engine_factory = engine_factory or (
                lambda: factory(self.dataset, **built_kwargs))
            self.engine = engine_factory()
        else:
            self.engine = engine
        #: Rebuilds a fresh, unfed engine over the same corpus — what
        #: :meth:`resync` replays the stored history into.  ``None``
        #: for externally-owned engine instances.
        self._engine_factory = engine_factory
        # Resume: replay this user's stored feedback into the engine.
        self.round_index = self._replay_stored(self.engine)

    def _replay_stored(self, engine) -> int:
        """Feed the stored label history into ``engine``; return the
        next round index the history expects."""
        stored = self.db.accumulated_labels(
            self.corpus_id, self.event_name, self.user_id)
        round_index = max(
            (r.round_index + 1
             for r in self.db.labels(self.corpus_id, self.event_name,
                                     self.user_id)),
            default=0,
        )
        if stored:
            engine.feed(stored)
        return round_index

    def resync(self) -> int:
        """Rebuild the engine from the stored label history.

        The recovery path after :class:`~repro.errors.SessionConflictError`:
        another worker committed a round this session object never saw,
        so its engine state has diverged from the durable history.  A
        fresh engine is built (same corpus — shard Gram caches are
        reused) and the winning history replayed into it; returns the
        next round index.  Requires the session to own its engine
        construction (an engine *name* or ``engine_factory``).
        """
        with self._round_lock:
            if self._engine_factory is None:
                raise ConfigurationError(
                    "cannot resync a session built around an externally-"
                    "owned engine instance; pass an engine name or an "
                    "engine_factory")
            engine = self._engine_factory()
            self.round_index = self._replay_stored(engine)
            self.engine = engine
            return self.round_index

    def _before_round(self) -> None:
        """Hook called before every ranking read and feedback round.

        Sessions over live corpora override this to sync with the
        database (pick up bags appended by a concurrent streaming
        ingest) without being recreated.  Default: no-op.
        """

    @contextmanager
    def _observed_round(self, op: str):
        """Correlate, time, optionally profile and ledger one round.

        Everything under the ``with`` runs inside this session's
        :func:`~repro.obs.query_context`, so every span down to shard
        scoring, IVF probes and Gram-cache fills carries the same
        ``query_id`` — including worker-process spans, which re-enter
        the context via :func:`~repro.obs.carry_context`.  On success
        the round is appended to the quality ledger; a ledger write
        failure (busy/read-only catalog) degrades to a warning event,
        never a failed query.
        """
        obs = get_telemetry()
        if not obs.enabled:
            yield
            return
        round_index = self.round_index
        hits0 = obs.counter("svm.gram.columns_reused").total()
        miss0 = obs.counter("svm.gram.columns_computed").total()
        span_mark = len(obs.spans) + obs.spans_dropped
        prof = None
        with query_context(self.query_id, session_id=self.session_id,
                           query_round=round_index):
            if self.profiler is not None:
                prof_cm = self.profiler.round(
                    op=op, corpus=self.corpus_id, round=round_index)
            else:
                prof_cm = None
            with obs.span("query.round", op=op,
                          corpus=self.corpus_id) as sp:
                if prof_cm is not None:
                    with prof_cm as prof:
                        yield
                else:
                    yield
        latency_ms = sp.wall_ms
        obs.histogram("query.round.latency_ms").observe(latency_ms, op=op)
        if not self.ledger:
            return
        # Only spans recorded by this round (the buffer is append-only
        # modulo rotation) and stamped with this query's id belong in
        # the ledger row.
        start = max(0, span_mark - obs.spans_dropped)
        round_spans = [
            s.to_event() for s in obs.spans[start:]
            if s.attrs.get("query_id") == self.query_id
        ]
        detail = self._round_detail(
            obs, op, latency_ms, round_spans, hits0, miss0)
        profile_text = ""
        if prof is not None and prof.kept:
            profile_text = prof.collapsed()
            detail["profile_wall_ms"] = round(prof.wall_ms, 3)
        try:
            self.db.record_query_round(
                session_id=self.session_id, query_id=self.query_id,
                corpus_id=self.corpus_id, event=self.event_name,
                user_id=self.user_id, round_index=round_index, op=op,
                latency_ms=latency_ms, detail=detail, spans=round_spans,
                profile=profile_text)
            obs.counter("query.ledger_rounds").inc(op=op)
        except (StorageError, OSError) as exc:
            obs.event("query.ledger_write_failed", level="warning",
                      corpus=self.corpus_id, op=op,
                      reason=f"{type(exc).__name__}: {exc}")

    def _round_detail(self, obs, op: str, latency_ms: float,
                      round_spans: list[dict],
                      hits0: float, miss0: float) -> dict:
        """The per-round quality record the ledger persists."""
        stages: dict[str, dict] = {}
        for event in round_spans:
            if event["name"] == "query.round":
                continue
            agg = stages.setdefault(
                event["name"], {"count": 0, "wall_ms": 0.0})
            agg["count"] += 1
            agg["wall_ms"] = round(agg["wall_ms"] + event["wall_ms"], 3)
        hits = obs.counter("svm.gram.columns_reused").total() - hits0
        misses = obs.counter("svm.gram.columns_computed").total() - miss0
        looked_up = hits + misses
        detail: dict = {
            "op": op,
            "latency_ms": round(latency_ms, 3),
            "stages": stages,
            "cache": {
                "gram_columns_reused": hits,
                "gram_columns_computed": misses,
                "hit_rate": (hits / looked_up) if looked_up else None,
            },
        }
        stats = getattr(self.engine, "last_round_stats", None)
        if stats is not None:
            detail["engine"] = stats
            detail["nomination_recall"] = stats.get("nomination_recall")
            detail["bags_scanned_fraction"] = stats.get(
                "bags_scanned_fraction")
        coverage = getattr(self.engine, "last_coverage", None)
        if coverage is not None:
            detail["coverage"] = {
                "summary": coverage.summary(),
                "degraded": coverage.degraded,
                "shards_served": len(coverage.shards_served),
                "shards_total": coverage.shards_total,
                "bags_missing": coverage.bags_missing,
                "bags_total": coverage.bags_total,
            }
        return detail

    def _vehicle_classes(self, clip_id: str) -> dict[int, str]:
        """Session-level vehicle-class cache, one DB read per clip.

        Keyed on :attr:`VideoDatabase.metadata_version` so the cache is
        dropped wholesale when tracks are rewritten or clips change
        under the session.
        """
        version = self.db.metadata_version
        if version != self._class_cache_version:
            self._class_cache = {}
            self._class_cache_version = version
        classes = self._class_cache.get(clip_id)
        if classes is None:
            classes = self._class_cache[clip_id] = \
                self.db.vehicle_classes(clip_id)
        return classes

    def results(self, *, vehicle_class: str | None = None) -> list[int]:
        """Current top-k bag ids, best first.

        ``vehicle_class`` restricts results to Video Sequences containing
        at least one Trajectory Sequence of a vehicle with that stored
        class ("accidents involving trucks") — combining the metadata and
        semantic sides of the database.  The ranking is walked lazily
        (:meth:`RetrievalEngine.rank_iter`) and stops at ``top_k``
        matches, so clips past the cut are neither scored globally nor
        have their metadata fetched.
        """
        with self._round_lock, self._observed_round("results"):
            self._before_round()
            if vehicle_class is None:
                return self.engine.top_k(self.top_k)
            out: list[int] = []
            for bag_id in self.engine.rank_iter():
                bag = self.dataset.bag_by_id(bag_id)
                classes = self._vehicle_classes(bag.clip_id)
                if any(classes.get(i.track_id) == vehicle_class
                       for i in bag.instances):
                    out.append(bag_id)
                    if len(out) >= self.top_k:
                        break
            return out

    def result_windows(self) -> list[tuple[int, int, int]]:
        """(bag_id, frame_lo, frame_hi) for the current results — what a
        UI would let the user play back."""
        return [
            (b, self.dataset.bag_by_id(b).frame_lo,
             self.dataset.bag_by_id(b).frame_hi)
            for b in self.results()
        ]

    def feed(self, labels: Mapping[int, bool]) -> None:
        """Apply one round of user feedback; persists and retrains.

        The engine goes first: ``RetrievalEngine.feed`` validates bag
        ids before mutating anything, so a rejected round (e.g. an
        unknown bag id) leaves both the engine and the stored label
        history untouched — persisting first would desync the two
        permanently and make resume replay labels the engine never
        accepted.

        The persist carries an optimistic round guard: if another
        worker resumed the same session id and committed this round
        first, :class:`~repro.errors.SessionConflictError` propagates —
        but only after this session has :meth:`resync`'d onto the
        winning history, so the caller may simply re-apply the user's
        labels against the refreshed ranking.
        """
        if not labels:
            raise ConfigurationError("feedback round must label >= 1 bag")
        with self._round_lock, self._observed_round("feed"):
            self._before_round()
            self.engine.feed(labels)
            try:
                self.db.add_labels([
                    LabelRecord(clip_id=self.corpus_id,
                                event_name=self.event_name,
                                bag_id=int(bag_id), user_id=self.user_id,
                                round_index=self.round_index,
                                relevant=bool(relevant))
                    for bag_id, relevant in labels.items()
                ], expect_round=self.round_index)
            except SessionConflictError:
                get_telemetry().counter("query.session_conflicts").inc()
                if self._engine_factory is not None:
                    self.resync()
                raise
            self.round_index += 1


class SemanticQuerySession(_QuerySessionBase):
    """One user's interactive query against one clip/event dataset."""

    def __init__(
        self,
        db: VideoDatabase,
        clip_id: str,
        event_name: str,
        **kwargs,
    ) -> None:
        super().__init__(db, clip_id, event_name,
                         db.dataset(clip_id, event_name), **kwargs)

    @property
    def clip_id(self) -> str:
        return self.corpus_id


class MultiClipQuerySession(_QuerySessionBase):
    """One query over several clips as a single retrievable corpus.

    The paper's goal state: "Ideally, all the video clips in a
    transportation surveillance video database shall be mined and
    retrieved as a whole" (Section 6.2).  Feedback is persisted under a
    stable corpus id derived from the (ordered) clip ids, so a resumed
    session over the same clips continues where it left off.  For clips
    from different cameras, normalize the tracks before building the
    stored datasets (see :mod:`repro.vision.calibration`).

    By default the corpus stays sharded per clip
    (:class:`~repro.core.sharded.ShardedRetrievalEngine`): shards load
    lazily, each ranking round merges per-shard rankings, and
    ``candidates_per_shard=M`` caps how many bags per shard the
    one-class SVM scores exactly (the rest keep their cheap heuristic
    order after all candidates — a recall/latency knob).  With
    ``candidates_per_shard=None`` the ranking matches the monolithic
    merged-dataset path.  ``nominator="ivf"`` switches stage one from
    the static heuristic prefilter to a probe of each shard's IVF index
    (``index_cells`` / ``nprobe`` tune it) — sublinear nomination with
    the same exact rerank.  ``sharded=False``, a non-default engine
    name, or an explicit engine instance fall back to
    :func:`~repro.core.bags.merge_datasets`.

    ``failure_policy`` picks what happens when a member clip's storage
    fails mid-session: ``"strict"`` (default) raises
    :class:`~repro.errors.ShardUnavailableError`, ``"degraded"`` keeps
    the session alive on the healthy shards and reports the skipped
    coverage via :attr:`last_coverage` /
    :meth:`results_with_coverage`.  Failed shards sit on a
    ``retry_policy`` backoff schedule and rejoin automatically once
    their artifacts heal.
    """

    def __init__(
        self,
        db: VideoDatabase,
        clip_ids: list[str],
        event_name: str,
        *,
        sharded: bool = True,
        candidates_per_shard: int | None = None,
        nominator: str = "heuristic",
        index_cells: int | None = None,
        nprobe: int | None = None,
        failure_policy: str = "strict",
        retry_policy: RetryPolicy | None = None,
        clock=None,
        corpus: ShardedCorpus | None = None,
        **kwargs,
    ) -> None:
        if not clip_ids:
            raise ConfigurationError("need >= 1 clip id")
        corpus_id = "merged:" + "+".join(clip_ids)
        self.clip_ids = list(clip_ids)
        engine = kwargs.get("engine", "mil_ocsvm")
        use_sharded = sharded and engine == "mil_ocsvm"
        self._sharded = use_sharded
        self._db_version = db.metadata_version
        if failure_policy not in ("strict", "degraded"):
            raise ConfigurationError(
                f"failure_policy must be 'strict' or 'degraded', got "
                f"{failure_policy!r}")
        if failure_policy == "degraded" and not use_sharded:
            raise ConfigurationError(
                "failure_policy='degraded' requires the sharded "
                "'mil_ocsvm' path (the shard is the failure domain; a "
                "merged dataset has none)")
        self.failure_policy = failure_policy
        if candidates_per_shard is not None and not use_sharded:
            raise ConfigurationError(
                "candidates_per_shard requires the sharded 'mil_ocsvm' "
                "path (sharded=True and no custom engine)"
            )
        if nominator not in ("heuristic", "ivf"):
            raise ConfigurationError(
                f"nominator must be 'heuristic' or 'ivf', got {nominator!r}"
            )
        if nominator == "ivf" and not use_sharded:
            raise ConfigurationError(
                "nominator='ivf' requires the sharded 'mil_ocsvm' path "
                "(sharded=True and no custom engine)"
            )
        if (nprobe is not None or index_cells is not None) \
                and nominator != "ivf":
            raise ConfigurationError(
                "nprobe/index_cells only apply to the IVF nominator "
                "(pass nominator='ivf')"
            )
        if corpus is not None and not use_sharded:
            raise ConfigurationError(
                "an injected corpus requires the sharded 'mil_ocsvm' "
                "path (sharded=True and no custom engine)")
        if use_sharded:
            if corpus is None:
                corpus = sharded_corpus(db, clip_ids, event_name,
                                        retry_policy=retry_policy,
                                        clock=clock)
            elif corpus.corpus_id != corpus_id \
                    or corpus.event_name != event_name:
                raise ConfigurationError(
                    f"injected corpus {corpus.corpus_id!r}/"
                    f"{corpus.event_name!r} does not match this "
                    f"session's {corpus_id!r}/{event_name!r}")
            engine_kwargs = kwargs.pop("engine_kwargs", None) or {}
            if nominator == "ivf":
                ivf_kwargs = {}
                if index_cells is not None:
                    ivf_kwargs["n_cells"] = int(index_cells)
                if nprobe is not None:
                    ivf_kwargs["nprobe"] = int(nprobe)
                engine_kwargs["nominator"] = IVFNominator(**ivf_kwargs)
            engine_kwargs.setdefault("failure_policy", failure_policy)

            def make_engine(corpus=corpus,
                            candidates=candidates_per_shard,
                            engine_kwargs=dict(engine_kwargs)):
                return ShardedRetrievalEngine(
                    corpus, candidates_per_shard=candidates,
                    **engine_kwargs)

            kwargs["engine"] = make_engine()
            kwargs["engine_factory"] = make_engine
            super().__init__(db, corpus_id, event_name, corpus, **kwargs)
        else:
            datasets = [db.dataset(c, event_name) for c in clip_ids]
            merged = merge_datasets(datasets, merged_id=corpus_id)
            super().__init__(db, corpus_id, event_name, merged, **kwargs)

    def _before_round(self) -> None:
        """Pick up bags a streaming ingest appended since the last round.

        Keyed on :attr:`VideoDatabase.metadata_version` (bumped by every
        dataset write), so idle rounds cost one integer compare.  On a
        change, each member clip's catalog counts are re-read and the
        live shard absorbs the delta in place
        (:meth:`~repro.core.sharded.ShardedCorpus.refresh`); the engine
        notices the corpus mutation on its next rank/feed and retrains
        over the grown corpus.  The merged (non-sharded) path keeps its
        construction-time snapshot.

        Under ``failure_policy="degraded"`` a clip whose catalog read or
        delta load fails (busy database, corrupt blob) does not kill the
        round: the failure is logged, the round proceeds on the state the
        session already has, and — because the version cursor only
        advances when *every* clip refreshed cleanly — the failed
        refresh is retried on the next round.
        """
        if not self._sharded:
            return
        version = self.db.metadata_version
        if version == self._db_version:
            return
        all_refreshed = True
        for clip_id in self.clip_ids:
            try:
                meta = self.db.dataset_meta(clip_id, self.event_name)
                self.dataset.refresh(clip_id, n_bags=meta["n_bags"],
                                     n_instances=meta["n_instances"])
            except (StorageError, OSError) as exc:
                # ShardUnavailableError lands here too: refresh() has
                # already quarantined the shard and the engine's next
                # round reports it in its coverage.
                if self.failure_policy == "strict":
                    raise
                all_refreshed = False
                get_telemetry().event(
                    "session.refresh_deferred", level="warning",
                    clip=clip_id, corpus=self.corpus_id,
                    reason=f"{type(exc).__name__}: {exc}")
        if all_refreshed:
            self._db_version = version

    @property
    def last_coverage(self) -> CoverageReport | None:
        """Shard coverage of the most recent ranking round.

        ``None`` for non-sharded sessions and before the first round;
        otherwise a :class:`~repro.core.sharded.CoverageReport` whose
        ``degraded`` flag says whether any quarantined shard was skipped
        (only possible under ``failure_policy="degraded"``).
        """
        return getattr(self.engine, "last_coverage", None)

    def results_with_coverage(
        self, *, vehicle_class: str | None = None,
    ) -> tuple[list[int], CoverageReport | None]:
        """:meth:`results` plus the coverage report for that round —
        the honest-degraded contract in one call."""
        ids = self.results(vehicle_class=vehicle_class)
        return ids, self.last_coverage
