"""Array side-store for bulk numeric data (track points, TS matrices).

The SQLite catalog keeps relational metadata; large numeric arrays live
in an :class:`ArrayStore`.  Two backends: an in-memory dict (used with
``:memory:`` databases and in tests) and an npz-file-per-key directory
store for persistence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.errors import StorageError

__all__ = ["ArrayStore", "InMemoryArrayStore", "NpzArrayStore"]


def _check_key(key: str) -> str:
    if not key or any(part in ("", ".", "..") for part in key.split("/")):
        raise StorageError(f"invalid array key {key!r}")
    for ch in key:
        if not (ch.isalnum() or ch in "/_-."):
            raise StorageError(
                f"invalid character {ch!r} in array key {key!r}"
            )
    return key


class ArrayStore(ABC):
    """Keyed storage of named numpy array bundles."""

    @abstractmethod
    def save(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Store a bundle of named arrays under ``key`` (overwrites)."""

    @abstractmethod
    def load(self, key: str) -> dict[str, np.ndarray]:
        """Load a bundle; raises :class:`StorageError` if missing."""

    @abstractmethod
    def exists(self, key: str) -> bool: ...

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove a bundle (no-op when missing)."""

    @abstractmethod
    def keys(self) -> list[str]: ...


class InMemoryArrayStore(ArrayStore):
    """Dict-backed store; lifetime of the process."""

    def __init__(self) -> None:
        self._data: dict[str, dict[str, np.ndarray]] = {}

    def save(self, key, arrays):
        _check_key(key)
        self._data[key] = {k: np.asarray(v).copy() for k, v in arrays.items()}

    def load(self, key):
        try:
            bundle = self._data[_check_key(key)]
        except KeyError:
            raise StorageError(f"no arrays stored under {key!r}") from None
        return {k: v.copy() for k, v in bundle.items()}

    def exists(self, key):
        return key in self._data

    def delete(self, key):
        self._data.pop(key, None)

    def keys(self):
        return sorted(self._data)


class NpzArrayStore(ArrayStore):
    """One compressed .npz file per key under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / (_check_key(key).replace("/", "__") + ".npz")

    def save(self, key, arrays):
        path = self._path(key)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **{k: np.asarray(v)
                                       for k, v in arrays.items()})
        tmp.replace(path)  # atomic on POSIX: readers never see half a file

    def load(self, key):
        path = self._path(key)
        if not path.exists():
            raise StorageError(f"no arrays stored under {key!r}")
        with np.load(path) as bundle:
            return {k: bundle[k].copy() for k in bundle.files}

    def exists(self, key):
        return self._path(key).exists()

    def delete(self, key):
        path = self._path(key)
        if path.exists():
            path.unlink()

    def keys(self):
        return sorted(
            p.stem.replace("__", "/") for p in self.root.glob("*.npz")
        )
