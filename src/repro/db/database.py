"""SQLite-backed video database catalog.

Stores clips with their metadata, per-vehicle tracks (raw points in the
array store plus the paper's compact polynomial trajectory model in the
catalog), MIL datasets (Video Sequences / Trajectory Sequences per event
model) and accumulated relevance-feedback labels.

The database is the integration point of the whole system: the ingest
path (simulate/record -> segment -> track -> model -> window) writes,
the query path (:mod:`repro.db.query`) reads and appends labels.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path

import numpy as np

from repro.core.bags import Bag, Instance, MILDataset
from repro.db.schema import ClipRecord, LabelRecord, SessionRecord, TrackRecord
from repro.db.storage import ArrayStore, InMemoryArrayStore, NpzArrayStore
from repro.errors import (
    ConfigurationError,
    DatabaseBusyError,
    SessionConflictError,
    StorageError,
)
from repro.trajectory.curve import TrajectoryModel

__all__ = ["VideoDatabase", "ThreadLocalVideoDatabase", "connect_sqlite"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS clips (
    clip_id     TEXT PRIMARY KEY,
    location    TEXT NOT NULL DEFAULT '',
    camera      TEXT NOT NULL DEFAULT '',
    start_time  TEXT NOT NULL DEFAULT '',
    fps         REAL NOT NULL,
    n_frames    INTEGER NOT NULL,
    width       INTEGER NOT NULL,
    height      INTEGER NOT NULL,
    extra       TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS tracks (
    clip_id     TEXT NOT NULL REFERENCES clips(clip_id),
    track_id    INTEGER NOT NULL,
    first_frame INTEGER NOT NULL,
    last_frame  INTEGER NOT NULL,
    n_points    INTEGER NOT NULL,
    degree      INTEGER NOT NULL,
    coeff_x     TEXT NOT NULL,
    coeff_y     TEXT NOT NULL,
    shift       REAL NOT NULL,
    scale       REAL NOT NULL,
    rms_error   REAL NOT NULL,
    vehicle_class TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (clip_id, track_id)
);
CREATE TABLE IF NOT EXISTS datasets (
    clip_id       TEXT NOT NULL REFERENCES clips(clip_id),
    event         TEXT NOT NULL,
    feature_names TEXT NOT NULL,
    window_size   INTEGER NOT NULL,
    sampling_rate INTEGER NOT NULL,
    PRIMARY KEY (clip_id, event)
);
CREATE TABLE IF NOT EXISTS bags (
    clip_id  TEXT NOT NULL,
    event    TEXT NOT NULL,
    bag_id   INTEGER NOT NULL,
    frame_lo INTEGER NOT NULL,
    frame_hi INTEGER NOT NULL,
    PRIMARY KEY (clip_id, event, bag_id)
);
CREATE TABLE IF NOT EXISTS instances (
    clip_id     TEXT NOT NULL,
    event       TEXT NOT NULL,
    instance_id INTEGER NOT NULL,
    bag_id      INTEGER NOT NULL,
    track_id    INTEGER NOT NULL,
    PRIMARY KEY (clip_id, event, instance_id)
);
CREATE TABLE IF NOT EXISTS labels (
    clip_id     TEXT NOT NULL,
    event       TEXT NOT NULL,
    bag_id      INTEGER NOT NULL,
    user_id     TEXT NOT NULL,
    round_index INTEGER NOT NULL,
    relevant    INTEGER NOT NULL,
    PRIMARY KEY (clip_id, event, bag_id, user_id, round_index)
);
CREATE INDEX IF NOT EXISTS idx_labels_query
    ON labels (clip_id, event, user_id);
CREATE TABLE IF NOT EXISTS artifact_entries (
    key         TEXT PRIMARY KEY,
    clip_id     TEXT NOT NULL,
    stage       TEXT NOT NULL,
    fingerprint TEXT NOT NULL DEFAULT '',
    n_bytes     INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_artifact_clip
    ON artifact_entries (clip_id);
CREATE TABLE IF NOT EXISTS ingest_events (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    clip_id       TEXT NOT NULL,
    event         TEXT NOT NULL,
    segment_index INTEGER NOT NULL,
    state         TEXT NOT NULL,
    frame_lo      INTEGER NOT NULL DEFAULT 0,
    frame_hi      INTEGER NOT NULL DEFAULT 0,
    n_bags        INTEGER NOT NULL DEFAULT 0,
    n_instances   INTEGER NOT NULL DEFAULT 0,
    detail        TEXT NOT NULL DEFAULT '',
    created_at    TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_ingest_clip
    ON ingest_events (clip_id, event, segment_index);
CREATE TABLE IF NOT EXISTS run_metrics (
    run_id     TEXT PRIMARY KEY,
    command    TEXT NOT NULL DEFAULT '',
    created_at TEXT NOT NULL DEFAULT '',
    wall_ms    REAL NOT NULL DEFAULT 0,
    summary    TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS query_rounds (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    session_id  TEXT NOT NULL,
    query_id    TEXT NOT NULL,
    corpus_id   TEXT NOT NULL,
    event       TEXT NOT NULL,
    user_id     TEXT NOT NULL DEFAULT 'default',
    round_index INTEGER NOT NULL,
    op          TEXT NOT NULL,
    created_at  TEXT NOT NULL DEFAULT '',
    latency_ms  REAL NOT NULL DEFAULT 0,
    detail      TEXT NOT NULL DEFAULT '{}',
    spans       TEXT NOT NULL DEFAULT '[]',
    profile     TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_query_rounds_session
    ON query_rounds (session_id, round_index);
CREATE INDEX IF NOT EXISTS idx_query_rounds_query
    ON query_rounds (query_id, round_index);
CREATE TABLE IF NOT EXISTS sessions (
    session_id   TEXT PRIMARY KEY,
    user_id      TEXT NOT NULL,
    corpus_id    TEXT NOT NULL,
    event        TEXT NOT NULL,
    clip_ids     TEXT NOT NULL DEFAULT '[]',
    engine       TEXT NOT NULL DEFAULT 'mil_ocsvm',
    top_k        INTEGER NOT NULL DEFAULT 20,
    params       TEXT NOT NULL DEFAULT '{}',
    created_at   TEXT NOT NULL DEFAULT '',
    last_seen_at TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_sessions_user
    ON sessions (user_id, corpus_id, event);
"""


#: Legal per-segment ingest states, in normal progression order.
INGEST_STATES = ("pending", "built", "appended", "failed")


def _utc_now() -> str:
    import time

    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _translate_sqlite_error(exc: sqlite3.Error) -> StorageError:
    """Map a raw sqlite3 error onto the library's storage taxonomy.

    Lock contention that outlived ``busy_timeout`` becomes the
    retryable :class:`DatabaseBusyError`; everything else (corruption,
    malformed schema, constraint violations on damaged catalogs)
    becomes a plain :class:`StorageError` so callers never have to
    catch ``sqlite3.*`` directly.
    """
    message = str(exc)
    lowered = message.lower()
    if isinstance(exc, sqlite3.OperationalError) and (
            "locked" in lowered or "busy" in lowered):
        return DatabaseBusyError(f"sqlite catalog busy: {message}")
    return StorageError(f"sqlite catalog error: {message}")


class _CatalogConnection:
    """Typed-error boundary around one ``sqlite3.Connection``.

    Every statement and transaction exit translates ``sqlite3.Error``
    into :class:`StorageError`/:class:`DatabaseBusyError`, so the rest
    of the system (query sessions, streaming ingest, the sharded
    corpus's failure domain) sees one coherent error taxonomy whatever
    the backing connection does — including fault-injected ones.
    """

    def __init__(self, raw: sqlite3.Connection) -> None:
        self._raw = raw

    def execute(self, sql: str, params=()):
        try:
            return self._raw.execute(sql, params)
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc) from exc

    def executemany(self, sql: str, rows):
        try:
            return self._raw.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc) from exc

    def executescript(self, script: str):
        try:
            return self._raw.executescript(script)
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc) from exc

    def commit(self) -> None:
        try:
            self._raw.commit()
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc) from exc

    def rollback(self) -> None:
        try:
            self._raw.rollback()
        except sqlite3.Error as exc:
            raise _translate_sqlite_error(exc) from exc

    def close(self) -> None:
        self._raw.close()

    def __enter__(self) -> "_CatalogConnection":
        self._raw.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            return self._raw.__exit__(exc_type, exc, tb)
        except sqlite3.Error as raw_exc:
            raise _translate_sqlite_error(raw_exc) from raw_exc


def connect_sqlite(path: str, *, busy_timeout_ms: int = 5000,
                   factory=None,
                   check_same_thread: bool = True) -> sqlite3.Connection:
    """Open one catalog connection with the contention-safe pragmas.

    This is the connection factory the whole db layer funnels through:
    WAL journaling (file-backed databases only — readers never block
    the writer and vice versa, so a concurrent
    :class:`~repro.db.ingest.StreamingIngest` and open query sessions
    stop racing), ``busy_timeout`` so residual lock waits spin inside
    SQLite instead of failing instantly, and ``synchronous=NORMAL``
    (durable-enough-with-WAL fsync policy).  ``factory`` overrides the
    raw ``sqlite3.connect`` — the deterministic fault injector hooks in
    here.
    """
    raw_connect = factory or sqlite3.connect
    kwargs = {"timeout": busy_timeout_ms / 1000.0}
    if not check_same_thread:
        # Only forwarded when relaxed, so existing connection factories
        # (the fault injector) keep their two-argument signature.  The
        # stdlib sqlite3 module is compiled in serialized mode
        # (``sqlite3.threadsafety == 3``), making cross-thread use of
        # one connection safe; ThreadLocalVideoDatabase still gives
        # each thread its own connection and relies on this only so a
        # shutdown thread may close them all.
        kwargs["check_same_thread"] = False
    conn = raw_connect(path, **kwargs)
    try:
        conn.execute("PRAGMA foreign_keys = ON")
        conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        if path != ":memory:":
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
    except sqlite3.Error as exc:
        conn.close()
        raise _translate_sqlite_error(exc) from exc
    return conn


def _floats_to_text(values) -> str:
    return ",".join(repr(float(v)) for v in values)


def _text_to_floats(text: str) -> tuple[float, ...]:
    return tuple(float(v) for v in text.split(",")) if text else ()


class VideoDatabase:
    """Catalog + array store facade.

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` (default) for an ephemeral
        database with an in-memory array store.
    array_store:
        Override the bulk-array backend; defaults to in-memory for
        ``:memory:`` and an npz directory next to the SQLite file
        otherwise.
    busy_timeout_ms:
        How long SQLite spins on a held lock before surfacing
        :class:`~repro.errors.DatabaseBusyError` (WAL mode makes
        reader/writer contention rare; this covers writer/writer).
    connection_factory:
        Override the raw ``sqlite3.connect`` used to open the catalog
        (see :func:`connect_sqlite`); the deterministic fault injector
        (:mod:`repro.reliability.faults`) hooks in here.
    quick_check:
        Run ``PRAGMA quick_check`` on open (file-backed databases
        only) and raise :class:`~repro.errors.StorageError` on
        corruption instead of failing later mid-query.  ``repro
        verify-db`` opens with this disabled so a damaged catalog can
        still be inspected and repaired.
    check_same_thread:
        Passed through to ``sqlite3.connect``.  Leave at ``True`` for
        single-threaded use; :class:`ThreadLocalVideoDatabase` opens
        its per-thread instances with ``False`` so its shutdown thread
        can close every connection.
    """

    def __init__(self, path: str | Path = ":memory:",
                 array_store: ArrayStore | None = None, *,
                 busy_timeout_ms: int = 5000,
                 connection_factory=None,
                 quick_check: bool = True,
                 check_same_thread: bool = True) -> None:
        self.path = str(path)
        self._metadata_version = 0
        self._conn = _CatalogConnection(connect_sqlite(
            self.path, busy_timeout_ms=busy_timeout_ms,
            factory=connection_factory,
            check_same_thread=check_same_thread))
        if quick_check and self.path != ":memory:":
            self._quick_check()
        self._conn.executescript(_SCHEMA)
        if array_store is not None:
            self.arrays = array_store
        elif self.path == ":memory:":
            self.arrays = InMemoryArrayStore()
        else:
            self.arrays = NpzArrayStore(Path(self.path).parent
                                        / (Path(self.path).stem + "_arrays"))

    def close(self) -> None:
        self._conn.close()

    @property
    def metadata_version(self) -> int:
        """Monotonic counter bumped by clip/track metadata mutations.

        Query sessions key their per-clip caches (e.g. vehicle classes)
        on this, so a cache survives arbitrarily many reads but is
        invalidated the moment tracks are rewritten or clips come and
        go through this connection.
        """
        return self._metadata_version

    def __enter__(self) -> "VideoDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- clips
    def add_clip(self, record: ClipRecord) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO clips VALUES (?,?,?,?,?,?,?,?,?)",
                (record.clip_id, record.location, record.camera,
                 record.start_time, record.fps, record.n_frames,
                 record.width, record.height, record.extra_json()),
            )

    def clip(self, clip_id: str) -> ClipRecord:
        row = self._conn.execute(
            "SELECT * FROM clips WHERE clip_id = ?", (clip_id,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no clip {clip_id!r} in database")
        return ClipRecord(
            clip_id=row[0], location=row[1], camera=row[2], start_time=row[3],
            fps=row[4], n_frames=row[5], width=row[6], height=row[7],
            extra=ClipRecord.extra_from_json(row[8]),
        )

    def clips(self, *, location: str | None = None,
              camera: str | None = None) -> list[ClipRecord]:
        """List clips, optionally filtered by metadata (the paper's
        time/place organization)."""
        sql = "SELECT clip_id FROM clips"
        clauses, params = [], []
        if location is not None:
            clauses.append("location = ?")
            params.append(location)
        if camera is not None:
            clauses.append("camera = ?")
            params.append(camera)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY clip_id"
        return [self.clip(r[0]) for r in self._conn.execute(sql, params)]

    # ------------------------------------------------------------ tracks
    def add_tracks(self, clip_id: str, tracks, *, degree: int = 4,
                   vehicle_classes: dict[int, str] | None = None) -> None:
        """Store tracks: raw points in the array store, polynomial
        trajectory models (paper Section 3.2) in the catalog."""
        self.clip(clip_id)  # must exist
        classes = vehicle_classes or {}
        rows = []
        for track in tracks:
            model = TrajectoryModel.from_track(track, degree=degree)
            rows.append((
                clip_id, track.track_id, track.first_frame, track.last_frame,
                len(track), model.degree,
                _floats_to_text(model.curve_x.coefficients),
                _floats_to_text(model.curve_y.coefficients),
                model.curve_x.shift, model.curve_x.scale,
                model.rms_error, classes.get(track.track_id, ""),
            ))
            self.arrays.save(
                f"{clip_id}/track-{track.track_id}",
                {"frames": track.frame_array(), "points": track.point_array()},
            )
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO tracks VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?)", rows)
        self._metadata_version += 1

    def track_records(self, clip_id: str) -> list[TrackRecord]:
        rows = self._conn.execute(
            "SELECT * FROM tracks WHERE clip_id = ? ORDER BY track_id",
            (clip_id,),
        ).fetchall()
        return [
            TrackRecord(
                clip_id=r[0], track_id=r[1], first_frame=r[2],
                last_frame=r[3], n_points=r[4], degree=r[5],
                coeff_x=_text_to_floats(r[6]), coeff_y=_text_to_floats(r[7]),
                shift=r[8], scale=r[9], rms_error=r[10], vehicle_class=r[11],
            )
            for r in rows
        ]

    def track_points(self, clip_id: str,
                     track_id: int) -> tuple[np.ndarray, np.ndarray]:
        bundle = self.arrays.load(f"{clip_id}/track-{track_id}")
        return bundle["frames"], bundle["points"]

    def vehicle_classes(self, clip_id: str) -> dict[int, str]:
        """track_id -> stored vehicle class (empty string if unknown)."""
        rows = self._conn.execute(
            "SELECT track_id, vehicle_class FROM tracks WHERE clip_id = ?",
            (clip_id,),
        ).fetchall()
        return {int(r[0]): r[1] for r in rows}

    # ---------------------------------------------------------- datasets
    def add_dataset(self, dataset: MILDataset) -> None:
        """Store a MIL dataset (bags + instances + feature matrices)."""
        self.clip(dataset.clip_id)
        instances = dataset.all_instances()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO datasets VALUES (?,?,?,?,?)",
                (dataset.clip_id, dataset.event_name,
                 ",".join(dataset.feature_names), dataset.window_size,
                 dataset.sampling_rate),
            )
            self._conn.execute(
                "DELETE FROM bags WHERE clip_id=? AND event=?",
                (dataset.clip_id, dataset.event_name))
            self._conn.execute(
                "DELETE FROM instances WHERE clip_id=? AND event=?",
                (dataset.clip_id, dataset.event_name))
            self._conn.executemany(
                "INSERT INTO bags VALUES (?,?,?,?,?)",
                [(dataset.clip_id, dataset.event_name, b.bag_id,
                  b.frame_lo, b.frame_hi) for b in dataset.bags],
            )
            self._conn.executemany(
                "INSERT INTO instances VALUES (?,?,?,?,?)",
                [(dataset.clip_id, dataset.event_name, i.instance_id,
                  i.bag_id, i.track_id) for i in instances],
            )
        if instances:
            self.arrays.save(
                f"{dataset.clip_id}/dataset-{dataset.event_name}",
                {
                    "instance_ids": np.array(
                        [i.instance_id for i in instances]),
                    "matrices": np.stack([i.matrix for i in instances]),
                },
            )
        self._metadata_version += 1

    def append_dataset(self, delta: MILDataset, *,
                       segment: tuple[int, int, int] | None = None) -> None:
        """Append a streamed delta to a stored dataset, exactly-once.

        ``delta`` holds newly final bags whose ids extend the stored
        dataset (the streaming emitter numbers them exactly as the batch
        pipeline would).  Re-appending the same delta is idempotent: the
        catalog rows are upserted and the array bundle is rebuilt with
        the delta's instance ids filtered out of the existing rows
        first.  When ``segment`` — ``(segment_index, frame_lo,
        frame_hi)`` — is given, an ``appended`` row lands in the
        ``ingest_events`` log *in the same transaction* as the catalog
        rows, so a killed ingest either durably appended the segment or
        left no trace of it; the resume replays it without duplicates.
        """
        self.clip(delta.clip_id)
        meta = self._conn.execute(
            "SELECT feature_names, window_size, sampling_rate FROM datasets"
            " WHERE clip_id=? AND event=?",
            (delta.clip_id, delta.event_name)).fetchone()
        if meta is not None:
            stored = (tuple(meta[0].split(",")), int(meta[1]), int(meta[2]))
            ours = (tuple(delta.feature_names), int(delta.window_size),
                    int(delta.sampling_rate))
            if stored != ours:
                raise StorageError(
                    f"dataset delta for clip {delta.clip_id!r} / event "
                    f"{delta.event_name!r} does not match the stored "
                    f"dataset: {ours} != {stored}")
        instances = delta.all_instances()
        if instances:
            key = f"{delta.clip_id}/dataset-{delta.event_name}"
            delta_ids = {i.instance_id for i in instances}
            ids = [i.instance_id for i in instances]
            mats = [i.matrix for i in instances]
            if self.arrays.exists(key):
                bundle = self.arrays.load(key)
                keep = [k for k, iid in enumerate(bundle["instance_ids"])
                        if int(iid) not in delta_ids]
                ids = [int(bundle["instance_ids"][k]) for k in keep] + ids
                mats = [bundle["matrices"][k] for k in keep] + mats
            # The bulk write lands before the catalog commit: a crash in
            # between leaves orphan matrices (harmless — readers key off
            # the catalog) and no ``appended`` row, so resume re-appends.
            self.arrays.save(key, {
                "instance_ids": np.array(ids),
                "matrices": np.stack(mats),
            })
        with self._conn:
            if meta is None:
                self._conn.execute(
                    "INSERT INTO datasets VALUES (?,?,?,?,?)",
                    (delta.clip_id, delta.event_name,
                     ",".join(delta.feature_names), delta.window_size,
                     delta.sampling_rate))
            self._conn.executemany(
                "INSERT OR REPLACE INTO bags VALUES (?,?,?,?,?)",
                [(delta.clip_id, delta.event_name, b.bag_id,
                  b.frame_lo, b.frame_hi) for b in delta.bags])
            self._conn.executemany(
                "INSERT OR REPLACE INTO instances VALUES (?,?,?,?,?)",
                [(delta.clip_id, delta.event_name, i.instance_id,
                  i.bag_id, i.track_id) for i in instances])
            if segment is not None:
                seg, lo, hi = segment
                self._conn.execute(
                    "INSERT INTO ingest_events (clip_id, event,"
                    " segment_index, state, frame_lo, frame_hi, n_bags,"
                    " n_instances, detail, created_at)"
                    " VALUES (?,?,?,?,?,?,?,?,?,?)",
                    (delta.clip_id, delta.event_name, int(seg), "appended",
                     int(lo), int(hi), len(delta.bags), len(instances),
                     "", _utc_now()))
        self._metadata_version += 1

    # ----------------------------------------------------- ingest journal
    def record_ingest_event(self, clip_id: str, event_name: str,
                            segment_index: int, state: str, *,
                            frame_lo: int = 0, frame_hi: int = 0,
                            n_bags: int = 0, n_instances: int = 0,
                            detail: str = "") -> None:
        """Append one row to the per-segment ingest journal.

        The journal is append-only; the *latest* row per ``(clip, event,
        segment)`` is that segment's current state (see
        :meth:`ingest_state`).  ``appended`` rows are normally written
        by :meth:`append_dataset` inside the catalog transaction — use
        this directly for ``pending``/``built``/``failed`` transitions.
        """
        if state not in INGEST_STATES:
            raise StorageError(
                f"unknown ingest state {state!r}; expected one of "
                f"{INGEST_STATES}")
        with self._conn:
            self._conn.execute(
                "INSERT INTO ingest_events (clip_id, event, segment_index,"
                " state, frame_lo, frame_hi, n_bags, n_instances, detail,"
                " created_at) VALUES (?,?,?,?,?,?,?,?,?,?)",
                (clip_id, event_name, int(segment_index), state,
                 int(frame_lo), int(frame_hi), int(n_bags),
                 int(n_instances), detail, _utc_now()))

    def ingest_state(self, clip_id: str, event_name: str) -> dict[int, dict]:
        """Current state per segment: latest journal row wins.

        Returns ``{segment_index: {state, frame_lo, frame_hi, n_bags,
        n_instances, detail, created_at}}`` — the resume scan skips
        segments whose latest state is ``appended``.
        """
        rows = self._conn.execute(
            "SELECT segment_index, state, frame_lo, frame_hi, n_bags,"
            " n_instances, detail, created_at FROM ingest_events"
            " WHERE clip_id=? AND event=? ORDER BY id",
            (clip_id, event_name)).fetchall()
        state: dict[int, dict] = {}
        for seg, st, lo, hi, nb, ni, detail, created in rows:
            state[int(seg)] = {
                "state": st, "frame_lo": int(lo), "frame_hi": int(hi),
                "n_bags": int(nb), "n_instances": int(ni),
                "detail": detail, "created_at": created,
            }
        return state

    def ingest_log(self, clip_id: str,
                   event_name: str | None = None) -> list[dict]:
        """Full append-only journal for a clip, in write order."""
        sql = ("SELECT event, segment_index, state, frame_lo, frame_hi,"
               " n_bags, n_instances, detail, created_at FROM ingest_events"
               " WHERE clip_id=?")
        params: list = [clip_id]
        if event_name is not None:
            sql += " AND event=?"
            params.append(event_name)
        sql += " ORDER BY id"
        return [
            {"event": r[0], "segment_index": int(r[1]), "state": r[2],
             "frame_lo": int(r[3]), "frame_hi": int(r[4]),
             "n_bags": int(r[5]), "n_instances": int(r[6]),
             "detail": r[7], "created_at": r[8]}
            for r in self._conn.execute(sql, params).fetchall()
        ]

    def dataset(self, clip_id: str, event_name: str) -> MILDataset:
        """Reconstruct a stored MIL dataset."""
        meta = self._conn.execute(
            "SELECT feature_names, window_size, sampling_rate FROM datasets"
            " WHERE clip_id=? AND event=?", (clip_id, event_name),
        ).fetchone()
        if meta is None:
            raise StorageError(
                f"no dataset for clip {clip_id!r} / event {event_name!r}"
            )
        feature_names = tuple(meta[0].split(","))
        matrices: dict[int, np.ndarray] = {}
        key = f"{clip_id}/dataset-{event_name}"
        if self.arrays.exists(key):
            bundle = self.arrays.load(key)
            for iid, matrix in zip(bundle["instance_ids"],
                                   bundle["matrices"]):
                matrices[int(iid)] = matrix
        inst_rows = self._conn.execute(
            "SELECT instance_id, bag_id, track_id FROM instances"
            " WHERE clip_id=? AND event=? ORDER BY instance_id",
            (clip_id, event_name),
        ).fetchall()
        missing = [iid for iid, _, _ in inst_rows if iid not in matrices]
        if missing:
            raise StorageError(
                f"array bundle for clip {clip_id!r} / event {event_name!r}"
                f" is missing {len(missing)} instance matrice(s)"
                f" (first: {missing[0]}) — run 'repro verify-db --db"
                f" {self.path} --repair' to prune or rebuild")
        by_bag: dict[int, list[Instance]] = {}
        for iid, bag_id, track_id in inst_rows:
            by_bag.setdefault(bag_id, []).append(
                Instance(instance_id=iid, bag_id=bag_id, track_id=track_id,
                         matrix=matrices[iid])
            )
        bag_rows = self._conn.execute(
            "SELECT bag_id, frame_lo, frame_hi FROM bags"
            " WHERE clip_id=? AND event=? ORDER BY bag_id",
            (clip_id, event_name),
        ).fetchall()
        bags = [
            Bag(bag_id=bid, clip_id=clip_id, frame_lo=lo, frame_hi=hi,
                instances=tuple(by_bag.get(bid, ())))
            for bid, lo, hi in bag_rows
        ]
        return MILDataset(clip_id=clip_id, event_name=event_name,
                          feature_names=feature_names,
                          window_size=meta[1], sampling_rate=meta[2],
                          bags=bags)

    def dataset_meta(self, clip_id: str, event_name: str) -> dict:
        """Catalog-only summary of a stored dataset (no bulk-array read).

        Returns ``{clip_id, event_name, feature_names, window_size,
        sampling_rate, n_bags, n_instances}``.  The sharded retrieval
        corpus builds its per-clip :class:`ShardSpec` table from this —
        fixing every shard's global id range up front — and only loads
        the instance matrices of shards that are actually scored.
        """
        meta = self._conn.execute(
            "SELECT feature_names, window_size, sampling_rate FROM datasets"
            " WHERE clip_id=? AND event=?", (clip_id, event_name),
        ).fetchone()
        if meta is None:
            raise StorageError(
                f"no dataset for clip {clip_id!r} / event {event_name!r}"
            )
        n_bags = self._conn.execute(
            "SELECT COUNT(*) FROM bags WHERE clip_id=? AND event=?",
            (clip_id, event_name)).fetchone()[0]
        n_instances = self._conn.execute(
            "SELECT COUNT(*) FROM instances WHERE clip_id=? AND event=?",
            (clip_id, event_name)).fetchone()[0]
        return {
            "clip_id": clip_id,
            "event_name": event_name,
            "feature_names": tuple(meta[0].split(",")),
            "window_size": int(meta[1]),
            "sampling_rate": int(meta[2]),
            "n_bags": int(n_bags),
            "n_instances": int(n_instances),
        }

    def events_for(self, clip_id: str) -> list[str]:
        rows = self._conn.execute(
            "SELECT event FROM datasets WHERE clip_id=? ORDER BY event",
            (clip_id,)).fetchall()
        return [r[0] for r in rows]

    # ------------------------------------------------------------ labels
    def add_labels(self, labels: list[LabelRecord], *,
                   expect_round: int | None = None) -> None:
        """Persist one batch of relevance-feedback labels.

        With ``expect_round`` set, the insert becomes an optimistic
        concurrency check: inside a single ``BEGIN IMMEDIATE``
        transaction (so no other writer can slip between the check and
        the insert) the stored history's next round for the batch's
        ``(clip_id, event, user_id)`` head must equal ``expect_round``,
        otherwise nothing is written and
        :class:`~repro.errors.SessionConflictError` is raised.  This is
        what stops two workers that resumed the same session from both
        committing "round N" and silently merging their rounds.
        """
        rows = [(rec.clip_id, rec.event_name, rec.bag_id, rec.user_id,
                 rec.round_index, int(rec.relevant)) for rec in labels]
        if expect_round is None:
            with self._conn:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO labels VALUES (?,?,?,?,?,?)",
                    rows)
            return
        heads = {(rec.clip_id, rec.event_name, rec.user_id)
                 for rec in labels}
        if len(heads) != 1:
            raise ConfigurationError(
                "add_labels(expect_round=...) guards exactly one "
                f"session's history; got {len(heads)} distinct "
                "(clip_id, event, user_id) heads")
        clip_id, event_name, user_id = next(iter(heads))
        # BEGIN IMMEDIATE takes the write lock *before* the guard
        # SELECT; a plain ``with self._conn:`` would autocommit the
        # SELECT (legacy isolation) and leave a check-then-insert race
        # window between processes.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT MAX(round_index) FROM labels"
                " WHERE clip_id=? AND event=? AND user_id=?",
                (clip_id, event_name, user_id)).fetchone()
            stored_next = (row[0] + 1) if row and row[0] is not None else 0
            if stored_next != expect_round:
                raise SessionConflictError(
                    f"{user_id}:{clip_id}:{event_name}",
                    expected_round=expect_round,
                    stored_next_round=stored_next)
            self._conn.executemany(
                "INSERT OR REPLACE INTO labels VALUES (?,?,?,?,?,?)", rows)
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise

    def labels(self, clip_id: str, event_name: str,
               user_id: str | None = None) -> list[LabelRecord]:
        sql = ("SELECT clip_id, event, bag_id, user_id, round_index,"
               " relevant FROM labels WHERE clip_id=? AND event=?")
        params: list = [clip_id, event_name]
        if user_id is not None:
            sql += " AND user_id=?"
            params.append(user_id)
        sql += " ORDER BY round_index, bag_id"
        return [
            LabelRecord(clip_id=r[0], event_name=r[1], bag_id=r[2],
                        user_id=r[3], round_index=r[4], relevant=bool(r[5]))
            for r in self._conn.execute(sql, params)
        ]

    def accumulated_labels(self, clip_id: str, event_name: str,
                           user_id: str) -> dict[int, bool]:
        """Latest label per bag for one user (later rounds win)."""
        out: dict[int, bool] = {}
        for rec in self.labels(clip_id, event_name, user_id):
            out[rec.bag_id] = rec.relevant
        return out

    # ---------------------------------------------------------- sessions
    def register_session(self, record: SessionRecord) -> None:
        """Upsert a durable session description (service resume point).

        The first registration's ``created_at`` is preserved; repeated
        registrations (a worker re-opening the session) refresh
        ``last_seen_at`` and the engine configuration.
        """
        now = _utc_now()
        with self._conn:
            self._conn.execute(
                "INSERT INTO sessions VALUES (?,?,?,?,?,?,?,?,?,?)"
                " ON CONFLICT(session_id) DO UPDATE SET"
                " engine=excluded.engine, top_k=excluded.top_k,"
                " params=excluded.params,"
                " last_seen_at=excluded.last_seen_at",
                (record.session_id, record.user_id, record.corpus_id,
                 record.event_name, record.clip_ids_json(), record.engine,
                 int(record.top_k), record.params_json(),
                 record.created_at or now, record.last_seen_at or now))

    def session_record(self, session_id: str) -> SessionRecord:
        row = self._conn.execute(
            "SELECT session_id, user_id, corpus_id, event, clip_ids,"
            " engine, top_k, params, created_at, last_seen_at"
            " FROM sessions WHERE session_id = ?", (session_id,)).fetchone()
        if row is None:
            raise StorageError(f"no session record {session_id!r}")
        return SessionRecord(
            session_id=row[0], user_id=row[1], corpus_id=row[2],
            event_name=row[3], clip_ids=tuple(json.loads(row[4])),
            engine=row[5], top_k=int(row[6]), params=json.loads(row[7]),
            created_at=row[8], last_seen_at=row[9])

    def session_records(self) -> list[SessionRecord]:
        ids = [r[0] for r in self._conn.execute(
            "SELECT session_id FROM sessions ORDER BY session_id")]
        return [self.session_record(sid) for sid in ids]

    # --------------------------------------------------- artifact store
    def record_artifact_entries(self, entries) -> None:
        """Persist artifact-store metadata (pipeline cache provenance).

        ``entries`` is what ``ArtifactStore.entries()`` returns: dicts
        with ``key`` plus optional ``clip_id``/``stage``/``fingerprint``/
        ``n_bytes``.  The catalog row makes cache contents queryable next
        to the clips they derive from (and survives store directory
        moves).
        """
        rows = [
            (e["key"], str(e.get("clip_id", "")), str(e.get("stage", "")),
             str(e.get("fingerprint", "")), int(e.get("n_bytes", 0)))
            for e in entries
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO artifact_entries VALUES "
                "(?,?,?,?,?)", rows)

    def artifact_entries(self, clip_id: str | None = None) -> list[dict]:
        """Recorded artifact-store entries, optionally for one clip."""
        sql = ("SELECT key, clip_id, stage, fingerprint, n_bytes "
               "FROM artifact_entries")
        params: list = []
        if clip_id is not None:
            sql += " WHERE clip_id = ?"
            params.append(clip_id)
        sql += " ORDER BY clip_id, stage, key"
        return [
            {"key": r[0], "clip_id": r[1], "stage": r[2],
             "fingerprint": r[3], "n_bytes": r[4]}
            for r in self._conn.execute(sql, params)
        ]

    # ------------------------------------------------------ run metrics
    def record_run_metrics(self, run_id: str, command: str,
                           summary: dict, *, created_at: str = "",
                           wall_ms: float = 0.0) -> None:
        """Persist one run's telemetry summary (see
        :func:`repro.obs.report.run_summary`); ``repro stats`` reads it
        back.  Re-recording a ``run_id`` overwrites it."""
        import json

        if not run_id:
            raise StorageError("run_id must be non-empty")
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO run_metrics VALUES (?,?,?,?,?)",
                (run_id, command, created_at, float(wall_ms),
                 json.dumps(summary, sort_keys=True)),
            )

    def run_metrics(self, run_id: str | None = None) -> list[dict]:
        """Stored run summaries, newest first (all, or one by id)."""
        import json

        sql = ("SELECT run_id, command, created_at, wall_ms, summary "
               "FROM run_metrics")
        params: list = []
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params.append(run_id)
        sql += " ORDER BY created_at DESC, run_id DESC"
        return [
            {"run_id": r[0], "command": r[1], "created_at": r[2],
             "wall_ms": r[3], "summary": json.loads(r[4])}
            for r in self._conn.execute(sql, params)
        ]

    # ---------------------------------------------------- quality ledger
    def record_query_round(self, *, session_id: str, query_id: str,
                           corpus_id: str, event: str, round_index: int,
                           op: str, user_id: str = "default",
                           latency_ms: float = 0.0,
                           detail: dict | None = None,
                           spans: list | None = None,
                           profile: str = "",
                           created_at: str = "") -> None:
        """Append one round to the quality ledger.

        ``detail`` is the per-round quality record (stage latency
        breakdown, cache hit rates, nomination recall, coverage);
        ``spans`` the serialized span events of the round so ``repro
        explain`` can rebuild the trace tree offline; ``profile`` a
        collapsed-stack tail profile when one was captured.  Append-only
        by design — re-running a round adds a row, history is evidence.
        """
        import json

        if not session_id or not query_id:
            raise StorageError(
                "session_id and query_id must be non-empty")
        with self._conn:
            self._conn.execute(
                "INSERT INTO query_rounds (session_id, query_id, "
                "corpus_id, event, user_id, round_index, op, created_at, "
                "latency_ms, detail, spans, profile) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (session_id, query_id, corpus_id, event, user_id,
                 int(round_index), op, created_at or _utc_now(),
                 float(latency_ms),
                 json.dumps(detail or {}, sort_keys=True),
                 json.dumps(spans or []),
                 profile),
            )

    def query_rounds(self, *, session_id: str | None = None,
                     query_id: str | None = None,
                     round_index: int | None = None) -> list[dict]:
        """Ledger rows in recording order, optionally filtered."""
        import json

        sql = ("SELECT session_id, query_id, corpus_id, event, user_id, "
               "round_index, op, created_at, latency_ms, detail, spans, "
               "profile FROM query_rounds")
        clauses, params = [], []
        if session_id is not None:
            clauses.append("session_id = ?")
            params.append(session_id)
        if query_id is not None:
            clauses.append("query_id = ?")
            params.append(query_id)
        if round_index is not None:
            clauses.append("round_index = ?")
            params.append(int(round_index))
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        return [
            {"session_id": r[0], "query_id": r[1], "corpus_id": r[2],
             "event": r[3], "user_id": r[4], "round_index": r[5],
             "op": r[6], "created_at": r[7], "latency_ms": r[8],
             "detail": json.loads(r[9]), "spans": json.loads(r[10]),
             "profile": r[11]}
            for r in self._conn.execute(sql, params)
        ]

    def query_sessions(self) -> list[dict]:
        """One row per ledger session: identity, round count, last seen."""
        sql = ("SELECT session_id, query_id, corpus_id, event, user_id, "
               "COUNT(*), MAX(round_index), MAX(created_at) "
               "FROM query_rounds "
               "GROUP BY session_id, query_id "
               "ORDER BY MAX(id)")
        return [
            {"session_id": r[0], "query_id": r[1], "corpus_id": r[2],
             "event": r[3], "user_id": r[4], "rounds": r[5],
             "last_round": r[6], "last_at": r[7]}
            for r in self._conn.execute(sql)
        ]

    # ------------------------------------------------------- maintenance
    def _quick_check(self) -> None:
        """Fail fast on a corrupt catalog (``PRAGMA quick_check``)."""
        problems = self._run_quick_check()
        if problems != "ok":
            raise StorageError(
                f"database {self.path!r} failed quick_check: "
                f"{problems} — run 'repro verify-db "
                f"--db {self.path}' to inspect and repair")

    def _run_quick_check(self) -> str:
        """``PRAGMA quick_check`` as a string: ``"ok"`` or the problems.

        Severe corruption makes the pragma itself raise instead of
        returning problem rows; either way the caller gets a report,
        not an exception — ``verify-db`` must work on exactly the
        databases that are broken.
        """
        try:
            rows = [r[0] for r in
                    self._conn.execute("PRAGMA quick_check").fetchall()]
        except StorageError as exc:
            return str(exc)
        return "ok" if rows == ["ok"] else "; ".join(rows[:5])

    def verify(self, *, repair: bool = False,
               artifact_store=None) -> dict:
        """Cross-check the catalog against the bulk-array store.

        Checks, per stored dataset, that every catalog instance row has
        its feature matrix in the array bundle and vice versa (the
        torn state a crash between the bulk-array write and the catalog
        commit can leave), plus a fresh ``PRAGMA quick_check``.

        With ``repair=True`` damaged datasets are rebuilt: preferably
        from the content-addressed pipeline artifact store (pass the
        :class:`~repro.pipeline.store.DiskArtifactStore` whose
        ``windows``-stage entries were recorded via
        :meth:`record_artifact_entries` — the stored
        :class:`MILDataset` is re-added wholesale), otherwise by
        pruning: orphan matrices are dropped from the bundle and
        catalog rows whose matrices are gone are deleted, which
        restores loadability at the cost of the missing instances.

        Returns a report dict: ``{quick_check, datasets_checked,
        issues: [{clip_id, event, problem, missing_matrices,
        orphan_matrices, action}], repaired, healthy}``.
        """
        from repro.obs import get_telemetry

        obs = get_telemetry()
        report: dict = {"quick_check": self._run_quick_check(),
                        "datasets_checked": 0,
                        "issues": [], "repaired": 0}
        pairs = self._conn.execute(
            "SELECT clip_id, event FROM datasets"
            " ORDER BY clip_id, event").fetchall()
        for clip_id, event in pairs:
            report["datasets_checked"] += 1
            issue = self._verify_dataset(clip_id, event)
            if issue is None:
                continue
            issue["action"] = "reported"
            if repair:
                issue["action"] = self._repair_dataset(
                    clip_id, event, issue, artifact_store)
                if issue["action"] != "reported":
                    report["repaired"] += 1
            obs.event("db.dataset_damaged", level="warning",
                      clip=clip_id, event_name=event,
                      problem=issue["problem"], action=issue["action"])
            report["issues"].append(issue)
        report["healthy"] = (report["quick_check"] == "ok"
                             and not report["issues"])
        return report

    def _verify_dataset(self, clip_id: str, event: str) -> dict | None:
        """One dataset's catalog-vs-bundle consistency; None if healthy."""
        catalog_ids = {
            int(r[0]) for r in self._conn.execute(
                "SELECT instance_id FROM instances"
                " WHERE clip_id=? AND event=?", (clip_id, event))
        }
        key = f"{clip_id}/dataset-{event}"
        issue = {"clip_id": clip_id, "event": event,
                 "missing_matrices": 0, "orphan_matrices": 0}
        if not self.arrays.exists(key):
            if not catalog_ids:
                return None  # empty dataset needs no bundle
            issue.update(problem="missing-bundle",
                         missing_matrices=len(catalog_ids))
            return issue
        try:
            bundle_ids = {int(i)
                          for i in self.arrays.load(key)["instance_ids"]}
        except (StorageError, OSError, KeyError, ValueError) as exc:
            issue.update(problem=f"unreadable-bundle ({exc})",
                         missing_matrices=len(catalog_ids))
            return issue
        missing = catalog_ids - bundle_ids
        orphans = bundle_ids - catalog_ids
        if not missing and not orphans:
            return None
        issue.update(problem="catalog-bundle-mismatch",
                     missing_matrices=len(missing),
                     orphan_matrices=len(orphans))
        return issue

    def _repair_dataset(self, clip_id: str, event: str, issue: dict,
                        artifact_store) -> str:
        """Repair one damaged dataset; returns the action taken."""
        if artifact_store is not None:
            dataset = self._dataset_from_artifacts(
                clip_id, event, artifact_store)
            if dataset is not None:
                self.add_dataset(dataset)
                return "rebuilt-from-artifacts"
        # Prune to the intersection: keep only instances whose catalog
        # row AND matrix both survive, so dataset() loads again.
        key = f"{clip_id}/dataset-{event}"
        keep_ids: set[int] = set()
        if self.arrays.exists(key):
            try:
                bundle = self.arrays.load(key)
            except (StorageError, OSError):
                bundle = None
            if bundle is not None:
                catalog_ids = {
                    int(r[0]) for r in self._conn.execute(
                        "SELECT instance_id FROM instances"
                        " WHERE clip_id=? AND event=?", (clip_id, event))
                }
                keep = [k for k, iid in enumerate(bundle["instance_ids"])
                        if int(iid) in catalog_ids]
                keep_ids = {int(bundle["instance_ids"][k]) for k in keep}
                if keep:
                    self.arrays.save(key, {
                        "instance_ids": np.array(
                            [int(bundle["instance_ids"][k]) for k in keep]),
                        "matrices": np.stack(
                            [bundle["matrices"][k] for k in keep]),
                    })
                else:
                    self.arrays.delete(key)
        with self._conn:
            if keep_ids:
                placeholders = ",".join("?" * len(keep_ids))
                self._conn.execute(
                    f"DELETE FROM instances WHERE clip_id=? AND event=?"
                    f" AND instance_id NOT IN ({placeholders})",
                    (clip_id, event, *sorted(keep_ids)))
            else:
                self._conn.execute(
                    "DELETE FROM instances WHERE clip_id=? AND event=?",
                    (clip_id, event))
        self._metadata_version += 1
        return "pruned"

    def _dataset_from_artifacts(self, clip_id: str, event: str,
                                store) -> MILDataset | None:
        """Recover a clip's dataset from the pipeline artifact store.

        Uses the ``artifact_entries`` provenance rows (stage
        ``windows``) recorded at ingest time; the stored artifact *is*
        the :class:`MILDataset`, so a matching one rebuilds the catalog
        and bundle exactly.
        """
        for entry in self.artifact_entries(clip_id):
            if entry["stage"] != "windows":
                continue
            try:
                candidate = store.load(entry["key"])
            except (StorageError, OSError):
                continue
            if (isinstance(candidate, MILDataset)
                    and candidate.clip_id == clip_id
                    and candidate.event_name == event):
                return candidate
        return None

    def _array_keys_for(self, clip_id: str) -> list[str]:
        prefix = f"{clip_id}/"
        return [k for k in self.arrays.keys() if k.startswith(prefix)]

    def delete_clip(self, clip_id: str) -> None:
        """Remove a clip and everything derived from it.

        Deletes catalog rows (tracks, datasets, bags, instances, labels,
        the clip itself) and the clip's bulk arrays.  Raises
        :class:`StorageError` if the clip does not exist.
        """
        self.clip(clip_id)  # existence check
        with self._conn:
            for table in ("labels", "instances", "bags", "datasets",
                          "tracks", "artifact_entries"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE clip_id = ?", (clip_id,))
            self._conn.execute("DELETE FROM clips WHERE clip_id = ?",
                               (clip_id,))
        for key in self._array_keys_for(clip_id):
            self.arrays.delete(key)
        self._metadata_version += 1

    def export_clip(self, clip_id: str, path: str | Path) -> None:
        """Write one clip (catalog rows + arrays) to a portable npz file."""
        import json

        record = self.clip(clip_id)
        manifest = {
            "format": "repro-clip-bundle-v1",
            "clip": {
                "clip_id": record.clip_id, "location": record.location,
                "camera": record.camera, "start_time": record.start_time,
                "fps": record.fps, "n_frames": record.n_frames,
                "width": record.width, "height": record.height,
                "extra": record.extra,
            },
            "tracks": [
                r for r in self._conn.execute(
                    "SELECT * FROM tracks WHERE clip_id=?", (clip_id,))
            ],
            "datasets": [
                r for r in self._conn.execute(
                    "SELECT * FROM datasets WHERE clip_id=?", (clip_id,))
            ],
            "bags": [
                r for r in self._conn.execute(
                    "SELECT * FROM bags WHERE clip_id=?", (clip_id,))
            ],
            "instances": [
                r for r in self._conn.execute(
                    "SELECT * FROM instances WHERE clip_id=?", (clip_id,))
            ],
            "labels": [
                r for r in self._conn.execute(
                    "SELECT * FROM labels WHERE clip_id=?", (clip_id,))
            ],
        }
        payload: dict[str, np.ndarray] = {
            "manifest": np.frombuffer(
                json.dumps(manifest).encode("utf-8"), dtype=np.uint8),
        }
        for key in self._array_keys_for(clip_id):
            bundle = self.arrays.load(key)
            for name, array in bundle.items():
                payload[f"array::{key}::{name}"] = array
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **payload)

    def import_clip(self, path: str | Path, *,
                    replace: bool = False) -> ClipRecord:
        """Load a clip bundle written by :meth:`export_clip`."""
        import json

        with np.load(path) as bundle:
            manifest = json.loads(bytes(bundle["manifest"]).decode("utf-8"))
            if manifest.get("format") != "repro-clip-bundle-v1":
                raise StorageError(
                    f"{path} is not a repro clip bundle"
                )
            clip_id = manifest["clip"]["clip_id"]
            exists = self._conn.execute(
                "SELECT 1 FROM clips WHERE clip_id=?", (clip_id,)
            ).fetchone()
            if exists:
                if not replace:
                    raise StorageError(
                        f"clip {clip_id!r} already exists "
                        f"(pass replace=True to overwrite)"
                    )
                self.delete_clip(clip_id)
            record = ClipRecord(**manifest["clip"])
            self.add_clip(record)
            with self._conn:
                for table in ("tracks", "datasets", "bags", "instances",
                              "labels"):
                    rows = [tuple(r) for r in manifest[table]]
                    if not rows:
                        continue
                    placeholders = ",".join("?" * len(rows[0]))
                    self._conn.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        rows)
            arrays: dict[str, dict[str, np.ndarray]] = {}
            for name in bundle.files:
                if not name.startswith("array::"):
                    continue
                _, key, array_name = name.split("::", 2)
                arrays.setdefault(key, {})[array_name] = bundle[name]
            for key, named in arrays.items():
                self.arrays.save(key, named)
        self._metadata_version += 1
        return record

    # ------------------------------------------------------------ ingest
    def ingest_simulation(self, result, tracks, dataset,
                          *, start_time: str = "",
                          vehicle_classes: dict[int, str] | None = None
                          ) -> ClipRecord:
        """Convenience: store a simulated clip + tracks + MIL dataset."""
        record = ClipRecord(
            clip_id=result.name,
            location=str(result.metadata.get("location", "")),
            camera=str(result.metadata.get("camera", "")),
            start_time=start_time,
            fps=25.0,
            n_frames=result.n_frames,
            width=result.width,
            height=result.height,
            extra={"scenario": result.metadata.get("scenario", "")},
        )
        self.add_clip(record)
        self.add_tracks(record.clip_id, tracks,
                        vehicle_classes=vehicle_classes)
        self.add_dataset(dataset)
        return record


class ThreadLocalVideoDatabase:
    """One :class:`VideoDatabase` per thread over the same catalog file.

    SQLite connections are cheap; what is *not* safe is many service
    worker threads funnelling statements through one connection's
    transaction state (a ``BEGIN IMMEDIATE`` guard on thread A must not
    interleave with thread B's insert).  This facade lazily opens a
    dedicated ``VideoDatabase`` the first time each thread touches it
    — WAL mode makes the concurrent readers/writer mix safe at the
    file level — and exposes the catalog API as plain bound methods so
    callbacks captured at session-construction time (e.g. the
    ``partial(db.dataset, ...)`` shard loaders) resolve the *calling*
    thread's connection at call time, not the constructing thread's.

    Limitation: ``metadata_version`` is per-connection, so a mutation
    made by one thread does not bump other threads' versions.  The
    retrieval service only reads clip/track metadata, which keeps every
    thread's version at 0 and the cross-thread view trivially
    consistent; don't use this facade for ingest.
    """

    def __init__(self, path: str | Path, *,
                 busy_timeout_ms: int = 5000,
                 connection_factory=None,
                 quick_check: bool = True) -> None:
        if str(path) == ":memory:":
            raise ConfigurationError(
                "ThreadLocalVideoDatabase needs a file-backed catalog: "
                "each thread's ':memory:' connection would be a "
                "separate empty database")
        self.path = str(path)
        self._kwargs = {"busy_timeout_ms": busy_timeout_ms,
                        "connection_factory": connection_factory,
                        "quick_check": quick_check}
        self._local = threading.local()
        self._instances: list[VideoDatabase] = []
        self._lock = threading.Lock()
        self._closed = False

    def _db(self) -> VideoDatabase:
        db = getattr(self._local, "db", None)
        if db is None:
            with self._lock:
                if self._closed:
                    raise StorageError(
                        f"thread-local catalog {self.path!r} is closed")
            db = VideoDatabase(self.path, check_same_thread=False,
                               **self._kwargs)
            self._local.db = db
            with self._lock:
                self._instances.append(db)
        return db

    def close_all(self) -> None:
        """Close every per-thread connection (any thread may call)."""
        with self._lock:
            self._closed = True
            instances, self._instances = self._instances, []
        for db in instances:
            db.close()
        self._local = threading.local()

    def __enter__(self) -> "ThreadLocalVideoDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()

    @property
    def metadata_version(self) -> int:
        return self._db().metadata_version

    @property
    def arrays(self):
        return self._db().arrays

    # Explicit pass-throughs (not ``__getattr__``) so sessions can hold
    # e.g. ``partial(db.dataset, clip_id, event)`` across threads.
    def clip(self, *args, **kwargs):
        return self._db().clip(*args, **kwargs)

    def clips(self, *args, **kwargs):
        return self._db().clips(*args, **kwargs)

    def events_for(self, *args, **kwargs):
        return self._db().events_for(*args, **kwargs)

    def vehicle_classes(self, *args, **kwargs):
        return self._db().vehicle_classes(*args, **kwargs)

    def dataset(self, *args, **kwargs):
        return self._db().dataset(*args, **kwargs)

    def dataset_meta(self, *args, **kwargs):
        return self._db().dataset_meta(*args, **kwargs)

    def add_labels(self, *args, **kwargs):
        return self._db().add_labels(*args, **kwargs)

    def labels(self, *args, **kwargs):
        return self._db().labels(*args, **kwargs)

    def accumulated_labels(self, *args, **kwargs):
        return self._db().accumulated_labels(*args, **kwargs)

    def register_session(self, *args, **kwargs):
        return self._db().register_session(*args, **kwargs)

    def session_record(self, *args, **kwargs):
        return self._db().session_record(*args, **kwargs)

    def session_records(self, *args, **kwargs):
        return self._db().session_records(*args, **kwargs)

    def record_query_round(self, *args, **kwargs):
        return self._db().record_query_round(*args, **kwargs)

    def query_rounds(self, *args, **kwargs):
        return self._db().query_rounds(*args, **kwargs)

    def query_sessions(self, *args, **kwargs):
        return self._db().query_sessions(*args, **kwargs)

    def __getattr__(self, name: str):
        # Anything else (read helpers, stats readers) delegates to the
        # calling thread's instance.  Note this binds at lookup time —
        # hot callbacks that outlive the call should use the explicit
        # methods above.
        return getattr(self._db(), name)
