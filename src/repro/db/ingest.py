"""Streaming clip ingestion: segments land in the database as they finish.

:class:`StreamingIngest` drives a
:class:`~repro.pipeline.segmented.SegmentedRunner` over one simulated
clip and appends each segment's newly final window bags to the
:class:`~repro.db.database.VideoDatabase` the moment they are emitted —
so the clip becomes queryable window by window instead of only after the
whole build.

Durability is the ``ingest_events`` journal's job.  Per segment the
normal progression is ``pending -> built -> appended``; the ``appended``
row is written by :meth:`VideoDatabase.append_dataset` inside the same
transaction as the bag/instance rows, which makes it the exactly-once
marker: a killed ingest resumes by replaying the segment stream (cheap —
per-segment artifacts are content addressed) and skipping every segment
whose latest journal state is ``appended``.  A failed append journals a
``failed`` row with the error and re-raises; re-running picks the
segment up again.
"""

from __future__ import annotations

from repro.core.bags import MILDataset
from repro.db.schema import ClipRecord
from repro.obs import get_telemetry
from repro.pipeline.artifacts import ClipArtifacts
from repro.pipeline.config import PipelineConfig, WindowConfig
from repro.pipeline.segmented import SegmentedRunner, SegmentEmission

__all__ = ["StreamingIngest"]


class StreamingIngest:
    """Ingest one clip as a resumable segment stream.

    Parameters mirror :meth:`VideoDatabase.ingest_simulation` where they
    overlap; ``event`` picks the event model when no ``config`` is given
    (with a ``config``, the event comes from ``config.windows.event``).
    ``store`` is an optional content-addressed artifact store shared
    with the runner, so a resumed ingest replays finished segments from
    cache instead of recomputing them.
    """

    def __init__(self, db, result, *, event: str = "accident",
                 segment_frames: int = 200,
                 config: PipelineConfig | None = None,
                 store=None, start_time: str = "",
                 vehicle_classes: dict[int, str] | None = None) -> None:
        self.db = db
        self.result = result
        self.config = config or PipelineConfig(
            windows=WindowConfig(event=event))
        self.runner = SegmentedRunner(
            self.config, segment_frames=segment_frames, store=store)
        self.start_time = start_time
        self.vehicle_classes = vehicle_classes
        self.model = self.config.resolve_event_model()
        self.clip_record: ClipRecord | None = None
        #: Filled by :meth:`run`: segments appended vs skipped-as-durable.
        self.segments_appended = 0
        self.segments_skipped = 0
        #: Segments re-appended because their latest journal state was
        #: ``failed`` — the retry half of the resume contract.
        self.segments_retried = 0

    def _record(self) -> ClipRecord:
        result = self.result
        return ClipRecord(
            clip_id=result.name,
            location=str(result.metadata.get("location", "")),
            camera=str(result.metadata.get("camera", "")),
            start_time=self.start_time,
            fps=self.config.render.fps,
            n_frames=result.n_frames,
            width=result.width,
            height=result.height,
            extra={"scenario": result.metadata.get("scenario", "")},
        )

    def _delta(self, emission: SegmentEmission) -> MILDataset:
        return MILDataset(
            clip_id=self.result.name,
            event_name=self.model.name,
            feature_names=tuple(self.model.feature_names),
            window_size=self.config.windows.window_size,
            sampling_rate=self.config.series.sampling.sampling_rate,
            bags=list(emission.bags),
        )

    def run(self, *, resume: bool = True,
            progress=None) -> ClipArtifacts:
        """Stream the clip in; returns the batch-identical artifacts.

        With ``resume`` (default), segments whose latest journal state
        is ``appended`` are replayed but not re-appended, so a killed
        ingest continues exactly-once from the last durable segment.
        Segments whose latest state is ``failed`` (a previous run's
        append died) are explicitly *retried*, not skipped — their
        count lands in :attr:`segments_retried` and the
        ``ingest.segments_retried`` counter, and the prior failure's
        detail is preserved in the journal history (the journal is
        append-only; latest row wins).  ``progress`` (optional) is
        called with each :class:`SegmentEmission` after it has been
        handled.
        """
        obs = get_telemetry()
        db, result, event = self.db, self.result, self.model.name
        clip_id = result.name
        self.clip_record = self._record()
        db.add_clip(self.clip_record)
        durable = db.ingest_state(clip_id, event) if resume else {}
        for lo, hi in self.runner.segment_bounds(result.n_frames):
            index = lo // self.runner.segment_frames
            if durable.get(index, {}).get("state") != "appended":
                db.record_ingest_event(clip_id, event, index, "pending",
                                       frame_lo=lo, frame_hi=hi)

        def on_emission(e: SegmentEmission) -> None:
            prior = durable.get(e.index, {}).get("state")
            if prior == "appended":
                self.segments_skipped += 1
                obs.counter("ingest.segments_skipped").inc()
                return
            if prior == "failed":
                # Retry, explicitly: the journal's latest word on this
                # segment is a dead append, and only "appended" rows are
                # durable.  Re-append below (idempotent — append_dataset
                # upserts by id) and account for the retry.
                self.segments_retried += 1
                obs.counter("ingest.segments_retried").inc()
                obs.event("ingest.segment_retried", clip=clip_id,
                          segment=e.index,
                          prior_detail=durable[e.index].get("detail", ""))
            n_instances = sum(b.n_instances for b in e.bags)
            db.record_ingest_event(
                clip_id, event, e.index, "built",
                frame_lo=e.frame_lo, frame_hi=e.frame_hi,
                n_bags=len(e.bags), n_instances=n_instances)
            try:
                db.append_dataset(
                    self._delta(e),
                    segment=(e.index, e.frame_lo, e.frame_hi))
            except Exception as exc:
                db.record_ingest_event(
                    clip_id, event, e.index, "failed",
                    frame_lo=e.frame_lo, frame_hi=e.frame_hi,
                    detail=f"{type(exc).__name__}: {exc}")
                raise
            self.segments_appended += 1
            obs.counter("ingest.segments_appended").inc()

        def handle(e: SegmentEmission) -> None:
            on_emission(e)
            if progress is not None:
                progress(e)

        with obs.span("ingest.clip", clip=clip_id, event=event,
                      segment_frames=self.runner.segment_frames):
            artifacts = self.runner.run(result, on_emission=handle)
        db.add_tracks(clip_id, artifacts.tracks,
                      vehicle_classes=self.vehicle_classes)
        return artifacts
