"""Surveillance video database layer.

The paper frames its system as operating over a *transportation
surveillance video database*: clips are stored with their metadata ("the
time and place a video is taken"), vehicles are tracked and "the
corresponding trajectories are modeled and recorded in the database", and
semantic queries with relevance feedback run on top.  This package
provides that layer:

* :class:`~repro.db.database.VideoDatabase` — a SQLite-backed catalog of
  clips, tracks (stored both as raw points and as the paper's compact
  polynomial trajectory models), MIL datasets (VS/TS), and feedback
  labels, with bulk arrays in an npz side store.
* :class:`~repro.db.query.SemanticQuerySession` — an interactive query
  (event type + retrieval engine) whose feedback rounds are persisted.
"""

from repro.db.schema import ClipRecord, LabelRecord, SessionRecord, TrackRecord
from repro.db.storage import ArrayStore, InMemoryArrayStore, NpzArrayStore
from repro.db.database import ThreadLocalVideoDatabase, VideoDatabase
from repro.db.ingest import StreamingIngest
from repro.db.query import (
    MultiClipQuerySession,
    SemanticQuerySession,
    sharded_corpus,
)

__all__ = [
    "ClipRecord",
    "TrackRecord",
    "LabelRecord",
    "SessionRecord",
    "ArrayStore",
    "InMemoryArrayStore",
    "NpzArrayStore",
    "VideoDatabase",
    "ThreadLocalVideoDatabase",
    "StreamingIngest",
    "SemanticQuerySession",
    "MultiClipQuerySession",
    "sharded_corpus",
]
