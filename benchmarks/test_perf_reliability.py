"""Reliability-layer overhead benchmark: fault tolerance must be ~free.

The per-future submission path in :func:`build_artifacts_parallel`
(retry bookkeeping, per-task deadlines, pool-death recovery) replaced a
bare ``ProcessPoolExecutor.map``, and ``DiskArtifactStore.load`` now
verifies a sha256 checksum before unpickling.  Both are pure overhead
on the happy path — no failures, no corruption — so this benchmark
measures exactly that: a 16-clip oracle-mode batch through the old
``pool.map`` shape vs :func:`build_artifacts_parallel`, and
checksum-verified loads vs raw pickle reads over the same blobs.  The
batch regression must stay under 5%; numbers land in
``BENCH_reliability.json`` (``repro-bench-v1`` schema) at the repo
root so they travel with the code.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.eval import build_artifacts
from repro.eval.parallel import IngestTask, build_artifacts_parallel, run_ingest_task
from repro.obs import Telemetry, merge_bench
from repro.pipeline import DiskArtifactStore
from repro.sim import tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_reliability.json"

N_CLIPS = 16
WORKERS = 4
SIM_KWARGS = {"n_frames": 300, "n_wall_crashes": 1, "n_sudden_stops": 1}


def _tasks():
    return [IngestTask("tunnel", seed, sim_kwargs=dict(SIM_KWARGS),
                       build_kwargs={"mode": "oracle"})
            for seed in range(N_CLIPS)]


def _pool_map_batch(tasks):
    """The pre-reliability shape: one map call, all-or-nothing."""
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        return list(pool.map(run_ingest_task, tasks))


def _per_future_batch(tasks):
    return build_artifacts_parallel(tasks, max_workers=WORKERS)


def _timed(fn, *args):
    t0 = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - t0, result


def test_smoke_per_future_matches_pool_map():
    """Per-future submission returns exactly what pool.map returned."""
    tasks = _tasks()[:3]
    baseline = _pool_map_batch(tasks)
    per_future = _per_future_batch(tasks)
    assert len(per_future) == len(baseline)
    for old, new in zip(baseline, per_future):
        assert ([b.bag_id for b in old.dataset.bags]
                == [b.bag_id for b in new.dataset.bags])


def test_per_future_submission_overhead(benchmark):
    """16-clip happy-path batch: per-future path within 5% of pool.map."""
    tasks = _tasks()

    def run():
        # Interleaved best-of-3 so load drift hits both paths equally;
        # min damps pool start-up noise.
        map_s = future_s = float("inf")
        built = None
        for _ in range(3):
            elapsed, _ = _timed(_pool_map_batch, tasks)
            map_s = min(map_s, elapsed)
            elapsed, built = _timed(_per_future_batch, tasks)
            future_s = min(future_s, elapsed)
        return map_s, future_s, built

    map_s, future_s, built = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(built) == N_CLIPS

    overhead_pct = (future_s / map_s - 1.0) * 100.0
    recorder = Telemetry()
    batch = recorder.gauge("bench.batch_s",
                           "16-clip batch wall seconds by submission path")
    batch.set(round(map_s, 3), path="pool_map")
    batch.set(round(future_s, 3), path="per_future")
    recorder.gauge("bench.overhead_pct",
                   "per-future wall-time overhead vs pool.map, %").set(
        round(overhead_pct, 2))
    merge_bench(BENCH_PATH, "per_future_vs_pool_map", recorder,
                meta={"scenario": "tunnel-300", "mode": "oracle",
                      "n_clips": N_CLIPS, "max_workers": WORKERS})
    assert overhead_pct < 5.0, (
        f"per-future submission {overhead_pct:.2f}% slower than pool.map "
        f"({future_s:.2f}s vs {map_s:.2f}s) — happy path must stay <5%")


def test_checksum_on_load_overhead(tmp_path):
    """sha256-verified loads vs raw pickle reads over the same blobs."""
    store = DiskArtifactStore(tmp_path / "store")
    sim = tunnel(seed=0, **SIM_KWARGS)
    build_artifacts(sim, mode="oracle", store=store)
    keys = store.keys()
    assert keys

    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        for key in keys:
            store.load(key)
    verified_s = time.perf_counter() - t0

    blobs = sorted((store.root / "objects").glob("*/*.pkl"))
    t0 = time.perf_counter()
    for _ in range(rounds):
        for blob in blobs:
            with open(blob, "rb") as fh:
                pickle.loads(fh.read())
    raw_s = time.perf_counter() - t0

    n_loads = rounds * len(keys)
    n_bytes = sum(blob.stat().st_size for blob in blobs)
    recorder = Telemetry()
    load = recorder.gauge("bench.load_ms",
                          "mean per-artifact load wall ms by path")
    load.set(round(verified_s / n_loads * 1e3, 4), path="verified")
    load.set(round(raw_s / n_loads * 1e3, 4), path="raw_pickle")
    recorder.gauge("bench.overhead_pct",
                   "checksum-verified load overhead vs raw pickle, %").set(
        round((verified_s / raw_s - 1.0) * 100.0, 1))
    merge_bench(BENCH_PATH, "checksum_on_load", recorder,
                meta={"scenario": "tunnel-300", "mode": "oracle",
                      "n_blobs": len(keys), "total_blob_bytes": n_bytes,
                      "rounds": rounds})
    # Advisory bound: sha256 streams at GB/s, so even a generous cap
    # catches an accidental double-read or per-load rehash of the store.
    assert verified_s < raw_s * 3.0
