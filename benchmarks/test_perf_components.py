"""Component micro-benchmarks: throughput of every pipeline stage.

Not a paper figure — engineering evidence that the substrate runs at a
usable speed (frames/second, fits/second), reported via pytest-benchmark
timings.
"""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine
from repro.eval import build_artifacts
from repro.sim import Renderer, tunnel
from repro.svm import OneClassSVM
from repro.tracking import CentroidTracker
from repro.trajectory import TrajectoryModel
from repro.vision import BackgroundModel, SPCPE, SegmentationPipeline, VideoClip
from repro.vision.blobs import extract_blobs


@pytest.fixture(scope="module")
def sim():
    return tunnel(n_frames=400, seed=9, spawn_interval=(50.0, 80.0),
                  n_wall_crashes=2, n_sudden_stops=1)


@pytest.fixture(scope="module")
def renderer(sim):
    return Renderer(sim, seed=0)


@pytest.fixture(scope="module")
def frame(renderer):
    return renderer.render(200)


@pytest.fixture(scope="module")
def background(sim):
    clip = VideoClip.from_simulation(sim)
    return BackgroundModel().learn(clip)


def test_render_frame(benchmark, renderer):
    benchmark(renderer.render, 200)


def test_background_subtract(benchmark, background, frame):
    benchmark(background.subtract, frame)


def test_blob_extraction(benchmark, background, frame):
    mask = background.subtract(frame)
    benchmark(extract_blobs, mask, frame)


def test_spcpe_partition(benchmark, frame):
    patch = np.asarray(frame[100:130, 140:180], dtype=float)
    benchmark(SPCPE().partition, patch)


def test_full_frame_detection(benchmark, sim, background):
    clip = VideoClip.from_simulation(sim)
    pipeline = SegmentationPipeline(background=background, use_spcpe=False)
    benchmark(pipeline.detect, 200, clip.get(200))


def test_tracking_clip(benchmark, sim):
    clip = VideoClip.from_simulation(sim)
    detections = SegmentationPipeline(use_spcpe=False).process(clip)

    def run():
        return CentroidTracker().track(detections)

    tracks = benchmark(run)
    assert tracks


def test_polynomial_fit(benchmark):
    frames = np.arange(120, dtype=float)
    points = np.column_stack([3.0 * frames, 50 + 0.01 * frames**2])

    benchmark(TrajectoryModel, frames, points)


def test_ocsvm_fit(benchmark):
    x = np.random.default_rng(0).normal(size=(150, 9))
    benchmark(lambda: OneClassSVM(nu=0.3, gamma=0.11).fit(x))


def test_ocsvm_decision(benchmark):
    rng = np.random.default_rng(0)
    model = OneClassSVM(nu=0.3, gamma=0.11).fit(rng.normal(size=(150, 9)))
    probes = rng.normal(size=(500, 9))
    benchmark(model.decision_function, probes)


def test_engine_feedback_round(benchmark, sim):
    artifacts = build_artifacts(sim, mode="oracle")
    relevant = list(artifacts.relevant_bag_ids)[:6]
    labels = {b: True for b in relevant}
    labels.update({b.bag_id: False for b in artifacts.dataset.bags[:8]
                   if b.bag_id not in labels})

    def round_trip():
        engine = MILRetrievalEngine(artifacts.dataset)
        engine.feed(labels)
        return engine.rank()

    ranking = benchmark(round_trip)
    assert len(ranking) == len(artifacts.dataset.bags)
