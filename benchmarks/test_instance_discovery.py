"""Instance-level MIL diagnostics (beyond the paper's bag-level accuracy).

The paper's Section 1 claim is that bag-level feedback lets the engine
"find out" which Trajectory Sequences carry the event.  This bench
measures that directly: within each truly relevant bag, is the engine's
highest-scored instance a vehicle actually involved in the incident?

Finding recorded in EXPERIMENTS.md: the attribution of the *heuristic*
scores clearly beats chance, while the One-class SVM's decision values
improve bag-level ranking but slightly blur within-bag attribution.
"""

import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.eval import build_artifacts
from repro.eval.diagnostics import evaluate_instance_discovery
from repro.sim import tunnel


def test_instance_attribution(benchmark):
    def run():
        sim = tunnel(seed=0)
        artifacts = build_artifacts(sim, mode="oracle")
        engine = MILRetrievalEngine(artifacts.dataset)
        before = evaluate_instance_discovery(artifacts, engine)
        session = RetrievalSession(engine,
                                   OracleUser(artifacts.ground_truth),
                                   top_k=20)
        session.run(3)
        after = evaluate_instance_discovery(artifacts, engine)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    # Attribution is far above the random-ordering floor...
    assert before.top1_precision > before.random_top1 + 0.1
    # ...and stays meaningfully above it after feedback.
    assert after.top1_precision >= after.random_top1
    assert after.mean_reciprocal_rank >= 0.6
