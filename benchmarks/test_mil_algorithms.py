"""Extension benchmark: MIL algorithm comparison (paper Section 2.1).

The paper reviews Diverse Density and EM-DD as the classic MIL solvers
and argues for One-class SVM; this bench runs all of them plus the
Weighted_RF baseline through the same protocol.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import mil_algorithms


def test_mil_algorithm_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: mil_algorithms(seed=1), rounds=1, iterations=1)
    record_experiment(result)
    series = result.series
    gains = {m: accs[-1] - accs[0] for m, accs in series.items()}
    # Every MIL engine completes 5 rounds and at least one MIL engine
    # strictly beats the weighted-RF baseline's gain.
    assert all(len(a) == 5 for a in series.values())
    assert max(gains["OCSVM"], gains["DD"], gains["EM-DD"]) \
        > gains["Weighted_RF"]
    # The paper's chosen engine does not lose to the DD family here.
    assert series["OCSVM"][-1] >= max(series["DD"][-1],
                                      series["EM-DD"][-1]) - 0.10
