"""Chaos benchmark: what degraded mode costs and how fast shards rejoin.

Two questions the fault-isolation layer must answer with numbers:

* **Degraded-round latency** — a round served with a quarantined shard
  must not be slower than a healthy round (it scores strictly less
  data; the probe/coverage bookkeeping must stay in the noise).
* **Recovery time vs fault rate** — with shard loads failing at a given
  seeded rate, how many feedback rounds until the corpus serves
  complete coverage again.  Reprobe scheduling is deterministic
  (zero-jitter retry policy, fake clock), so these numbers are exact,
  not sampled.

Results land in ``BENCH_chaos.json`` (``repro-bench-v1`` schema) at the
repo root so they travel with the code.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path

from repro.core.sharded import ShardedCorpus, ShardedRetrievalEngine
from repro.errors import ShardUnavailableError
from repro.obs import Telemetry, merge_bench
from repro.reliability import FaultInjector, FaultPlan, FaultRule, RetryPolicy

from tests.core.test_sharded import _clip, _specs
from tests.core.test_sharded_degraded import FakeClock, FlakyLoader

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

N_SHARDS = 6
BAGS_PER_SHARD = 120
ROUNDS = 5
FAULT_RATES = (0.2, 0.5, 0.8)
FAULT_BUDGET = 6  # each rate's rule fires at most this many times


def _datasets():
    return [_clip(f"clip-{i}", BAGS_PER_SHARD, seed=i + 1,
                  spike_every=7 + i)
            for i in range(N_SHARDS)]


def _policy():
    return RetryPolicy(base_delay=1.0, backoff=2.0, max_delay=4.0,
                       jitter=0.0)


def _timed_rounds(engine, *, rounds=ROUNDS):
    """Median wall-ms per rank() round with a feed between rounds."""
    times = []
    for r in range(rounds):
        t0 = time.perf_counter()
        ranking = engine.rank()
        times.append((time.perf_counter() - t0) * 1e3)
        engine.feed({ranking[0]: True, ranking[-1]: False})
    return sorted(times)[len(times) // 2]


def test_degraded_round_latency():
    datasets = _datasets()
    clock = FakeClock()
    loaders = {d.clip_id: FlakyLoader(d) for d in datasets}
    specs = [replace(s, loader=loaders[s.clip_id])
             for s in _specs(datasets)]
    corpus = ShardedCorpus(specs, corpus_id="merged:bench",
                           retry_policy=_policy(), clock=clock)
    engine = ShardedRetrievalEngine(corpus, failure_policy="degraded")

    healthy_ms = _timed_rounds(engine)

    # Kill one shard; its next refresh quarantines it for the round.
    victim = datasets[0].clip_id
    loaders[victim].fail = True
    try:
        corpus.refresh(victim, n_bags=BAGS_PER_SHARD + 1,
                       n_instances=corpus.specs[0].n_instances + 2)
    except ShardUnavailableError:
        pass
    degraded_ms = _timed_rounds(engine)
    assert engine.last_coverage.degraded

    recorder = Telemetry()
    gauge = recorder.gauge(
        "bench.round_ms", "median rank() wall ms by corpus health")
    gauge.set(round(healthy_ms, 3), mode="healthy")
    gauge.set(round(degraded_ms, 3), mode="degraded")
    recorder.gauge(
        "bench.degraded_overhead_pct",
        "degraded-round latency vs healthy, % (negative = faster)").set(
        round((degraded_ms / healthy_ms - 1.0) * 100.0, 2))
    merge_bench(BENCH_PATH, "degraded_round_latency", recorder,
                meta={"n_shards": N_SHARDS,
                      "bags_per_shard": BAGS_PER_SHARD,
                      "rounds": ROUNDS})
    # A degraded round scores one shard less — generous 1.5x bound
    # guards against the probe/coverage bookkeeping blowing up.
    assert degraded_ms < healthy_ms * 1.5


def test_recovery_time_vs_fault_rate():
    recorder = Telemetry()
    rounds_gauge = recorder.gauge(
        "bench.recovery_rounds",
        "feedback rounds until complete coverage, by fault rate")
    frac_gauge = recorder.gauge(
        "bench.degraded_round_fraction",
        "fraction of rounds served degraded, by fault rate")

    for rate in FAULT_RATES:
        injector = FaultInjector(FaultPlan([
            FaultRule(op="shard.load", kind="io-error", rate=rate,
                      limit=FAULT_BUDGET),
        ], seed=int(rate * 100)))
        clock = FakeClock()
        corpus = ShardedCorpus(
            injector.wrap_shard_specs(_specs(_datasets())),
            corpus_id="merged:bench", retry_policy=_policy(), clock=clock)
        engine = ShardedRetrievalEngine(corpus, failure_policy="degraded")

        degraded, recovery_round = 0, None
        max_rounds = 30
        for round_no in range(1, max_rounds + 1):
            engine.rank()
            if engine.last_coverage.degraded:
                degraded += 1
                recovery_round = None
            elif recovery_round is None:
                recovery_round = round_no
                if not injector.plan.rules or round_no > 1:
                    # coverage is complete *after* faults were seen;
                    # with the budget spent it stays complete.
                    if injector.counts().get("shard.load", 0) \
                            and len(injector.injected) >= FAULT_BUDGET:
                        break
            clock.advance(1.0)
        assert recovery_round is not None, (
            f"rate={rate}: never recovered within {max_rounds} rounds")
        rounds_gauge.set(recovery_round, rate=str(rate))
        frac_gauge.set(round(degraded / max_rounds, 3), rate=str(rate))

    merge_bench(BENCH_PATH, "recovery_vs_fault_rate", recorder,
                meta={"n_shards": N_SHARDS,
                      "bags_per_shard": BAGS_PER_SHARD,
                      "fault_budget": FAULT_BUDGET,
                      "rates": list(FAULT_RATES)})
