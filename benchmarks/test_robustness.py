"""Robustness benches: graceful degradation under failure injection.

Engineering evidence beyond the paper: frame dropout, a static occluder
band, and user labelling noise, each swept over severity on the tunnel
workload.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval.robustness import (
    robustness_dropout,
    robustness_label_noise,
    robustness_occlusion,
)
from repro.sim import tunnel


@pytest.fixture(scope="module")
def sim():
    return tunnel(n_frames=1200, seed=6, spawn_interval=(50.0, 80.0),
                  n_wall_crashes=4, n_sudden_stops=3)


def test_frame_dropout(benchmark, sim):
    result = benchmark.pedantic(
        lambda: robustness_dropout(sim, probs=(0.0, 0.1, 0.2, 0.3),
                                   top_k=10),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {k: v[-1] for k, v in result.series.items()}
    # Moderate dropout costs at most a third of the clean accuracy.
    assert finals["dropout=0.1"] >= finals["dropout=0"] * 0.66
    # Severe dropout is allowed to hurt but the run must complete.
    assert all(0.0 <= v <= 1.0 for v in finals.values())


def test_occlusion_band(benchmark, sim):
    result = benchmark.pedantic(
        lambda: robustness_occlusion(sim, widths=(0, 20, 40, 80),
                                     top_k=10, with_stitching=True),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {k: v[-1] for k, v in result.series.items()}
    assert finals["occluder=20px"] >= finals["occluder=0px"] * 0.5
    assert all(0.0 <= v <= 1.0 for v in finals.values())
    # Stitching never hurts the occluded variants by more than one slot.
    for width in (20, 40, 80):
        assert (finals[f"occluder={width}px+stitch"]
                >= finals[f"occluder={width}px"] - 0.1)


def test_occlusion_stitching_repairs_fragments(benchmark, sim):
    """Stitching's real value is structural: fragments per vehicle."""
    from repro.eval.robustness import (
        _detections_for,
        inject_occlusion_band,
    )
    from repro.tracking import CentroidTracker, stitch_tracks

    def run():
        detections = _detections_for(sim)
        occluded = inject_occlusion_band(detections, 140.0, 180.0)
        fragments = CentroidTracker().track(occluded)
        stitched = stitch_tracks(fragments)
        return len(fragments), len(stitched)

    n_fragments, n_stitched = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    assert n_stitched < n_fragments  # the band splits; stitching repairs
    true_vehicles = len(sim.vehicle_ids())
    # After stitching the track count is near the true vehicle count.
    assert n_stitched <= true_vehicles * 1.3 + 2


def test_illumination_drift(benchmark, sim):
    from repro.eval.robustness import robustness_illumination

    result = benchmark.pedantic(
        lambda: robustness_illumination(sim, drifts=(0.0, 0.25),
                                        top_k=10),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {k: v[-1] for k, v in result.series.items()}
    # The selective running average absorbs a 25% illumination swing...
    assert finals["drift=0.25/lr=0.02"] >= finals["drift=0/lr=0.02"] - 0.1
    # ...while a frozen background collapses under it.
    assert finals["drift=0.25/lr=0.02"] >= finals["drift=0.25/lr=0"] + 0.2


def test_label_noise(benchmark, sim):
    result = benchmark.pedantic(
        lambda: robustness_label_noise(sim,
                                       flip_probs=(0.0, 0.1, 0.2, 0.35),
                                       top_k=10),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {k: v[-1] for k, v in result.series.items()}
    # Clean labels are at least as good as heavily corrupted ones.
    assert finals["flip=0"] >= finals["flip=0.35"] - 1e-9
