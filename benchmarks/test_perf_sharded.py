"""Sharded retrieval benchmark: pruned two-stage ranking vs monolith.

Protocol: a synthetic multi-clip corpus (8 clips, spiked "incident"
bags) runs the oracle feedback loop on both paths — the monolithic
merged-dataset :class:`MILRetrievalEngine` and the
:class:`ShardedRetrievalEngine` with ``candidates_per_shard=64`` — with
identical labels each round.  Measured per round: the ``top_k(20)``
wall time a query session would pay.  Claims checked:

* warm rounds (2-5, model trained) are >= 2x faster pruned;
* pruning loses no top-20 recall at round 5;
* round latency grows sublinearly in corpus size (fixed shard count,
  growing shards): the candidate stage scores ``shards x M`` bags no
  matter how large the shards get, and ``top_k`` never materializes
  the pruned tail.

Numbers land in ``BENCH_sharded.json`` (``repro-bench-v1`` schema).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core import MILRetrievalEngine, merge_datasets
from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import ShardSpec, ShardedCorpus, ShardedRetrievalEngine
from repro.obs import Telemetry, merge_bench, set_telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

N_CLIPS = 8
BAGS_PER_CLIP = 1440
INSTANCES_PER_BAG = 4
WINDOW, FEATURES = 6, 4
SPIKE_EVERY = 12          # one "incident" bag per 12 windows
CANDIDATES_PER_SHARD = 64
ROUNDS = 5
TOP_K = 20
LABELS_PER_ROUND = 20
REPEATS = 3               # best-of, per timed round
SPEEDUP_FLOOR = 2.0


def _clip(clip_id: str, n_bags: int, seed: int) -> MILDataset:
    rng = np.random.default_rng(seed)
    bags, iid = [], 0
    for b in range(n_bags):
        instances = []
        for _ in range(INSTANCES_PER_BAG):
            matrix = rng.normal(scale=0.3, size=(WINDOW, FEATURES))
            if b % SPIKE_EVERY == 0:
                matrix[WINDOW // 2] += 4.0
            instances.append(Instance(instance_id=iid, bag_id=b,
                                      track_id=iid, matrix=matrix))
            iid += 1
        bags.append(Bag(bag_id=b, clip_id=clip_id, frame_lo=b * 20,
                        frame_hi=b * 20 + 19, instances=tuple(instances)))
    return MILDataset(
        clip_id=clip_id, event_name="accident",
        feature_names=tuple(f"f{i}" for i in range(FEATURES)),
        window_size=WINDOW, sampling_rate=5, bags=bags)


def _clips(n_clips: int, bags_per_clip: int) -> list[MILDataset]:
    return [_clip(f"cam{i:02d}", bags_per_clip, seed=100 + i)
            for i in range(n_clips)]


def _corpus(datasets: list[MILDataset]) -> ShardedCorpus:
    specs = [ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                       n_instances=d.n_instances, loader=(lambda d=d: d))
             for d in datasets]
    return ShardedCorpus(specs, corpus_id="bench")


def _relevant_ids(merged: MILDataset) -> set[int]:
    return {
        bag.bag_id for bag in merged.bags
        if any(np.abs(inst.matrix).max() > 2.0 for inst in bag.instances)
    }


def _timed_top_k(engine, k: int) -> tuple[list[int], float]:
    """Best-of-REPEATS wall seconds for one post-feed ``top_k`` call."""
    best, result = float("inf"), None
    for _ in range(REPEATS):
        if isinstance(engine, ShardedRetrievalEngine):
            engine._candidate_streams = None
            engine._leftover_streams = None
        t0 = time.perf_counter()
        result = engine.top_k(k)
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return result, best


def _recall(top: list[int], relevant: set[int]) -> float:
    return len(set(top) & relevant) / min(len(top), len(relevant))


def test_smoke_pruned_ranking_and_telemetry():
    """Fast CI check: the pruned path ranks, feeds, and instruments."""
    datasets = _clips(2, 48)
    registry = Telemetry()
    previous = set_telemetry(registry)
    try:
        engine = ShardedRetrievalEngine(_corpus(datasets),
                                        candidates_per_shard=8)
        merged = merge_datasets(datasets, merged_id="bench")
        relevant = _relevant_ids(merged)
        top = engine.top_k(10)
        engine.feed({b: b in relevant for b in top})
        ranking = engine.rank()
    finally:
        set_telemetry(previous)
    assert sorted(ranking) == list(range(len(merged)))
    assert registry.counter("sharded.bags_pruned").value() > 0
    assert registry.counter("sharded.bags_scored").value() > 0
    assert any(s.name == "sharded.rank" for s in registry.spans)


def test_warm_round_speedup_and_recall():
    datasets = _clips(N_CLIPS, BAGS_PER_CLIP)
    merged = merge_datasets(datasets, merged_id="bench")
    relevant = _relevant_ids(merged)

    mono = MILRetrievalEngine(merged)
    pruned = ShardedRetrievalEngine(
        _corpus(datasets), candidates_per_shard=CANDIDATES_PER_SHARD)

    mono_times, pruned_times = [], []
    mono_top = pruned_top = None
    for _ in range(ROUNDS):
        mono_top, mono_s = _timed_top_k(mono, TOP_K)
        pruned_top, pruned_s = _timed_top_k(pruned, TOP_K)
        mono_times.append(mono_s)
        pruned_times.append(pruned_s)
        labels = {b: b in relevant
                  for b in mono.rank()[:LABELS_PER_ROUND]}
        mono.feed(labels)
        pruned.feed(labels)
    mono_top, mono_s = _timed_top_k(mono, TOP_K)       # round 5, trained
    pruned_top, pruned_s = _timed_top_k(pruned, TOP_K)
    mono_times.append(mono_s)
    pruned_times.append(pruned_s)

    # Rounds 2..5 have a trained model and warm caches on both sides.
    warm_mono = sum(mono_times[2:])
    warm_pruned = sum(pruned_times[2:])
    speedup = warm_mono / warm_pruned
    mono_recall = _recall(mono_top, relevant)
    pruned_recall = _recall(pruned_top, relevant)

    recorder = Telemetry()
    per_round = recorder.gauge(
        "bench.round_top_k_ms", "best-of top_k(20) wall ms per round")
    for i, (m, s) in enumerate(zip(mono_times, pruned_times)):
        per_round.set(round(m * 1000, 3), path="monolithic",
                      round_index=i)
        per_round.set(round(s * 1000, 3), path="pruned", round_index=i)
    recorder.gauge("bench.warm_rounds_ms",
                   "summed wall ms of trained rounds 2-5").set(
        round(warm_mono * 1000, 3), path="monolithic")
    recorder.gauge("bench.warm_rounds_ms", "").set(
        round(warm_pruned * 1000, 3), path="pruned")
    recorder.gauge("bench.warm_speedup",
                   "monolithic / pruned warm-round wall time").set(
        round(speedup, 2))
    recorder.gauge("bench.recall_at_20",
                   "round-5 top-20 recall of the spiked bags").set(
        round(mono_recall, 4), path="monolithic")
    recorder.gauge("bench.recall_at_20", "").set(
        round(pruned_recall, 4), path="pruned")
    merge_bench(BENCH_PATH, "pruned_speedup", recorder,
                meta={"n_clips": N_CLIPS, "bags_per_clip": BAGS_PER_CLIP,
                      "instances_per_bag": INSTANCES_PER_BAG,
                      "candidates_per_shard": CANDIDATES_PER_SHARD,
                      "rounds": ROUNDS, "top_k": TOP_K,
                      "labels_per_round": LABELS_PER_ROUND,
                      "repeats": REPEATS,
                      "speedup_floor": SPEEDUP_FLOOR})

    assert pruned_recall >= mono_recall, (
        f"pruning lost recall: {pruned_recall:.3f} < {mono_recall:.3f}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-round speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor (monolithic {warm_mono * 1000:.1f}ms "
        f"vs pruned {warm_pruned * 1000:.1f}ms)")


def test_round_latency_scales_sublinearly():
    """4x the corpus (fixed shard count, bigger shards) must cost far
    less than 4x the warm round: the candidate stage is O(shards x M)."""
    sizes = (120, 240, 480)
    latencies = {}
    for bags_per_clip in sizes:
        datasets = _clips(N_CLIPS, bags_per_clip)
        merged = merge_datasets(datasets, merged_id="bench")
        relevant = _relevant_ids(merged)
        engine = ShardedRetrievalEngine(
            _corpus(datasets), candidates_per_shard=CANDIDATES_PER_SHARD)
        engine.feed({b: b in relevant
                     for b in engine.top_k(LABELS_PER_ROUND)})
        engine.feed({b: b in relevant
                     for b in engine.top_k(LABELS_PER_ROUND)})
        _, warm_s = _timed_top_k(engine, TOP_K)
        latencies[bags_per_clip] = warm_s

    growth = latencies[sizes[-1]] / latencies[sizes[0]]
    corpus_growth = sizes[-1] / sizes[0]

    recorder = Telemetry()
    gauge = recorder.gauge("bench.warm_round_ms",
                           "trained-round top_k(20) wall ms by corpus size")
    for bags_per_clip, seconds in latencies.items():
        gauge.set(round(seconds * 1000, 3),
                  total_bags=N_CLIPS * bags_per_clip)
    recorder.gauge("bench.latency_growth",
                   "latency ratio largest/smallest corpus").set(
        round(growth, 2))
    merge_bench(BENCH_PATH, "round_latency_scaling", recorder,
                meta={"n_clips": N_CLIPS, "sizes": list(sizes),
                      "candidates_per_shard": CANDIDATES_PER_SHARD,
                      "corpus_growth": corpus_growth})

    assert growth < corpus_growth * 0.75, (
        f"round latency grew {growth:.2f}x over a {corpus_growth:.0f}x "
        f"corpus — not sublinear")
