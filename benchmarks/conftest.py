"""Benchmark support: collect paper-vs-measured tables and print them in
the terminal summary (so ``pytest benchmarks/ --benchmark-only`` output is
self-contained evidence), and persist them under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

_RESULTS_DIR = Path(__file__).parent / "results"
_TABLES: list[str] = []


def record_experiment(result) -> None:
    """Register an ExperimentResult for the end-of-run summary and
    persist both human-readable and machine-readable artifacts."""
    import json

    from repro.eval.reporting import comparison_table

    text = comparison_table(result)
    _TABLES.append(text)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
    (_RESULTS_DIR / f"{result.name}.json").write_text(
        json.dumps(result.to_json_dict(), indent=2) + "\n")
    if result.series:
        from repro.eval.svg import save_chart

        save_chart(result.series, _RESULTS_DIR / f"{result.name}.svg",
                   title=result.name)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper-vs-measured experiment tables")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
