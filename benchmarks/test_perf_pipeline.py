"""Staged-pipeline benchmark: ablation sweeps with artifact reuse.

Times a 4-value ``window_size`` sweep over one vision-mode clip twice —
cold (no artifact store: every value re-renders, re-segments and
re-tracks the identical footage, the pre-refactor behaviour) and
store-backed (the first value populates the content-addressed store,
the remaining three replay Render/Segment/Track and recompute only
Series -> Windows).  Vision stages dominate per-clip cost, so the
store-backed sweep must come in >= 3x faster; datasets must be
identical either way.  Numbers land in ``BENCH_pipeline.json`` at the
repo root so they travel with the code (in the shared
``repro-bench-v1`` schema; see :mod:`repro.obs.bench`).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.eval import build_artifacts
from repro.obs import Telemetry, merge_bench
from repro.pipeline import DiskArtifactStore
from repro.sim import tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

WINDOWS = (2, 3, 5, 7)


def _bench_clip():
    return tunnel(n_frames=400, seed=3, spawn_interval=(60.0, 90.0),
                  n_wall_crashes=2, n_sudden_stops=1)


def _sweep(sim, store):
    artifacts, times = {}, {}
    for w in WINDOWS:
        t0 = time.perf_counter()
        artifacts[w] = build_artifacts(sim, mode="vision", window_size=w,
                                       store=store)
        times[w] = time.perf_counter() - t0
    return artifacts, times


def test_smoke_store_backed_matches_cold():
    """Store-backed and cold sweeps agree bag-for-bag (fast, oracle)."""
    import tempfile

    sim = _bench_clip()
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskArtifactStore(tmp)
        for w in WINDOWS[:2]:
            cold = build_artifacts(sim, mode="oracle", window_size=w)
            warm = build_artifacts(sim, mode="oracle", window_size=w,
                                   store=store)
            assert ([b.bag_id for b in cold.dataset.bags]
                    == [b.bag_id for b in warm.dataset.bags])
            np.testing.assert_array_equal(cold.dataset.instance_matrix(),
                                          warm.dataset.instance_matrix())


def test_window_sweep_speedup(benchmark, tmp_path):
    """4-value vision window sweep: store-backed >= 3x faster than cold."""
    sim = _bench_clip()
    store = DiskArtifactStore(tmp_path / "cache")

    def run():
        cold_art, cold_times = _sweep(sim, store=None)
        warm_art, warm_times = _sweep(sim, store=store)
        return cold_art, cold_times, warm_art, warm_times

    cold_art, cold_times, warm_art, warm_times = benchmark.pedantic(
        run, rounds=1, iterations=1)

    for w in WINDOWS:
        np.testing.assert_array_equal(cold_art[w].dataset.instance_matrix(),
                                      warm_art[w].dataset.instance_matrix())
    # The first store-backed value pays the full vision cost; the rest
    # replay it.  All three replays must have skipped Segment and Track.
    for w in WINDOWS[1:]:
        assert warm_art[w].stage_runs["segment"] == 0
        assert warm_art[w].stage_runs["track"] == 0

    cold_total = sum(cold_times.values())
    warm_total = sum(warm_times.values())
    speedup = cold_total / warm_total
    # Record through the telemetry registry so every BENCH_*.json file
    # shares the repro-bench-v1 schema.
    recorder = Telemetry()
    sweep_s = recorder.gauge("bench.sweep_s",
                             "seconds per window-sweep value")
    for w, t in cold_times.items():
        sweep_s.set(round(t, 3), phase="cold", window=w)
    for w, t in warm_times.items():
        sweep_s.set(round(t, 3), phase="store_backed", window=w)
    total_s = recorder.gauge("bench.sweep_total_s",
                             "seconds for the full 4-value sweep")
    total_s.set(round(cold_total, 3), phase="cold")
    total_s.set(round(warm_total, 3), phase="store_backed")
    recorder.gauge("bench.speedup",
                   "cold over store-backed").set(round(speedup, 2))
    merge_bench(BENCH_PATH, "window_sweep", recorder,
                meta={"scenario": "tunnel-400", "mode": "vision",
                      "windows": list(WINDOWS)})
    assert speedup >= 3.0, (
        f"store-backed sweep speedup {speedup:.2f}x below the 3x target "
        f"(cold {cold_total:.2f}s vs store-backed {warm_total:.2f}s)")
