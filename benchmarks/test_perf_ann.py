"""ANN nomination benchmark: IVF probe vs exhaustive heuristic scan.

Protocol: a synthetic multi-clip corpus (8 clips, spiked "incident"
bags) runs two oracle feedback rounds, then ranks with pruning
disabled (``candidates_per_shard=None``) so the heuristic baseline
scores *every* bag exactly.  A grid of ``(n_cells, nprobe)`` IVF
nominators replays the identical labels and we measure, per setting:

* recall@20 — overlap of the IVF-nominated top-20 with the exhaustive
  exact top-20;
* scan fraction — bags handed to the OCSVM rerank / total bags
  (the baseline scans 1.0 by construction).

Claims checked:

* some probe setting reaches recall@20 >= 0.95 while scanning <= 25%
  of the corpus per round;
* with ``n_cells`` grown as sqrt(bags) the trained-round ``top_k(20)``
  latency at 16x corpus stays within 2x of the 1x corpus.

Numbers land in ``BENCH_ann.json`` (``repro-bench-v1`` schema).
"""

from __future__ import annotations

import math
import time
from pathlib import Path

import numpy as np

from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import (
    IVFNominator,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.obs import Telemetry, merge_bench, set_telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_ann.json"

N_CLIPS = 8
SWEEP_BAGS = 360          # per clip -> 2880-bag corpus for the sweep
INSTANCES_PER_BAG = 4
WINDOW, FEATURES = 6, 4
SPIKE_EVERY = 12          # one "incident" bag per 12 windows
ROUNDS = 2
TOP_K = 20
LABELS_PER_ROUND = 20
REPEATS = 3               # best-of, per timed round
CELL_GRID = (16, 32, 64)
PROBE_GRID = (1, 2, 4, 8)
RECALL_FLOOR = 0.95
SCAN_CEILING = 0.25
SCALES = {1: 90, 4: 360, 16: 1440}   # scale -> bags per clip
SCALE_NPROBE = 8
SCALE_CANDIDATES = 64
LATENCY_CEILING = 2.0


def _clip(clip_id: str, n_bags: int, seed: int) -> MILDataset:
    rng = np.random.default_rng(seed)
    bags, iid = [], 0
    for b in range(n_bags):
        instances = []
        for _ in range(INSTANCES_PER_BAG):
            matrix = rng.normal(scale=0.3, size=(WINDOW, FEATURES))
            if b % SPIKE_EVERY == 0:
                matrix[WINDOW // 2] += 4.0
            instances.append(Instance(instance_id=iid, bag_id=b,
                                      track_id=iid, matrix=matrix))
            iid += 1
        bags.append(Bag(bag_id=b, clip_id=clip_id, frame_lo=b * 20,
                        frame_hi=b * 20 + 19, instances=tuple(instances)))
    return MILDataset(
        clip_id=clip_id, event_name="accident",
        feature_names=tuple(f"f{i}" for i in range(FEATURES)),
        window_size=WINDOW, sampling_rate=5, bags=bags)


def _clips(n_clips: int, bags_per_clip: int) -> list[MILDataset]:
    return [_clip(f"cam{i:02d}", bags_per_clip, seed=100 + i)
            for i in range(n_clips)]


def _corpus(datasets: list[MILDataset]) -> ShardedCorpus:
    specs = [ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                       n_instances=d.n_instances, loader=(lambda d=d: d))
             for d in datasets]
    return ShardedCorpus(specs, corpus_id="bench-ann")


def _relevant_ids(bags_per_clip: int) -> set[int]:
    """Global ids of the spiked bags (shards offset in spec order)."""
    return {clip * bags_per_clip + b
            for clip in range(N_CLIPS)
            for b in range(0, bags_per_clip, SPIKE_EVERY)}


def _scanned_fraction(engine: ShardedRetrievalEngine) -> float:
    nominated = engine._round_nominated
    assert nominated is not None, "rank before reading the scan fraction"
    return sum(len(v) for v in nominated.values()) / len(engine.corpus)


def _timed_round(engine: ShardedRetrievalEngine, k: int) -> float:
    """Best-of-REPEATS wall seconds for one post-feed ``top_k`` call."""
    best = float("inf")
    for _ in range(REPEATS):
        engine._candidate_streams = None
        engine._leftover_streams = None
        engine._round_nominated = None
        t0 = time.perf_counter()
        engine.top_k(k)
        best = min(best, time.perf_counter() - t0)
    return best


def test_smoke_ivf_nomination_and_telemetry():
    """Fast CI check: the IVF path ranks, feeds, and instruments."""
    datasets = _clips(2, 48)
    registry = Telemetry()
    previous = set_telemetry(registry)
    try:
        engine = ShardedRetrievalEngine(
            _corpus(datasets), candidates_per_shard=8,
            nominator=IVFNominator(n_cells=8, nprobe=2))
        relevant = _relevant_ids(48)
        top = engine.top_k(10)
        engine.feed({b: b in relevant for b in top})
        ranking = engine.rank()
    finally:
        set_telemetry(previous)
    assert sorted(ranking) == list(range(2 * 48))
    assert registry.counter("index.builds").value() > 0
    assert registry.counter("index.cells_probed").value() > 0
    assert registry.counter("index.bags_nominated").value() > 0
    assert any(s.name == "index.probe" for s in registry.spans)


def test_recall_vs_scan_sweep():
    datasets = _clips(N_CLIPS, SWEEP_BAGS)
    relevant = _relevant_ids(SWEEP_BAGS)

    # Exhaustive baseline: heuristic nominator, pruning disabled, so
    # every bag is scored exactly.  Its labels drive every IVF replay.
    exact = ShardedRetrievalEngine(_corpus(datasets))
    label_rounds = []
    for _ in range(ROUNDS):
        labels = {b: b in relevant for b in exact.top_k(LABELS_PER_ROUND)}
        label_rounds.append(labels)
        exact.feed(labels)
    exact_top = exact.top_k(TOP_K)
    assert _scanned_fraction(exact) == 1.0

    recorder = Telemetry()
    recall_gauge = recorder.gauge(
        "bench.recall_at_20", "IVF top-20 overlap with the exact top-20")
    scan_gauge = recorder.gauge(
        "bench.scan_fraction", "bags reranked exactly / total bags")
    frontier = []
    for n_cells in CELL_GRID:
        for nprobe in PROBE_GRID:
            engine = ShardedRetrievalEngine(
                _corpus(datasets),
                nominator=IVFNominator(n_cells=n_cells, nprobe=nprobe))
            for labels in label_rounds:
                engine.feed(labels)
            top = engine.top_k(TOP_K)
            recall = len(set(top) & set(exact_top)) / TOP_K
            fraction = _scanned_fraction(engine)
            recall_gauge.set(round(recall, 4),
                             n_cells=n_cells, nprobe=nprobe)
            scan_gauge.set(round(fraction, 4),
                           n_cells=n_cells, nprobe=nprobe)
            frontier.append((n_cells, nprobe, recall, fraction))

    hits = [(c, p, r, f) for c, p, r, f in frontier
            if r >= RECALL_FLOOR and f <= SCAN_CEILING]
    if hits:
        # cheapest qualifying probe, ties broken by recall
        c, p, r, f = min(hits, key=lambda t: (t[3], -t[2]))
        recorder.gauge("bench.best_recall_at_20",
                       "recall of the cheapest qualifying setting").set(
            round(r, 4))
        recorder.gauge("bench.best_scan_fraction", "").set(round(f, 4))
        recorder.gauge("bench.best_n_cells", "").set(c)
        recorder.gauge("bench.best_nprobe", "").set(p)
    merge_bench(BENCH_PATH, "recall_scan_sweep", recorder,
                meta={"n_clips": N_CLIPS, "bags_per_clip": SWEEP_BAGS,
                      "instances_per_bag": INSTANCES_PER_BAG,
                      "rounds": ROUNDS, "top_k": TOP_K,
                      "labels_per_round": LABELS_PER_ROUND,
                      "cell_grid": list(CELL_GRID),
                      "probe_grid": list(PROBE_GRID),
                      "baseline_scan_fraction": 1.0,
                      "recall_floor": RECALL_FLOOR,
                      "scan_ceiling": SCAN_CEILING})

    assert hits, (
        f"no (n_cells, nprobe) setting reached recall@20 >= "
        f"{RECALL_FLOOR} at <= {SCAN_CEILING:.0%} scanned; frontier: "
        + ", ".join(f"({c},{p}): r={r:.2f} f={f:.2f}"
                    for c, p, r, f in frontier))


def test_round_latency_at_16x_corpus():
    """Trained-round latency with n_cells ~ sqrt(bags): 16x the corpus
    must stay within 2x the 1x-corpus round."""
    latencies = {}
    for scale, bags_per_clip in SCALES.items():
        datasets = _clips(N_CLIPS, bags_per_clip)
        relevant = _relevant_ids(bags_per_clip)
        n_cells = max(SCALE_NPROBE + 1,
                      int(round(math.sqrt(bags_per_clip * N_CLIPS))))
        engine = ShardedRetrievalEngine(
            _corpus(datasets), candidates_per_shard=SCALE_CANDIDATES,
            nominator=IVFNominator(n_cells=n_cells, nprobe=SCALE_NPROBE))
        for _ in range(ROUNDS):
            engine.feed({b: b in relevant
                         for b in engine.top_k(LABELS_PER_ROUND)})
        engine.top_k(TOP_K)   # warm-up: pays the lazy index build
        latencies[scale] = _timed_round(engine, TOP_K)

    growth = latencies[16] / latencies[1]

    recorder = Telemetry()
    gauge = recorder.gauge("bench.warm_round_ms",
                           "trained-round top_k(20) wall ms by scale")
    for scale, seconds in latencies.items():
        gauge.set(round(seconds * 1000, 3), scale=scale,
                  total_bags=N_CLIPS * SCALES[scale])
    recorder.gauge("bench.latency_growth_16x",
                   "round latency ratio 16x / 1x corpus").set(
        round(growth, 2))
    merge_bench(BENCH_PATH, "corpus_scaling", recorder,
                meta={"n_clips": N_CLIPS,
                      "scales": {str(k): v for k, v in SCALES.items()},
                      "candidates_per_shard": SCALE_CANDIDATES,
                      "nprobe": SCALE_NPROBE,
                      "n_cells_rule": "sqrt(total bags)",
                      "repeats": REPEATS,
                      "latency_ceiling": LATENCY_CEILING})

    assert growth <= LATENCY_CEILING, (
        f"trained-round latency grew {growth:.2f}x at 16x corpus "
        f"(ceiling {LATENCY_CEILING:.0f}x): "
        + ", ".join(f"{s}x={v * 1000:.2f}ms"
                    for s, v in latencies.items()))
