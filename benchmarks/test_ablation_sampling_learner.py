"""Ablations: sampling rate (Section 5.1) and one-class learner choice.

* The paper samples every 5 frames; rates 3-8 sit on the same accuracy
  plateau while very coarse rates miss events entirely.
* The paper draws a *ball* (Figure 5) but cites Schoelkopf's hyperplane
  machine; under the RBF kernel SVDD and the nu-OCSVM rank identically,
  so the mismatch is immaterial — asserted exactly here.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval.experiments import ablation_learner, ablation_sampling_rate


def test_sampling_rate(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_sampling_rate(rates=(3, 5, 8, 12), seed=0),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {label: accs[-1] for label, accs in result.series.items()}
    # The paper's 5 frames/checkpoint sits on the plateau.
    assert finals["rate=5"] >= max(finals.values()) - 0.05 - 1e-9
    # A too-coarse rate (12 frames ~ the whole event) collapses.
    assert finals["rate=12"] < finals["rate=5"]


def test_learner_equivalence(benchmark):
    result = benchmark.pedantic(lambda: ablation_learner(seed=0),
                                rounds=1, iterations=1)
    record_experiment(result)
    assert result.series["ocsvm"] == pytest.approx(result.series["svdd"])
