"""Streaming ingestion benchmark: time-to-first-queryable-window + lag.

Two claims behind the streaming refactor, measured on the standard
400-frame intersection clip and persisted to ``BENCH_streaming.json``
(shared ``repro-bench-v1`` schema):

* **Time to first queryable window.**  Streaming makes the clip's first
  window bags queryable while later segments are still rendering; the
  acceptance bar is < 1/2 of the full batch build (in practice the first
  segment lands in ~1/4 of the batch time).
* **Ingest lag under concurrent feedback rounds.**  An open multi-clip
  query session runs relevance-feedback rounds *between segments* of a
  concurrent streaming ingest; we record the frontier lag (frames
  processed but not yet queryable), per-round latency, and that the
  session's corpus grew mid-query without being recreated.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.db import MultiClipQuerySession, StreamingIngest, VideoDatabase
from repro.eval import build_artifacts
from repro.obs import Telemetry, merge_bench, set_telemetry
from repro.pipeline import PipelineConfig, PipelineRunner, SegmentedRunner
from repro.sim import intersection, tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_streaming.json"

SEGMENT_FRAMES = 100  # 400-frame clip -> 4 segments


def _bench_clip():
    return intersection(n_frames=400, seed=4, n_collisions=2)


def test_time_to_first_queryable_window():
    sim = _bench_clip()

    t0 = time.perf_counter()
    batch = PipelineRunner(PipelineConfig()).run(sim)
    batch_s = time.perf_counter() - t0

    runner = SegmentedRunner(segment_frames=SEGMENT_FRAMES)
    first_window_s = None
    t0 = time.perf_counter()
    for emission in runner.stream(sim):
        if emission.bags and first_window_s is None:
            first_window_s = time.perf_counter() - t0
    stream_s = time.perf_counter() - t0

    assert first_window_s is not None
    assert len(runner.artifacts.dataset.bags) == len(batch.dataset.bags)
    # The acceptance bar: first windows queryable in < 1/2 the batch
    # build time.
    assert first_window_s < 0.5 * batch_s

    recorder = Telemetry()
    wall = recorder.gauge(
        "bench.build_s", "wall seconds until the stage is queryable")
    wall.set(round(batch_s, 4), stage="batch_full")
    wall.set(round(first_window_s, 4), stage="stream_first_window")
    wall.set(round(stream_s, 4), stage="stream_full")
    recorder.gauge(
        "bench.first_window_fraction",
        "first-queryable-window time as a fraction of the batch build",
    ).set(round(first_window_s / batch_s, 4))
    merge_bench(BENCH_PATH, "time_to_first_queryable_window", recorder,
                meta={"scenario": "intersection-400",
                      "segment_frames": SEGMENT_FRAMES,
                      "acceptance": "first_window < 0.5 * batch"})


def test_ingest_lag_under_concurrent_feedback():
    registry = Telemetry()
    previous = set_telemetry(registry)
    try:
        db = VideoDatabase()
        base = tunnel(n_frames=400, seed=3,
                      spawn_interval=(60.0, 90.0),
                      n_wall_crashes=2, n_sudden_stops=1)
        art = build_artifacts(base, mode="oracle")
        db.ingest_simulation(base, art.tracks, art.dataset)

        sim = _bench_clip()
        ingest = StreamingIngest(db, sim,
                                 segment_frames=SEGMENT_FRAMES)
        session = None
        round_latencies: list[float] = []
        lags: list[float] = []
        sizes: list[int] = []

        def feedback_round(emission):
            nonlocal session
            lags.append(registry.gauge("ingest.lag_frames").value())
            if session is None:
                # First windows just landed: open the session mid-ingest.
                session = MultiClipQuerySession(
                    db, [base.name, sim.name], "accident", top_k=8)
            t0 = time.perf_counter()
            results = session.results()
            session.feed({results[0]: True})
            round_latencies.append(time.perf_counter() - t0)
            sizes.append(len(session.dataset))

        t0 = time.perf_counter()
        ingest.run(progress=feedback_round)
        ingest_s = time.perf_counter() - t0
    finally:
        set_telemetry(previous)

    # The open session's corpus grew across the concurrent rounds.
    assert session is not None
    assert sizes[-1] > sizes[0]
    assert sizes[-1] == len(db.dataset(sim.name, "accident")) + \
        len(art.dataset)

    recorder = Telemetry()
    recorder.gauge("bench.ingest_s",
                   "wall seconds for the full concurrent ingest").set(
        round(ingest_s, 4))
    lag = recorder.gauge("bench.lag_frames",
                         "frontier lag when each feedback round ran")
    lag.set(round(max(lags), 1), stat="max")
    lag.set(round(sum(lags) / len(lags), 1), stat="mean")
    rl = recorder.gauge("bench.round_latency_s",
                        "feedback-round latency during the ingest")
    rl.set(round(max(round_latencies), 4), stat="max")
    rl.set(round(sum(round_latencies) / len(round_latencies), 4),
           stat="mean")
    recorder.gauge("bench.corpus_growth_bags",
                   "bags the open session gained mid-query").set(
        sizes[-1] - sizes[0])
    merge_bench(BENCH_PATH, "ingest_lag_under_feedback", recorder,
                meta={"scenario": "intersection-400 + tunnel-400",
                      "segment_frames": SEGMENT_FRAMES,
                      "rounds": len(round_latencies)})
