"""Figure 8 reproduction: retrieval accuracy over RF rounds, clip 1.

Paper: tunnel clip (2504 frames, sparse single-vehicle accidents).  Both
methods share the Initial point (~40% in the paper); the MIL+OCSVM
framework climbs steadily (to 60%) while Weighted_RF gains only ~10
points overall and stops improving.  We assert the *shape*: shared
initial, a clearly larger MIL gain, and MIL finishing above Weighted_RF.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import figure8


def test_figure8_tunnel(benchmark):
    result = benchmark.pedantic(
        lambda: figure8(seed=0, mode="vision"), rounds=1, iterations=1)
    record_experiment(result)
    mil = result.series["MIL_OCSVM"]
    wrf = result.series["Weighted_RF"]

    # Same initial round: both methods use the same heuristic ranking.
    assert mil[0] == pytest.approx(wrf[0])
    # MIL climbs substantially (paper: +20 points, 40% -> 60%).
    assert mil[-1] - mil[0] >= 0.10
    # MIL never ends below where it started, and beats the baseline.
    assert mil[-1] >= mil[0]
    assert mil[-1] > wrf[-1]
    # Weighted_RF's overall gain is small (paper: ~10 points max).
    assert wrf[-1] - wrf[0] <= 0.10 + 1e-9
    # And MIL's gain clearly exceeds the baseline's.
    assert (mil[-1] - mil[0]) > (wrf[-1] - wrf[0])


def test_figure8_monotone_mil(benchmark):
    """MIL accuracy is non-decreasing over rounds ('increase steadily')."""
    result = benchmark.pedantic(
        lambda: figure8(seed=2, mode="vision"), rounds=1, iterations=1)
    mil = result.series["MIL_OCSVM"]
    assert all(b >= a - 1e-9 for a, b in zip(mil, mil[1:]))
