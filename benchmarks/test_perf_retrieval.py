"""Retrieval hot-path benchmark: Gram caching and parallel ingestion.

Two comparisons, both written to ``BENCH_retrieval.json`` at the repo
root (``repro-bench-v1`` schema) so the numbers travel with the code:

* **Cold vs warm feedback rounds.**  ``SeedPathEngine`` below replicates
  the pre-cache engine faithfully (per-instance vector dict, per-round
  ``np.stack`` + full kernel evaluation, per-round bag re-sorting, the
  O(n_bags) bag lookup and the Python double-loop bag max).  The cached
  engine must beat it by >= 3x on warm rounds (>= 2000 instances).
* **Serial vs parallel multi-clip ingestion.**  Artifacts must be
  identical; wall-clock is recorded but *not* asserted, because the gain
  depends on ``os.cpu_count()`` (on a 1-core runner the pool is pure
  overhead and ``max_workers=None`` resolves to the serial path).
"""

from __future__ import annotations

import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MILRetrievalEngine
from repro.core.bags import Bag, Instance, MILDataset
from repro.eval.parallel import artifacts_for_seeds
from repro.obs import Telemetry, merge_bench
from repro.svm.one_class import OneClassSVM

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_retrieval.json"


def synth_dataset(n_bags: int, instances_per_bag: int, window: int,
                  n_features: int, seed: int = 0) -> MILDataset:
    """Synthetic MIL corpus; every third bag carries one feature spike."""
    rng = np.random.default_rng(seed)
    bags = []
    iid = 0
    for b in range(n_bags):
        instances = []
        for k in range(instances_per_bag):
            matrix = rng.normal(0.0, 0.3, size=(window, n_features))
            if b % 3 == 0 and k == 0:
                matrix[window // 2] += rng.uniform(1.0, 2.0, size=n_features)
            instances.append(Instance(iid, b, iid, matrix))
            iid += 1
        bags.append(Bag(b, "synth", b * 15, b * 15 + 14, tuple(instances)))
    return MILDataset("synth", "accident",
                      tuple(f"f{i}" for i in range(n_features)),
                      window, 5, bags)


class SeedPathEngine(MILRetrievalEngine):
    """Faithful replica of the engine before the batched hot path.

    Kept as the benchmark baseline so the measured speedup is against
    the actual seed behaviour, not a strawman: per-instance vector dict,
    per-round training-set re-sort, per-round standardize + full kernel
    evaluation, linear bag lookup, and the Python-loop bag max.
    """

    def __init__(self, dataset: MILDataset, **kwargs) -> None:
        super().__init__(dataset, use_cache=False, **kwargs)
        self._vectors = {
            inst.instance_id: inst.vector
            for inst in dataset.all_instances()
        }

    def _training_instance_ids(self, relevant_bags):
        ids = []
        for bag in relevant_bags:
            if not bag.instances:
                continue
            ranked = sorted(
                bag.instances,
                key=lambda i: self._heuristic_instance_scores[i.instance_id],
                reverse=True)
            take = len(ranked) if self._top_m is None else self._top_m
            ids.extend(inst.instance_id for inst in ranked[:take])
        return ids

    def _retrain(self):
        relevant = []
        for bag_id in self.relevant_bag_ids:
            for bag in self.dataset.bags:
                if bag.bag_id == bag_id:
                    relevant.append(bag)
                    break
        training_ids = self._training_instance_ids(relevant)
        if not training_ids:
            self._model = None
            return
        x = self._scaler.transform(
            np.stack([self._vectors[i] for i in training_ids]))
        nu = self._compute_nu(len(relevant), len(training_ids))
        self.last_nu_ = nu
        self.training_size_ = len(training_ids)
        self._model = OneClassSVM(nu=nu, kernel=self.kernel,
                                  gamma=self.gamma).fit(x)

    def _instance_scores(self):
        ids = list(self._vectors)
        x = self._scaler.transform(
            np.stack([self._vectors[i] for i in ids]))
        return dict(zip(ids, self._model.decision_function(x).astype(float)))

    def _instance_score_values(self):
        scores = self._instance_scores()
        return np.fromiter((scores[i] for i in self._instance_order),
                           dtype=float, count=len(self._instance_order))

    def bag_scores(self):
        if not self.is_trained:
            return self._heuristic_bag_scores.copy()
        instance_scores = self._instance_scores()
        scores = np.full(len(self.dataset.bags), -np.inf)
        for b, bag in enumerate(self.dataset.bags):
            for inst in bag.instances:
                scores[b] = max(scores[b], instance_scores[inst.instance_id])
        return scores


def _feedback_batches(dataset: MILDataset, rounds: int, per_round: int):
    relevant = [b.bag_id for b in dataset.bags if b.bag_id % 3 == 0]
    return [
        {b: True for b in relevant[r * per_round:(r + 1) * per_round]}
        for r in range(rounds)
    ]


def _time_rounds(engine, batches) -> list[float]:
    times = []
    for batch in batches:
        t0 = time.perf_counter()
        engine.feed(batch)
        engine.rank()
        times.append(time.perf_counter() - t0)
    return times


def test_smoke_cached_matches_seed_path():
    """Cached and seed-path engines agree on a small corpus (fast)."""
    dataset = synth_dataset(60, 3, 4, 6)
    batches = _feedback_batches(dataset, rounds=2, per_round=6)
    cached = MILRetrievalEngine(dataset)
    seed = SeedPathEngine(dataset)
    for batch in batches:
        cached.feed(batch)
        seed.feed(batch)
    assert cached.last_nu_ == pytest.approx(seed.last_nu_)
    sc, ss = cached._instance_scores(), seed._instance_scores()
    assert max(abs(sc[i] - ss[i]) for i in sc) < 1e-8
    # Rank equality only up to score ties: margin support vectors sit at
    # decision value exactly 0, so <1e-8 float noise may swap them.
    np.testing.assert_allclose(cached.bag_scores(), seed.bag_scores(),
                               atol=1e-8)


def test_warm_round_speedup(benchmark):
    """Warm feedback rounds >= 3x faster than the seed path (>= 2000 TSs)."""
    n_bags, ipb, window, nf = 2000, 3, 8, 12       # 6000 instances, d = 96
    dataset = synth_dataset(n_bags, ipb, window, nf)
    batches = _feedback_batches(dataset, rounds=6, per_round=8)

    def run():
        cached = _time_rounds(
            MILRetrievalEngine(dataset, warm_start=True), batches)
        seed = _time_rounds(SeedPathEngine(dataset), batches)
        return cached, seed

    cached, seed = benchmark.pedantic(run, rounds=1, iterations=1)
    warm_cached = statistics.median(cached[1:])
    warm_seed = statistics.median(seed[1:])
    speedup = warm_seed / warm_cached
    recorder = Telemetry()
    per_round = recorder.gauge("bench.round_ms",
                               "feed+rank wall ms per feedback round")
    for i, (c, s) in enumerate(zip(cached, seed)):
        per_round.set(round(c * 1e3, 2), path="cached", round_index=i)
        per_round.set(round(s * 1e3, 2), path="seed", round_index=i)
    warm_median = recorder.gauge("bench.warm_median_ms",
                                 "median wall ms of warm rounds 1+")
    warm_median.set(round(warm_cached * 1e3, 2), path="cached")
    warm_median.set(round(warm_seed * 1e3, 2), path="seed")
    recorder.gauge("bench.warm_speedup",
                   "seed / cached warm-round wall time").set(
        round(speedup, 2))
    merge_bench(BENCH_PATH, "warm_rounds", recorder,
                meta={"n_instances": n_bags * ipb, "dim": window * nf,
                      "rounds": len(batches)})
    assert speedup >= 3.0, (
        f"warm-round speedup {speedup:.2f}x below the 3x target "
        f"(cached {warm_cached * 1e3:.1f} ms vs seed "
        f"{warm_seed * 1e3:.1f} ms)")


def test_parallel_ingestion_matches_serial(benchmark):
    """Parallel fan-out produces byte-identical artifacts; timing is
    recorded for the record, not asserted (cpu_count-dependent)."""
    import os

    seeds = (0, 1, 2, 3)

    def run():
        t0 = time.perf_counter()
        serial = artifacts_for_seeds("tunnel", seeds, mode="oracle",
                                     max_workers=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = artifacts_for_seeds("tunnel", seeds, mode="oracle",
                                       max_workers=None)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert set(serial) == set(parallel) == set(seeds)
    for seed in seeds:
        a, b = serial[seed].dataset, parallel[seed].dataset
        assert [bag.bag_id for bag in a.bags] == [bag.bag_id for bag in b.bags]
        assert a.n_instances == b.n_instances
        for bag_a, bag_b in zip(a.bags, b.bags):
            np.testing.assert_array_equal(bag_a.instance_matrix(),
                                          bag_b.instance_matrix())
    recorder = Telemetry()
    ingest = recorder.gauge("bench.ingest_s",
                            "4-seed ingestion wall seconds by path")
    ingest.set(round(t_serial, 3), path="serial")
    ingest.set(round(t_parallel, 3), path="parallel")
    recorder.gauge("bench.parallel_over_serial",
                   "parallel / serial wall-time ratio").set(
        round(t_parallel / t_serial, 2))
    merge_bench(BENCH_PATH, "parallel_ingestion", recorder,
                meta={"scenario": "tunnel", "seeds": list(seeds),
                      "cpu_count": os.cpu_count()})
