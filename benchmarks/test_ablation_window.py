"""Ablation of the sliding-window size (paper Section 5.1).

The paper sets the window to the typical event length: a car crash spans
~15 frames = 3 sampling points at 5 frames/point.  We sweep the window
size and check the paper's choice is at or near the best final accuracy.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import ablation_window


def test_window_size(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_window(windows=(2, 3, 5, 7), seed=0),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {label: accs[-1] for label, accs in result.series.items()}
    best = max(finals.values())
    # window=3 within one top-20 slot of the best choice.
    assert finals["window=3"] >= best - 0.05 - 1e-9
