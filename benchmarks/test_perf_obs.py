"""Telemetry overhead benchmarks: the observability stack must be cheap.

Two budgets are enforced and recorded to ``BENCH_obs.json``:

* Pipeline instrumentation (PR2 window-sweep workload, enabled vs
  disabled registry): < 3% wall-time slowdown.
* The combined per-round query stack — context propagation, the
  ``query.round`` span + latency histogram, an attached (but never
  capturing) tail profiler, and a running live ``/metrics`` server —
  must cost < 5% of a representative relevance-feedback round.  The
  marginal cost is measured directly (thousands of no-op observed
  rounds, full stack live) and divided by the measured real round
  time: wall-clock A/B of whole runs at the tens-of-milliseconds scale
  is dominated by scheduler jitter on shared CI, while the micro-cost
  ratio is reproducible to a fraction of a percent.

``test_tail_capture_contract`` also records the tail profiler's
keep/discard evidence: a collapsed-stack profile exists only for the
round that beat the threshold.
"""

from __future__ import annotations

import itertools
import time
from pathlib import Path

from repro.db import SemanticQuerySession, VideoDatabase
from repro.eval import build_artifacts
from repro.obs import (LiveMetricsServer, TailProfiler, Telemetry,
                       merge_bench, set_telemetry)
from repro.sim import tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
PROFILE_DIR = Path(__file__).resolve().parent.parent / "profiles"

WINDOWS = (2, 3, 5, 7)
REPEATS = 2          # best-of, per configuration
OVERHEAD_BUDGET = 0.03
COMBINED_BUDGET = 0.05   # full query-round obs stack vs round time


def _bench_clip():
    return tunnel(n_frames=400, seed=3, spawn_interval=(60.0, 90.0),
                  n_wall_crashes=2, n_sudden_stops=1)


def _sweep(sim):
    for w in WINDOWS:
        build_artifacts(sim, mode="vision", window_size=w)


def _best_of(sim, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _sweep(sim)
        best = min(best, time.perf_counter() - t0)
    return best


def test_smoke_disabled_registry_is_inert():
    """Disabled telemetry records nothing while the workload still runs."""
    registry = Telemetry(enabled=False)
    previous = set_telemetry(registry)
    try:
        build_artifacts(tunnel(n_frames=300, seed=5, n_wall_crashes=1,
                               n_sudden_stops=1), mode="oracle")
    finally:
        set_telemetry(previous)
    assert registry.spans == []
    assert all(not m.series() for m in registry.metric_families())


def test_instrumentation_overhead():
    """Enabled-vs-disabled sweep wall time within the 3% budget."""
    sim = _bench_clip()
    _sweep(sim)  # warm caches (imports, JIT-ish numpy paths) off-clock

    enabled_registry = Telemetry()
    previous = set_telemetry(enabled_registry)
    try:
        enabled_s = _best_of(sim)
        set_telemetry(Telemetry(enabled=False))
        disabled_s = _best_of(sim)
    finally:
        set_telemetry(previous)

    overhead = enabled_s / disabled_s - 1.0
    spans_per_sweep = (len(enabled_registry.spans)
                       + enabled_registry.spans_dropped) // REPEATS

    recorder = Telemetry()
    wall = recorder.gauge("bench.sweep_s",
                          "best-of wall seconds for the 4-value sweep")
    wall.set(round(enabled_s, 4), telemetry="enabled")
    wall.set(round(disabled_s, 4), telemetry="disabled")
    recorder.gauge("bench.overhead_pct",
                   "instrumented slowdown").set(round(overhead * 100, 2))
    recorder.gauge("bench.spans_per_sweep",
                   "spans recorded per sweep").set(spans_per_sweep)
    merge_bench(BENCH_PATH, "instrumentation_overhead", recorder,
                meta={"scenario": "tunnel-400", "mode": "vision",
                      "windows": list(WINDOWS), "repeats": REPEATS,
                      "budget_pct": OVERHEAD_BUDGET * 100})

    assert spans_per_sweep > 0, "enabled sweep recorded no spans"
    assert overhead < OVERHEAD_BUDGET, (
        f"instrumentation overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (enabled {enabled_s:.3f}s vs "
        f"disabled {disabled_s:.3f}s)")


# --------------------------------------------------- combined query stack

_uid = itertools.count()


def _query_corpus():
    """A corpus dense enough that feedback rounds take milliseconds."""
    sim = tunnel(n_frames=6000, seed=11, spawn_interval=(6.0, 10.0),
                 n_wall_crashes=5, n_sudden_stops=4)
    artifacts = build_artifacts(sim, mode="oracle")
    db = VideoDatabase(":memory:")
    db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset)
    return db, sim


def _full_stack_session(db, sim):
    """Session + the whole optional stack: profiler on, live server up."""
    server = LiveMetricsServer(port=0)
    server.start()
    profiler = TailProfiler(threshold_ms=250.0)
    session = SemanticQuerySession(
        db, sim.name, "accident", top_k=20,
        user_id=f"bench-{next(_uid)}", ledger=False, profiler=profiler)
    return session, server, profiler


def _obs_cost_us(db, sim, *, enabled: bool, iters: int = 5000) -> float:
    """Best-of per-op wall cost of the round machinery, no-op body."""
    server = profiler = None
    if enabled:
        previous = set_telemetry(Telemetry())
        session, server, profiler = _full_stack_session(db, sim)
    else:
        previous = set_telemetry(Telemetry(enabled=False))
        session = SemanticQuerySession(
            db, sim.name, "accident", top_k=20,
            user_id=f"bench-{next(_uid)}", ledger=False)
    try:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(iters):
                with session._observed_round("results"):
                    pass
            best = min(best, (time.perf_counter() - t0) / iters)
        return best * 1e6
    finally:
        if server is not None:
            server.stop()
        if profiler is not None:
            profiler.close()
        set_telemetry(previous)


def _round_ms(db, sim, rounds: int = 30) -> float:
    """Mean per-op wall time of real feedback rounds, full stack live."""
    previous = set_telemetry(Telemetry())
    session, server, profiler = _full_stack_session(db, sim)
    try:
        t0 = time.perf_counter()
        for _ in range(rounds):
            ids = session.results()
            session.feed({b: (i % 2 == 0) for i, b in enumerate(ids)})
        return (time.perf_counter() - t0) * 1000.0 / (rounds * 2)
    finally:
        server.stop()
        profiler.close()
        set_telemetry(previous)


def test_combined_obs_stack_overhead():
    """Context + span + histogram + profiler + live server < 5%/round."""
    db, sim = _query_corpus()
    enabled_us = _obs_cost_us(db, sim, enabled=True)
    disabled_us = _obs_cost_us(db, sim, enabled=False)
    round_ms = _round_ms(db, sim)
    marginal_us = max(0.0, enabled_us - disabled_us)
    overhead = marginal_us / 1000.0 / round_ms

    recorder = Telemetry()
    cost = recorder.gauge("bench.obs_us_per_round",
                          "per-round obs machinery cost, no-op body")
    cost.set(round(enabled_us, 2), stack="enabled")
    cost.set(round(disabled_us, 2), stack="disabled")
    recorder.gauge("bench.round_ms",
                   "mean real feedback-round wall time").set(round(round_ms, 3))
    recorder.gauge("bench.overhead_pct",
                   "combined obs stack share of a round").set(
        round(overhead * 100, 2))
    merge_bench(BENCH_PATH, "combined_obs_stack", recorder,
                meta={"scenario": "tunnel-6000", "mode": "oracle",
                      "profiler_threshold_ms": 250.0,
                      "budget_pct": COMBINED_BUDGET * 100})

    assert overhead < COMBINED_BUDGET, (
        f"combined obs stack costs {overhead:.1%} of a "
        f"{round_ms:.2f} ms round ({marginal_us:.1f} us/round), over the "
        f"{COMBINED_BUDGET:.0%} budget")


def test_tail_capture_contract(fast_ms: float = 2.0, slow_ms: float = 80.0):
    """Only the round that beats the threshold leaves a profile."""
    previous = set_telemetry(Telemetry())
    profiler = TailProfiler(threshold_ms=30.0, interval_s=0.002)
    try:
        deadline = time.perf_counter() + fast_ms / 1000.0
        with profiler.round(op="fast") as fast:
            while time.perf_counter() < deadline:
                sum(i * i for i in range(200))
        deadline = time.perf_counter() + slow_ms / 1000.0
        with profiler.round(op="slow") as slow:
            while time.perf_counter() < deadline:
                sum(i * i for i in range(200))
    finally:
        profiler.close()
        set_telemetry(previous)

    PROFILE_DIR.mkdir(exist_ok=True)
    for stale in PROFILE_DIR.glob("*.collapsed"):
        stale.unlink()
    written = profiler.write_profiles(PROFILE_DIR)

    recorder = Telemetry()
    kept = recorder.gauge("bench.profiles_kept",
                          "profiles kept across one fast + one slow round")
    kept.set(len(profiler.profiles))
    recorder.gauge("bench.profile_samples",
                   "stack samples in the kept tail profile").set(
        slow.sample_count())
    merge_bench(BENCH_PATH, "tail_capture", recorder,
                meta={"threshold_ms": 30.0, "interval_ms": 2.0,
                      "fast_ms": fast_ms, "slow_ms": slow_ms})

    assert not fast.kept and fast.samples == {}
    assert slow.kept and slow.sample_count() > 0
    assert len(written) == 1 and written[0].endswith(".collapsed")
    assert Path(written[0]).read_text(encoding="utf-8").strip()
