"""Telemetry overhead benchmark: instrumentation must cost < 3%.

Runs the PR2 window-sweep workload (cold vision builds over the
4-value ``window_size`` grid — the same clip and grid as
``test_perf_pipeline.py``) twice: once with the process-wide telemetry
registry enabled (spans, counters, histograms recording normally) and
once with it disabled (every instrument a no-op).  Best-of-N wall
times are compared; the enabled run may be at most 3% slower.  Numbers
land in ``BENCH_obs.json`` in the shared ``repro-bench-v1`` schema.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.eval import build_artifacts
from repro.obs import Telemetry, merge_bench, set_telemetry
from repro.sim import tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

WINDOWS = (2, 3, 5, 7)
REPEATS = 2          # best-of, per configuration
OVERHEAD_BUDGET = 0.03


def _bench_clip():
    return tunnel(n_frames=400, seed=3, spawn_interval=(60.0, 90.0),
                  n_wall_crashes=2, n_sudden_stops=1)


def _sweep(sim):
    for w in WINDOWS:
        build_artifacts(sim, mode="vision", window_size=w)


def _best_of(sim, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _sweep(sim)
        best = min(best, time.perf_counter() - t0)
    return best


def test_smoke_disabled_registry_is_inert():
    """Disabled telemetry records nothing while the workload still runs."""
    registry = Telemetry(enabled=False)
    previous = set_telemetry(registry)
    try:
        build_artifacts(tunnel(n_frames=300, seed=5, n_wall_crashes=1,
                               n_sudden_stops=1), mode="oracle")
    finally:
        set_telemetry(previous)
    assert registry.spans == []
    assert all(not m.series() for m in registry.metric_families())


def test_instrumentation_overhead():
    """Enabled-vs-disabled sweep wall time within the 3% budget."""
    sim = _bench_clip()
    _sweep(sim)  # warm caches (imports, JIT-ish numpy paths) off-clock

    enabled_registry = Telemetry()
    previous = set_telemetry(enabled_registry)
    try:
        enabled_s = _best_of(sim)
        set_telemetry(Telemetry(enabled=False))
        disabled_s = _best_of(sim)
    finally:
        set_telemetry(previous)

    overhead = enabled_s / disabled_s - 1.0
    spans_per_sweep = (len(enabled_registry.spans)
                       + enabled_registry.spans_dropped) // REPEATS

    recorder = Telemetry()
    wall = recorder.gauge("bench.sweep_s",
                          "best-of wall seconds for the 4-value sweep")
    wall.set(round(enabled_s, 4), telemetry="enabled")
    wall.set(round(disabled_s, 4), telemetry="disabled")
    recorder.gauge("bench.overhead_pct",
                   "instrumented slowdown").set(round(overhead * 100, 2))
    recorder.gauge("bench.spans_per_sweep",
                   "spans recorded per sweep").set(spans_per_sweep)
    merge_bench(BENCH_PATH, "instrumentation_overhead", recorder,
                meta={"scenario": "tunnel-400", "mode": "vision",
                      "windows": list(WINDOWS), "repeats": REPEATS,
                      "budget_pct": OVERHEAD_BUDGET * 100})

    assert spans_per_sweep > 0, "enabled sweep recorded no spans"
    assert overhead < OVERHEAD_BUDGET, (
        f"instrumentation overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (enabled {enabled_s:.3f}s vs "
        f"disabled {disabled_s:.3f}s)")
