"""Ablation of weight normalization in Weighted_RF (paper Section 6.2).

The paper tried three normalizations of the inverse-standard-deviation
weights — none, linear to [0,1], percentage-of-total — and found
percentage best.  Two things are checked here, averaged over several
workload seeds:

* percentage >= linear (the paper's ordering);
* percentage == none *exactly* — a structural finding of this
  reproduction: the weighted square-sum ranking is invariant to
  rescaling all weights, so any difference the paper saw between the two
  cannot have come from the ranking itself.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_experiment
from repro.eval import ablation_normalization


def test_weight_normalization(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_normalization(seeds=(1, 2, 3, 4, 5)),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {label: accs[-1] for label, accs in result.series.items()}
    assert finals["percentage"] >= finals["linear"] - 1e-9
    assert finals["percentage"] == pytest.approx(finals["none"])


def test_percentage_equals_none_ranking(benchmark):
    """Scale invariance, verified directly on the engines."""
    from repro.core import WeightedRFEngine
    from repro.eval import build_artifacts
    from repro.sim import intersection

    def rankings():
        artifacts = build_artifacts(intersection(seed=1), mode="oracle")
        engines = {
            norm: WeightedRFEngine(artifacts.dataset, normalization=norm)
            for norm in ("percentage", "none")
        }
        labels = {b: True for b in list(artifacts.relevant_bag_ids)[:5]}
        for engine in engines.values():
            engine.feed(labels)
        return engines["percentage"].rank(), engines["none"].rank()

    pct, none = benchmark.pedantic(rankings, rounds=1, iterations=1)
    assert pct == none


def test_linear_normalization_kills_a_feature(benchmark):
    """The paper's stated drawback: a zero linear weight permanently
    eliminates the corresponding feature."""
    from repro.core.weighted_rf import normalize_weights

    weights = benchmark(
        lambda: normalize_weights(np.array([0.2, 1.0, 3.0]), "linear"))
    assert weights.min() == 0.0
