"""Figure 8, statistically: mean curves over several workload seeds.

Single-seed accuracy moves in 5-point steps (one top-20 slot); this bench
averages the tunnel experiment over three seeds (oracle tracks for speed)
and asserts the paper's ordering on the means.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.core import MILRetrievalEngine, WeightedRFEngine
from repro.eval import artifacts_for_seeds
from repro.eval.experiments import ExperimentResult
from repro.eval.protocol import run_protocol_multi


def test_figure8_mean_over_seeds(benchmark):
    def run():
        seeds = (0, 1, 2)
        # Parallel fan-out ingestion; falls back to serial (identical
        # artifacts) where process pools are unavailable.
        prebuilt = artifacts_for_seeds("tunnel", seeds, mode="oracle",
                                       max_workers=None)
        mil = run_protocol_multi(prebuilt.__getitem__, MILRetrievalEngine,
                                 seeds=seeds, method="MIL_OCSVM")
        wrf = run_protocol_multi(prebuilt.__getitem__, WeightedRFEngine,
                                 seeds=seeds, method="Weighted_RF")
        result = ExperimentResult(
            name="figure8_multiseed",
            series={"MIL_OCSVM": mil.mean_accuracies,
                    "Weighted_RF": wrf.mean_accuracies},
            expectation=("on seed-averaged curves MIL's gain clearly "
                         "exceeds Weighted_RF's and MIL ends higher"),
            metadata={"seeds": seeds, "mode": "oracle",
                      "mil_std_final": round(mil.std_accuracies[-1], 3),
                      "wrf_std_final": round(wrf.std_accuracies[-1], 3)},
        )
        return result, mil, wrf

    result, mil, wrf = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(result)
    assert mil.mean_gain > wrf.mean_gain
    assert mil.mean_final > wrf.mean_final
    # Identical Initial round on every seed (shared heuristic).
    assert mil.mean_accuracies[0] == pytest.approx(wrf.mean_accuracies[0])
