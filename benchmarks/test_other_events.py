"""Other event types (paper Section 4): U-turn and speeding queries.

"It is worth mentioning that this event model may also be adjusted to
detect U-turns, speeding and any other event that involves the abnormal
behavior of a vehicle."  We run the adjusted event models on the highway
workload and check both queries are learnable.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import other_events


def test_uturn_and_speeding(benchmark):
    result = benchmark.pedantic(
        lambda: other_events(seed=2), rounds=1, iterations=1)
    record_experiment(result)
    for event, accs in result.series.items():
        assert accs[-1] >= accs[0], f"{event}: accuracy regressed"
        assert max(accs) > 0.2, f"{event}: query never found its events"
