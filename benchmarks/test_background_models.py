"""Background-model ablation: global threshold vs per-pixel Gaussian.

Not a paper experiment — an engineering ablation of the front end.  Under
spatially varying sensor noise (a flickering band: wet pavement, a
failing sensor column) the paper-era median-plus-global-threshold model
floods with false detections, while the per-pixel Gaussian model adapts
its threshold locally and stays clean at a modest recall cost inside the
band.
"""

import numpy as np
import pytest

from repro.sim import tunnel
from repro.vision import (
    BackgroundModel,
    GaussianBackgroundModel,
    SegmentationPipeline,
    VideoClip,
    evaluate_detections,
)


def _detection_quality(sim, background, sigma_map):
    clip = VideoClip.from_simulation(sim, noise_sigma=sigma_map,
                                     render_seed=1)
    detections = SegmentationPipeline(background=background,
                                      use_spcpe=False).process(clip)
    quality = evaluate_detections(sim, detections)
    return quality.recall, quality.false_positives_per_frame


def test_gaussian_background_survives_flicker_band(benchmark):
    def run():
        sim = tunnel(n_frames=400, seed=9, spawn_interval=(50.0, 80.0),
                     n_wall_crashes=1, n_sudden_stops=1)
        sigma = np.full((sim.height, sim.width), 2.0)
        sigma[:, 120:200] = 28.0  # flickering reflection band
        median = _detection_quality(sim, BackgroundModel(), sigma)
        gauss = _detection_quality(sim, GaussianBackgroundModel(), sigma)
        return median, gauss

    (median_recall, median_fp), (gauss_recall, gauss_fp) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    # The global threshold floods inside the band...
    assert median_fp > 5.0
    # ...the per-pixel Gaussian stays clean...
    assert gauss_fp < 1.0
    # ...at a bounded recall cost (vehicles inside the band are dimmer
    # than the locally inflated threshold).
    assert gauss_recall > 0.75
    assert median_recall > 0.9
