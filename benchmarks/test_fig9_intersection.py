"""Figure 9 reproduction: retrieval accuracy over RF rounds, clip 2.

Paper: road-intersection clip (592 frames) where accidents "often involve
two or more vehicles".  The MIL framework's gains are smaller than on
clip 1 but it remains "far better" than Weighted_RF, whose performance
degrades right after the initial iteration.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import figure9


def test_figure9_intersection(benchmark):
    result = benchmark.pedantic(
        lambda: figure9(seed=1, mode="vision"), rounds=1, iterations=1)
    record_experiment(result)
    mil = result.series["MIL_OCSVM"]
    wrf = result.series["Weighted_RF"]

    assert mil[0] == pytest.approx(wrf[0])  # shared Initial round
    # MIL improves; the baseline shows no gain (the paper's degradation).
    assert mil[-1] > mil[0]
    assert wrf[-1] <= wrf[0] + 1e-9
    assert mil[-1] > wrf[-1]


def test_figure9_weighted_rf_degrades(benchmark):
    """On the oracle-track variant the baseline visibly *drops* below its
    initial accuracy (the paper's exact wording for clip 2)."""
    result = benchmark.pedantic(
        lambda: figure9(seed=3, mode="oracle"), rounds=1, iterations=1)
    result.name = "figure9_intersection_oracle_degradation"
    record_experiment(result)
    wrf = result.series["Weighted_RF"]
    mil = result.series["MIL_OCSVM"]
    assert wrf[-1] < wrf[0]
    assert mil[-1] > mil[0]
