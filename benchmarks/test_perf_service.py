"""Multi-tenant service benchmark: interleaved RF sessions over HTTP.

The acceptance claim behind ``repro serve``: one worker process
sustains >= 100 interleaved relevance-feedback sessions with a p99
round latency within 2x of the single-session library path (the cost
of HTTP framing, the session cache, and the shared-corpus locks must
stay in the noise next to the SVM round itself).

Protocol: a file-backed two-clip catalog; the **library baseline**
runs serial ``MultiClipQuerySession`` sessions (distinct users, same
round structure) and times each feed+results round; the **service
path** starts ``RetrievalHTTPServer`` and drives the same rounds for
``N_SESSIONS`` distinct users from ``N_CLIENTS`` threads over
persistent keep-alive connections.  Client-side round latencies
(results + feed, one pair per round) land in ``BENCH_service.json``
(``repro-bench-v1`` schema) along with sessions/sec.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from pathlib import Path

from repro.db import MultiClipQuerySession, VideoDatabase
from repro.eval import build_artifacts
from repro.obs import Telemetry, merge_bench, set_telemetry
from repro.service import RetrievalHTTPServer, RetrievalService
from repro.sim import intersection, tunnel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_SESSIONS = 120          # distinct users, each its own session
ROUNDS = 2                # feedback rounds per session
N_CLIENTS = 2             # concurrent keep-alive client threads
MAX_WORKERS = 4
BASELINE_SESSIONS = 10    # serial library sessions for the baseline
TOP_K = 10
LATENCY_CEILING = 2.0     # service p99 <= 2x library p99


def _build_catalog(path: str) -> list[str]:
    clips = []
    with VideoDatabase(path) as db:
        for sim in (tunnel(n_frames=900, seed=3,
                           spawn_interval=(60.0, 90.0),
                           n_wall_crashes=3, n_sudden_stops=2),
                    intersection(n_frames=700, seed=4, n_collisions=3)):
            art = build_artifacts(sim, mode="oracle")
            db.ingest_simulation(sim, art.tracks, art.dataset)
            clips.append(sim.name)
    return clips


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def _labels_for(results: list[dict]) -> dict:
    return {str(r["bag_id"]): i % 2 == 0 for i, r in enumerate(results)}


def _library_rounds(db_path: str, clips: list[str]) -> list[float]:
    """Per-round feed+results wall seconds, serial sessions."""
    walls: list[float] = []
    with VideoDatabase(db_path) as db:
        for i in range(BASELINE_SESSIONS):
            session = MultiClipQuerySession(
                db, clips, "accident", user_id=f"base{i}", top_k=TOP_K)
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                ids = session.results()
                session.feed({b: j % 2 == 0
                              for j, b in enumerate(ids)})
                walls.append(time.perf_counter() - t0)
    return walls


class _Client:
    """One keep-alive connection driving a slice of the sessions."""

    def __init__(self, port: int, clips: list[str], users: list[str]):
        self.conn = http.client.HTTPConnection("127.0.0.1", port,
                                               timeout=60)
        self.clips = clips
        self.users = users
        self.round_walls: list[float] = []
        self.sessions_done = 0
        self.error: BaseException | None = None

    def _req(self, method: str, target: str, doc=None):
        body = json.dumps(doc).encode() if doc is not None else None
        self.conn.request(method, target, body=body)
        resp = self.conn.getresponse()
        payload = resp.read()
        assert resp.status < 500, (resp.status, payload)
        return resp.status, json.loads(payload)

    def run(self) -> None:
        try:
            for user in self.users:
                status, doc = self._req(
                    "POST", "/sessions",
                    {"user": user, "clips": self.clips,
                     "event": "accident", "top_k": TOP_K})
                assert status == 201, (status, doc)
                sid = doc["session"]
                for _ in range(ROUNDS):
                    t0 = time.perf_counter()
                    _, doc = self._req("GET",
                                       f"/sessions/{sid}/results")
                    status, _ = self._req(
                        "POST", f"/sessions/{sid}/feed",
                        {"labels": _labels_for(doc["results"])})
                    assert status == 200
                    self.round_walls.append(time.perf_counter() - t0)
                self.sessions_done += 1
        except BaseException as exc:  # noqa: BLE001 - reported by main
            self.error = exc
        finally:
            self.conn.close()


def test_smoke_service_round_over_http():
    """Fast CI check: one session end-to-end through the HTTP stack."""
    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "catalog.sqlite")
        clips = _build_catalog(db_path)
        service = RetrievalService(db_path)
        with RetrievalHTTPServer(service, port=0) as server:
            client = _Client(server.port, clips, ["smoke"])
            client.run()
            assert client.error is None, client.error
            assert client.sessions_done == 1
            assert len(client.round_walls) == ROUNDS
        service.close()


def test_hundred_interleaved_sessions():
    registry = Telemetry()
    previous = set_telemetry(registry)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            db_path = str(Path(tmp) / "catalog.sqlite")
            clips = _build_catalog(db_path)

            library_walls = _library_rounds(db_path, clips)

            service = RetrievalService(db_path,
                                       max_sessions=N_SESSIONS + 8)
            with RetrievalHTTPServer(service, port=0,
                                     max_workers=MAX_WORKERS) as server:
                users = [f"tenant{i:03d}" for i in range(N_SESSIONS)]
                clients = [
                    _Client(server.port, clips, users[i::N_CLIENTS])
                    for i in range(N_CLIENTS)]
                threads = [threading.Thread(target=c.run)
                           for c in clients]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                total_s = time.perf_counter() - t0
            service.close()
    finally:
        set_telemetry(previous)

    for client in clients:
        assert client.error is None, client.error
    service_walls = [w for c in clients for w in c.round_walls]
    sessions_total = sum(c.sessions_done for c in clients)
    assert sessions_total >= 100
    assert sessions_total == N_SESSIONS

    lib_p50 = _quantile(library_walls, 0.50)
    lib_p99 = _quantile(library_walls, 0.99)
    svc_p50 = _quantile(service_walls, 0.50)
    svc_p99 = _quantile(service_walls, 0.99)
    sessions_per_s = sessions_total / total_s

    recorder = Telemetry()
    round_ms = recorder.gauge(
        "bench.round_ms",
        "feed+results round wall ms (client-side for the service)")
    round_ms.set(round(lib_p50 * 1000, 3), path="library", q="p50")
    round_ms.set(round(lib_p99 * 1000, 3), path="library", q="p99")
    round_ms.set(round(svc_p50 * 1000, 3), path="service", q="p50")
    round_ms.set(round(svc_p99 * 1000, 3), path="service", q="p99")
    recorder.gauge("bench.p99_ratio",
                   "service p99 / library p99").set(
        round(svc_p99 / lib_p99, 3))
    recorder.gauge("bench.sessions_total",
                   "distinct RF sessions completed").set(sessions_total)
    recorder.gauge("bench.sessions_per_s",
                   "completed sessions per wall second").set(
        round(sessions_per_s, 3))
    merge_bench(BENCH_PATH, "interleaved_sessions", recorder,
                meta={"n_sessions": N_SESSIONS, "rounds": ROUNDS,
                      "n_clients": N_CLIENTS,
                      "max_workers": MAX_WORKERS, "top_k": TOP_K,
                      "acceptance":
                          f"service p99 <= {LATENCY_CEILING}x library "
                          f"p99 at >= 100 sessions"})

    assert svc_p99 <= LATENCY_CEILING * lib_p99, (
        f"service p99 {svc_p99 * 1000:.1f}ms exceeds "
        f"{LATENCY_CEILING}x library p99 {lib_p99 * 1000:.1f}ms")
