"""Ablation of Eq. (9)'s slack z (paper Section 5.3: "z=0.05 works well").

Run with ``training_policy='all'`` so the h/H term of Eq. (9) is active
and z genuinely moves the One-class SVM's outlier fraction.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval import ablation_z


def test_z_slack(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_z(zs=(0.0, 0.01, 0.05, 0.1, 0.2), seed=1),
        rounds=1, iterations=1)
    record_experiment(result)
    finals = {label: accs[-1] for label, accs in result.series.items()}
    # z must actually change the trained nu.
    nus = {label: p.extras["last_nu"]
           for label, p in result.protocols.items()}
    assert len(set(round(v, 4) for v in nus.values())) > 1
    # The paper's z=0.05 is within one top-20 slot of the best setting.
    assert finals["z=0.05"] >= max(finals.values()) - 0.05 - 1e-9
