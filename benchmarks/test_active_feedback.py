"""Active vs passive relevance feedback (extension experiment).

The paper's protocol is pure exploitation (label the top-20).  Reserving
a few slots per round for uncertainty sampling consistently *discovers*
more of the relevant population — the effect this bench asserts — while
its impact on the final ranking varies by workload (recorded, not
asserted).
"""

import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.core.active import ActiveRetrievalSession
from repro.eval import build_artifacts
from repro.eval.metrics import accuracy_at_k
from repro.sim import intersection, tunnel


def _relevant_found(session) -> int:
    return sum(1 for v in session.engine.labels.values() if v)


def test_active_discovers_more_relevant(benchmark):
    def run():
        rows = []
        for sim in (tunnel(seed=0), intersection(seed=1)):
            artifacts = build_artifacts(sim, mode="oracle")
            rel = artifacts.relevant_bag_ids
            per_mode = {}
            for label, session_cls, kwargs in (
                ("passive", RetrievalSession, {}),
                ("active", ActiveRetrievalSession, {"explore_k": 5}),
            ):
                engine = MILRetrievalEngine(artifacts.dataset)
                session = session_cls(
                    engine, OracleUser(artifacts.ground_truth),
                    top_k=20, **kwargs)
                session.run(5)
                per_mode[label] = {
                    "found": _relevant_found(session),
                    "rank_acc": accuracy_at_k(engine.rank(), rel, 20),
                }
            rows.append((sim.name, len(rel), per_mode))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for clip, n_rel, per_mode in rows:
        print(f"{clip}: relevant={n_rel} "
              f"passive found {per_mode['passive']['found']} "
              f"(rank@20 {per_mode['passive']['rank_acc']:.0%}), "
              f"active found {per_mode['active']['found']} "
              f"(rank@20 {per_mode['active']['rank_acc']:.0%})")
        # Exploration never discovers fewer relevant bags.
        assert per_mode["active"]["found"] >= per_mode["passive"]["found"]
