"""Scaling micro-benchmarks: how stage cost grows with problem size.

pytest-benchmark timings parameterized over the natural scale knobs:
training-set size for the SMO solver, corpus size for a ranking pass,
and concurrent-target count for the tracker.
"""

import numpy as np
import pytest

from repro.svm import OneClassSVM
from repro.tracking import CentroidTracker
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


@pytest.mark.parametrize("n", [50, 200, 800])
def test_ocsvm_fit_scaling(benchmark, n):
    x = np.random.default_rng(0).normal(size=(n, 9))
    benchmark(lambda: OneClassSVM(nu=0.3, gamma=0.11).fit(x))


@pytest.mark.parametrize("n_probes", [100, 1000, 5000])
def test_ocsvm_decision_scaling(benchmark, n_probes):
    rng = np.random.default_rng(0)
    model = OneClassSVM(nu=0.3, gamma=0.11).fit(rng.normal(size=(200, 9)))
    probes = rng.normal(size=(n_probes, 9))
    benchmark(model.decision_function, probes)


def _stream(n_targets, n_frames=100, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform([0, 0], [300, 200], size=(n_targets, 2))
    vels = rng.uniform(-2, 2, size=(n_targets, 2))
    frames = []
    for f in range(n_frames):
        dets = []
        for t in range(n_targets):
            x, y = starts[t] + vels[t] * f
            blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 4,
                        y0=int(y) - 3, x1=int(x) + 4, y1=int(y) + 3,
                        area=48, mean_intensity=150.0)
            dets.append(Detection(frame=f, blob=blob))
        frames.append(dets)
    return frames


@pytest.mark.parametrize("n_targets", [3, 10, 30])
def test_tracker_scaling(benchmark, n_targets):
    stream = _stream(n_targets)
    benchmark(lambda: CentroidTracker().track(stream))


@pytest.mark.parametrize("n_vehicles", [10, 30])
def test_ranking_pass_scaling(benchmark, n_vehicles):
    """Full feedback round (train + rank) as the corpus grows."""
    from repro.core import MILRetrievalEngine
    from repro.eval import build_artifacts
    from repro.sim import tunnel

    frames = 80 * n_vehicles
    sim = tunnel(n_frames=frames, seed=5, spawn_interval=(60.0, 90.0),
                 n_wall_crashes=max(1, n_vehicles // 8),
                 n_sudden_stops=max(1, n_vehicles // 10))
    artifacts = build_artifacts(sim, mode="oracle")
    relevant = list(artifacts.relevant_bag_ids)[:8]
    labels = {b: True for b in relevant}

    def round_trip():
        engine = MILRetrievalEngine(artifacts.dataset)
        engine.feed(labels)
        return engine.rank()

    benchmark(round_trip)
