"""Cross-camera retrieval with plane normalization (paper future work).

Paper Section 6.2 closes by noting that mining the whole database at once
requires normalizing clips "taken at different locations with different
camera parameters".  This bench merges two intersection clips shot
through an overhead and a strongly tilted camera, and compares raw
image-plane features against features back-projected onto the road plane
via DLT-calibrated homographies.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval.experiments import cross_camera


def test_cross_camera_normalization(benchmark):
    result = benchmark.pedantic(lambda: cross_camera(),
                                rounds=1, iterations=1)
    record_experiment(result)
    raw = result.series["raw_image_plane"]
    norm = result.series["plane_normalized"]
    # Normalization must not hurt, and here it visibly helps the final
    # accuracy on the merged corpus.
    assert norm[-1] >= raw[-1]
    # Both variants learn something over their initial round.
    assert norm[-1] > norm[0]
    assert raw[-1] > raw[0]
