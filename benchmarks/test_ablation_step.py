"""Window-stride ablation (paper Section 5.1 ambiguity).

The paper's sliding-window prose says "one step a time" while its TS
counts imply non-overlapping windows.  Both readings are benchmarked.
"""

import pytest

from benchmarks.conftest import record_experiment
from repro.eval.experiments import ablation_step


def test_window_stride(benchmark):
    result = benchmark.pedantic(lambda: ablation_step(seed=0),
                                rounds=1, iterations=1)
    record_experiment(result)
    non_overlap = result.series["step=window (non-overlap)"]
    overlap = result.series["step=1 (full overlap)"]
    # Both variants learn from feedback.
    assert non_overlap[-1] >= non_overlap[0]
    assert overlap[-1] >= overlap[0]
    # Overlapping windows inflate the corpus ~window-size-fold.
    n_no = result.metadata["n_bags[step=window (non-overlap)]"]
    n_ov = result.metadata["n_bags[step=1 (full overlap)]"]
    assert n_ov > 2 * n_no
