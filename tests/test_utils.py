"""Tests for shared helpers in repro.utils."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.utils import (
    as_rng,
    check_2d,
    check_in_range,
    check_positive,
    moving_average,
    pairwise_sq_dists,
)


class TestAsRng:
    def test_int_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestChecks:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)
        assert check_positive("x", 0, strict=False) == 0
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, strict=False)

    def test_check_in_range(self):
        assert check_in_range("x", 0.5, 0, 1) == 0.5
        assert check_in_range("x", 0.0, 0, 1) == 0.0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0.0, 0, 1, inclusive=(False, True))
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.5, 0, 1)

    def test_check_2d(self):
        out = check_2d("x", np.arange(3.0))
        assert out.shape == (1, 3)
        out = check_2d("x", np.zeros((2, 3)))
        assert out.shape == (2, 3)
        with pytest.raises(ConfigurationError):
            check_2d("x", np.zeros((2, 2, 2)))
        with pytest.raises(ConfigurationError):
            check_2d("x", np.zeros((0, 3)))


class TestPairwiseSqDists:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        fast = pairwise_sq_dists(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, naive)

    @given(hnp.arrays(np.float64, (4, 2),
                      elements=st.floats(-100, 100, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_property_nonnegative_and_zero_diag(self, a):
        d2 = pairwise_sq_dists(a, a)
        assert d2.min() >= 0.0
        assert np.allclose(np.diag(d2), 0.0, atol=1e-6)


class TestMovingAverage:
    def test_ramp_up(self):
        out = moving_average([2.0, 4.0, 6.0], window=2)
        assert out == pytest.approx([2.0, 3.0, 5.0])

    def test_window_one_identity(self):
        values = [1.0, 5.0, 2.0]
        assert list(moving_average(values, 1)) == values

    def test_constant_series(self):
        out = moving_average([3.0] * 10, window=4)
        assert np.allclose(out, 3.0)

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            moving_average([1.0], 0)
