"""IVF nomination over live shards: appended bags are never invisible.

A streamed append leaves the shard's memoized IVF index covering only a
prefix of the bags — probing it can never nominate the tail.  The
nominator must detect the stale index (``index.n_bags <
shard.n_bags``) and either route the un-indexed tail through stage two
explicitly (small tails) or rebuild the index (past
``rebuild_tail_fraction``).  The hypothesis property pins the headline
guarantee: nomination recall over appended bags is never zero.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import (
    IVFNominator,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.errors import ConfigurationError
from repro.obs import Telemetry, set_telemetry


def make_bags(n_bags, *, start=0, seed=0, n_inst=2):
    rng = np.random.default_rng(seed + 31 * start)
    bags = []
    for b in range(start, start + n_bags):
        instances = tuple(
            Instance(instance_id=0, bag_id=b, track_id=b * 10 + j,
                     matrix=rng.normal(size=(3, 2)) + 2.0 * (b % 4))
            for j in range(n_inst)
        )
        bags.append(Bag(bag_id=b, clip_id="clip", frame_lo=b * 10,
                        frame_hi=b * 10 + 9, instances=instances))
    return bags


def live_corpus(bags):
    """A single-shard corpus over a mutable bag list."""
    def load():
        return MILDataset(clip_id="clip", event_name="accident",
                          feature_names=("f0", "f1"), window_size=3,
                          sampling_rate=5, bags=list(bags))
    spec = ShardSpec(clip_id="clip", n_bags=len(bags),
                     n_instances=sum(b.n_instances for b in bags),
                     loader=load)
    return ShardedCorpus([spec], corpus_id="live")


def grow(corpus, bags, n_new, *, seed=0, n_inst=2):
    bags.extend(make_bags(n_new, start=len(bags), seed=seed,
                          n_inst=n_inst))
    corpus.refresh("clip", n_bags=len(bags),
                   n_instances=sum(b.n_instances for b in bags))


def nominated_positions(engine):
    engine.rank()
    assert engine._round_nominated is not None
    return set(int(p) for p in engine._round_nominated["clip"])


@pytest.fixture()
def fresh_telemetry():
    telemetry = Telemetry()
    previous = set_telemetry(telemetry)
    yield telemetry
    set_telemetry(previous)


class TestStaleTailProperty:
    @given(n_initial=st.integers(2, 6), n_tail=st.integers(1, 4),
           n_inst=st.integers(1, 3), n_cells=st.integers(1, 5),
           nprobe=st.integers(1, 3), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_appended_bag_recall_is_never_zero(
            self, n_initial, n_tail, n_inst, n_cells, nprobe, seed):
        """With no candidate cap, every appended bag is nominated —
        recall over the tail is exactly 1, for arbitrary shard shapes,
        cell counts, and probe widths."""
        bags = make_bags(n_initial, seed=seed, n_inst=n_inst)
        corpus = live_corpus(bags)
        engine = ShardedRetrievalEngine(
            corpus, nominator=IVFNominator(
                n_cells=n_cells, nprobe=nprobe,
                rebuild_tail_fraction=1.0))
        engine.feed({0: True})   # builds + memoizes the IVF index
        engine.rank()
        grow(corpus, bags, n_tail, seed=seed + 1, n_inst=n_inst)
        tail = set(range(n_initial, n_initial + n_tail))
        nominated = nominated_positions(engine)
        recall = len(nominated & tail) / len(tail)
        assert recall == 1.0

    @given(n_initial=st.integers(3, 7), n_tail=st.integers(1, 3),
           m=st.integers(1, 6), seed=st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_capped_nomination_keeps_heuristic_tail_bags(
            self, n_initial, n_tail, m, seed):
        """Under a top-M cap, any tail bag the heuristic baseline would
        surface (prefilter rank < M) survives IVF nomination too."""
        bags = make_bags(n_initial, seed=seed)
        corpus = live_corpus(bags)
        engine = ShardedRetrievalEngine(
            corpus, candidates_per_shard=m,
            nominator=IVFNominator(n_cells=3, nprobe=1,
                                   rebuild_tail_fraction=1.0))
        engine.feed({0: True})
        engine.rank()
        grow(corpus, bags, n_tail, seed=seed + 1)
        shard = corpus.shard("clip")
        tail = set(range(n_initial, n_initial + n_tail))
        baseline_tail = {p for p in tail if shard.heuristic_rank[p] < m}
        nominated = nominated_positions(engine)
        assert baseline_tail <= nominated
        assert len(nominated) <= m


class TestRoutingAndRebuild:
    def _warm_engine(self, bags, **nominator_kwargs):
        corpus = live_corpus(bags)
        kwargs = dict(n_cells=4, nprobe=1)
        kwargs.update(nominator_kwargs)
        engine = ShardedRetrievalEngine(
            corpus, nominator=IVFNominator(**kwargs))
        engine.feed({0: True})
        engine.rank()
        return corpus, engine

    def test_small_tail_routed_without_rebuild(self, fresh_telemetry):
        bags = make_bags(8)
        corpus, engine = self._warm_engine(bags)
        shard = corpus.shard("clip")
        index_before = shard.ivf_index(n_cells=4, seed=0, iters=15)
        grow(corpus, bags, 2)  # tail 2 < 0.5 * 10: below the threshold
        nominated = nominated_positions(engine)
        assert {8, 9} <= nominated
        assert fresh_telemetry.counter(
            "index.stale_tail_routed").value() == 2
        assert fresh_telemetry.counter("index.rebuilds").value() == 0
        # The memoized index was kept, still covering only the prefix.
        assert shard.ivf_index(n_cells=4, seed=0,
                               iters=15) is index_before
        assert index_before.n_bags == 8

    def test_large_tail_triggers_rebuild(self, fresh_telemetry):
        bags = make_bags(8)
        corpus, engine = self._warm_engine(
            bags, rebuild_tail_fraction=0.2)
        shard = corpus.shard("clip")
        grow(corpus, bags, 4)  # tail 4 >= 0.2 * 12: rebuild
        engine.rank()
        assert fresh_telemetry.counter("index.rebuilds").value() == 1
        assert fresh_telemetry.counter(
            "index.stale_tail_routed").value() == 0
        assert shard.ivf_index(n_cells=4, seed=0,
                               iters=15).n_bags == shard.n_bags

    def test_ranking_covers_whole_corpus_after_append(self):
        bags = make_bags(8)
        corpus, engine = self._warm_engine(bags)
        grow(corpus, bags, 2)
        assert sorted(engine.rank()) == list(range(10))

    def test_rebuild_tail_fraction_validated(self):
        with pytest.raises(ConfigurationError,
                           match="rebuild_tail_fraction"):
            IVFNominator(rebuild_tail_fraction=0.0)
        with pytest.raises(ConfigurationError,
                           match="rebuild_tail_fraction"):
            IVFNominator(rebuild_tail_fraction=1.5)
        assert IVFNominator(
            rebuild_tail_fraction=1.0).rebuild_tail_fraction == 1.0
