"""Unit tests for the pure-numpy IVF index."""

import numpy as np
import pytest

from repro.core.bags import Bag, Instance, MILDataset
from repro.errors import ConfigurationError
from repro.index import IVFIndex, build_index_for_dataset, kmeans_cells


def _blobs(n, d=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=10.0, size=(4, d))
    return centers[rng.integers(0, 4, size=n)] + rng.normal(size=(n, d))


class TestKMeans:
    def test_deterministic_under_seed(self):
        x = _blobs(60)
        c1, a1 = kmeans_cells(x, 8, seed=3)
        c2, a2 = kmeans_cells(x, 8, seed=3)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_k_clamped_to_row_count(self):
        x = _blobs(5)
        centroids, assignments = kmeans_cells(x, 32)
        assert len(centroids) == 5
        assert sorted(np.unique(assignments)) == list(range(5))

    def test_duplicate_points_leave_no_nan(self):
        x = np.ones((10, 3))
        centroids, assignments = kmeans_cells(x, 4, seed=1)
        assert np.isfinite(centroids).all()
        assert len(assignments) == 10

    def test_empty_matrix(self):
        centroids, assignments = kmeans_cells(np.empty((0, 3)), 4)
        assert len(centroids) == 0 and len(assignments) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="n_cells"):
            kmeans_cells(_blobs(10), 0)
        with pytest.raises(ConfigurationError, match="iters"):
            kmeans_cells(_blobs(10), 2, iters=0)


class TestIVFIndex:
    def _index(self, n=40, n_cells=6, **kwargs):
        x = _blobs(n)
        row_bags = np.arange(n) // 2
        return IVFIndex.build(x, row_bags, n // 2, n_cells=n_cells,
                              **kwargs), x

    def test_cells_partition_rows(self):
        index, x = self._index()
        assert sorted(index.cell_rows) == list(range(len(x)))
        assert index.cell_starts[0] == 0
        assert index.cell_starts[-1] == len(x)
        assert (np.diff(index.cell_starts) >= 0).all()

    def test_exhaustive_probe_reaches_every_bag(self):
        index, x = self._index()
        bags, stats = index.probe(x[:3], nprobe=index.n_cells)
        assert list(bags) == list(range(index.n_bags))
        assert stats["rows_gathered"] == len(x)

    def test_partial_probe_is_sublinear(self):
        index, x = self._index(n=200, n_cells=16)
        bags, stats = index.probe(x[:1], nprobe=2)
        assert 0 < stats["rows_gathered"] < len(x)
        assert stats["cells_probed"] == 2
        assert len(bags) == stats["bags_nominated"]

    def test_nprobe_clamped(self):
        index, x = self._index(n_cells=4)
        full, _ = index.probe(x[:1], nprobe=99)
        lo, _ = index.probe(x[:1], nprobe=-3)
        assert list(full) == list(range(index.n_bags))
        assert len(lo) >= 1

    def test_empty_index_probe_nominates_nothing(self):
        index = IVFIndex.build(None, np.empty(0, dtype=int), 3)
        bags, stats = index.probe(np.ones((2, 4)), nprobe=2)
        assert len(bags) == 0
        assert stats == {"cells_probed": 0, "rows_gathered": 0,
                         "bags_nominated": 0}

    def test_row_bags_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="row_bags"):
            IVFIndex.build(_blobs(10), np.arange(7), 5)

    def test_params_recorded(self):
        index, _ = self._index(n_cells=6, seed=9, iters=7)
        assert index.params == (6, 9, 7)


class TestBuildForDataset:
    def _dataset(self, n_bags=6, instances_per_bag=2, seed=0):
        rng = np.random.default_rng(seed)
        bags, iid = [], 0
        for b in range(n_bags):
            instances = []
            for _ in range(instances_per_bag):
                instances.append(Instance(
                    instance_id=iid, bag_id=b, track_id=iid,
                    matrix=rng.normal(size=(3, 2))))
                iid += 1
            bags.append(Bag(bag_id=b, clip_id="c", frame_lo=b * 10,
                            frame_hi=b * 10 + 9,
                            instances=tuple(instances)))
        return MILDataset(clip_id="c", event_name="accident",
                          feature_names=("f0", "f1"), window_size=3,
                          sampling_rate=5, bags=bags)

    def test_rows_follow_bag_layout(self):
        ds = self._dataset()
        index = build_index_for_dataset(ds, n_cells=4)
        assert index.n_bags == 6
        np.testing.assert_array_equal(index.row_bags,
                                      np.arange(12) // 2)

    def test_deterministic_rebuild(self):
        ds = self._dataset()
        a = build_index_for_dataset(ds, n_cells=4, seed=2)
        b = build_index_for_dataset(ds, n_cells=4, seed=2)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.cell_rows, b.cell_rows)

    def test_all_empty_bags(self):
        ds = self._dataset(instances_per_bag=0)
        index = build_index_for_dataset(ds)
        assert index.n_cells == 0 and index.n_bags == 6
