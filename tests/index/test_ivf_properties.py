"""Property-based tests (hypothesis) for the IVF nomination invariants.

The load-bearing property: with an exhaustive probe (``nprobe ==
n_cells``) the IVF-nominated two-stage ranking equals the
heuristic-nominated one, for arbitrary shard shapes — including empty
bags, single-bag shards, and duplicate feature vectors that leave
k-means cells empty.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import (
    IVFNominator,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.index import kmeans_cells


@st.composite
def shard_datasets(draw):
    """1-3 clips of random bags; at least one instance corpus-wide."""
    n_clips = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    duplicate = draw(st.booleans())
    datasets, iid = [], 0
    for c in range(n_clips):
        n_bags = draw(st.integers(1, 7))
        bags = []
        for b in range(n_bags):
            n_inst = draw(st.integers(0, 3))
            instances = []
            for _ in range(n_inst):
                if duplicate:
                    matrix = np.full((3, 2), float(b % 2))
                else:
                    matrix = rng.normal(size=(3, 2))
                    if b % 3 == 0:
                        matrix[1] += 4.0
                instances.append(Instance(
                    instance_id=iid, bag_id=b, track_id=iid,
                    matrix=matrix))
                iid += 1
            bags.append(Bag(bag_id=b, clip_id=f"clip{c}",
                            frame_lo=b * 10, frame_hi=b * 10 + 9,
                            instances=tuple(instances)))
        datasets.append(MILDataset(
            clip_id=f"clip{c}", event_name="accident",
            feature_names=("f0", "f1"), window_size=3,
            sampling_rate=5, bags=bags))
    if sum(d.n_instances for d in datasets) == 0:
        # engines reject all-empty corpora; give clip0's bag 0 a row
        d = datasets[0]
        inst = Instance(instance_id=iid, bag_id=0, track_id=iid,
                        matrix=rng.normal(size=(3, 2)))
        d.bags[0] = Bag(bag_id=0, clip_id=d.clip_id, frame_lo=0,
                        frame_hi=9, instances=(inst,))
    return datasets


def _corpus(datasets):
    return ShardedCorpus([
        ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                  n_instances=d.n_instances, loader=(lambda d=d: d))
        for d in datasets
    ], corpus_id="prop")


def _engines(datasets, n_cells, nprobe, m):
    heur = ShardedRetrievalEngine(_corpus(datasets),
                                  candidates_per_shard=m)
    ivf = ShardedRetrievalEngine(
        _corpus(datasets), candidates_per_shard=m,
        nominator=IVFNominator(n_cells=n_cells, nprobe=nprobe))
    return heur, ivf


class TestExhaustiveProbeEquivalence:
    @given(shard_datasets(), st.integers(1, 6), st.integers(1, 4),
           st.integers(0, 9999))
    @settings(max_examples=40, deadline=None)
    def test_full_probe_ranking_matches_heuristic(self, datasets,
                                                  n_cells, m, seed):
        heur, ivf = _engines(datasets, n_cells, n_cells, m)
        rng = np.random.default_rng(seed)
        for _ in range(2):
            heur_rank = heur.rank()
            assert ivf.rank() == heur_rank
            labels = {b: bool(rng.random() < 0.5)
                      for b in heur_rank[:4]}
            heur.feed(labels)
            ivf.feed(labels)
        assert ivf.rank() == heur.rank()

    @given(shard_datasets(), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_partial_probe_ranks_a_permutation(self, datasets, nprobe):
        heur, ivf = _engines(datasets, 4, nprobe, 2)
        n = len(heur.corpus)
        relevant = [b for b in heur.rank()[:3]]
        labels = {b: True for b in relevant}
        ivf.feed(labels)
        assert sorted(ivf.rank()) == list(range(n))


class TestKMeansProperties:
    @given(st.integers(1, 60), st.integers(1, 12), st.integers(0, 9999))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_and_well_formed(self, n, k, seed):
        x = np.random.default_rng(seed).normal(size=(n, 3))
        c1, a1 = kmeans_cells(x, k, seed=seed)
        c2, a2 = kmeans_cells(x, k, seed=seed)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)
        assert len(c1) == min(k, n)
        assert np.isfinite(c1).all()
        assert ((a1 >= 0) & (a1 < len(c1))).all()

    @given(st.integers(2, 20), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_identical_points_collapse_without_nan(self, n, k):
        x = np.zeros((n, 2))
        centroids, assignments = kmeans_cells(x, k, seed=0)
        assert np.isfinite(centroids).all()
        # every point lands in one occupied cell; the rest stay empty
        assert len(np.unique(assignments)) == 1
