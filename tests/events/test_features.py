"""Tests for checkpoint feature extraction (paper Section 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.events import CHANNEL_NAMES, SamplingConfig, extract_series
from repro.tracking import Track
from repro.vision.blobs import Blob


def _track(track_id, positions, first_frame=0, step=1):
    track = Track(track_id)
    for i, (x, y) in enumerate(positions):
        blob = Blob(cx=float(x), cy=float(y), x0=0, y0=0, x1=5, y1=5,
                    area=25, mean_intensity=100.0)
        track.add(first_frame + i * step, blob)
    return track


def _straight_track(track_id=0, n=60, v=2.0, y=50.0, first_frame=0):
    return _track(track_id, [(v * i, y) for i in range(n)], first_frame)


def _config(smooth=1):
    return SamplingConfig(smooth_window=smooth)


class TestGridAlignment:
    def test_checkpoints_on_global_grid(self):
        series = extract_series([_straight_track(first_frame=3)], _config())
        assert len(series) == 1
        frames = series[0].checkpoint_frames
        assert np.all(frames % 5 == 0)
        assert frames[0] == 5  # first grid point after frame 3

    def test_short_track_skipped(self):
        series = extract_series([_straight_track(n=6)], _config())
        # Only one grid checkpoint (frame 5) fits in [0, 5] fully... at
        # least two checkpoints are required for kinematics.
        assert all(len(s) >= 2 for s in series)

    def test_track_starting_mid_clip(self):
        series = extract_series([_straight_track(first_frame=103, n=30)],
                                _config())
        frames = series[0].checkpoint_frames
        assert frames[0] == 105
        assert frames[-1] <= 132


class TestKinematicChannels:
    def test_constant_velocity(self):
        series = extract_series([_straight_track(v=2.0)], _config())[0]
        v = series.channels["velocity"]
        assert np.allclose(v, 2.0, atol=1e-9)
        assert np.allclose(series.channels["vdiff"], 0.0, atol=1e-9)
        assert np.allclose(series.channels["theta"], 0.0, atol=1e-9)

    def test_sudden_stop_spikes_vdiff_negative(self):
        # 3 px/frame for 30 frames, then parked: vdiff is signed, so a
        # stop is a *negative* spike (paper Section 4 subtracts the
        # previous velocity from the current one).
        positions = [(3.0 * min(i, 30), 50.0) for i in range(60)]
        series = extract_series([_track(0, positions)], _config())[0]
        vdiff = series.channels["vdiff"]
        assert vdiff.min() < -1.0
        assert vdiff.max() <= 0.0 + 1e-9  # no re-acceleration anywhere
        # The spike is localized around checkpoint of frame 30.
        spike_frame = series.checkpoint_frames[int(np.argmin(vdiff))]
        assert 30 <= spike_frame <= 45

    def test_brake_and_resume_has_both_signs(self):
        # Brake to a stop for 10 frames, then resume: the V-shaped
        # pattern shows a negative then a positive vdiff spike, which is
        # what lets the window-level learner tell it from an incident.
        xs, x = [], 0.0
        for i in range(70):
            v = 3.0 if i < 25 or i >= 35 else 0.0
            x += v
            xs.append((x, 50.0))
        series = extract_series([_track(0, xs)], _config())[0]
        vdiff = series.channels["vdiff"]
        assert vdiff.min() < -1.0
        assert vdiff.max() > 1.0

    def test_right_angle_turn_gives_theta(self):
        positions = [(2.0 * i, 50.0) for i in range(20)]
        positions += [(38.0, 50.0 + 2.0 * i) for i in range(1, 20)]
        series = extract_series([_track(0, positions)], _config())[0]
        theta = series.channels["theta"]
        assert theta.max() > np.pi / 4
        assert theta.max() <= np.pi + 1e-9

    def test_u_turn_accumulates_theta_cum(self):
        # Half-circle: heading rotates by pi overall.
        t = np.linspace(0, np.pi, 40)
        positions = list(zip(50 + 30 * np.sin(t), 80 - 30 * np.cos(t)))
        series = extract_series([_track(0, positions)], _config())[0]
        assert series.channels["theta_cum"].max() > 1.2
        # A straight track accumulates almost nothing.
        straight = extract_series([_straight_track()], _config())[0]
        assert straight.channels["theta_cum"].max() < 0.1

    def test_theta_zero_when_stopped(self):
        positions = [(10.0, 50.0)] * 40  # parked the whole time
        series = extract_series([_track(0, positions)], _config())[0]
        assert np.allclose(series.channels["theta"], 0.0)
        assert np.allclose(series.channels["velocity"], 0.0)

    def test_all_channels_present(self):
        series = extract_series([_straight_track()], _config())[0]
        assert set(series.channels) == set(CHANNEL_NAMES)
        for name in CHANNEL_NAMES:
            assert len(series.channels[name]) == len(series)


class TestInvMdist:
    def test_lone_vehicle_has_zero(self):
        series = extract_series([_straight_track()], _config())[0]
        assert np.allclose(series.channels["inv_mdist"], 0.0)

    def test_two_close_vehicles(self):
        a = _straight_track(0, y=50.0)
        b = _straight_track(1, y=58.0)
        series = extract_series([a, b], _config())
        for s in series:
            assert np.allclose(s.channels["inv_mdist"], 1.0 / 8.0, atol=1e-6)

    def test_mdist_floor_caps_blowup(self):
        a = _straight_track(0, y=50.0)
        b = _straight_track(1, y=50.2)  # virtually touching
        cfg = SamplingConfig(smooth_window=1, mdist_floor=2.0)
        series = extract_series([a, b], cfg)
        for s in series:
            assert s.channels["inv_mdist"].max() <= 0.5 + 1e-9

    def test_nearest_of_several(self):
        a = _straight_track(0, y=50.0)
        b = _straight_track(1, y=60.0)
        c = _straight_track(2, y=90.0)
        series = {s.track_id: s for s in extract_series([a, b, c], _config())}
        assert np.allclose(series[0].channels["inv_mdist"], 0.1, atol=1e-6)
        assert np.allclose(series[1].channels["inv_mdist"], 0.1, atol=1e-6)

    def test_disjoint_time_ranges_do_not_interact(self):
        a = _straight_track(0, n=40, first_frame=0)
        b = _straight_track(1, n=40, first_frame=200)
        series = extract_series([a, b], _config())
        for s in series:
            assert np.allclose(s.channels["inv_mdist"], 0.0)


class TestChannelMatrix:
    def test_selects_named_columns(self):
        series = extract_series([_straight_track()], _config())[0]
        matrix = series.channel_matrix(("velocity", "theta"))
        assert matrix.shape == (len(series), 2)
        assert np.allclose(matrix[:, 0], series.channels["velocity"])

    def test_unknown_channel_rejected(self):
        series = extract_series([_straight_track()], _config())[0]
        with pytest.raises(ConfigurationError, match="unknown feature"):
            series.channel_matrix(("velocity", "nonsense"))


class TestSamplingConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"sampling_rate": 0},
        {"smooth_window": 2},
        {"smooth_window": -1},
        {"mdist_floor": 0.0},
        {"theta_cum_horizon": 0},
    ])
    def test_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingConfig(**kwargs)
