"""Tests for event models."""

import pytest

from repro.errors import ConfigurationError
from repro.events import (
    AccidentModel,
    SpeedingModel,
    UTurnModel,
    event_model_for,
    extract_series,
)
from repro.events.features import SamplingConfig
from tests.events.test_features import _straight_track


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(event_model_for("accident"), AccidentModel)
        assert isinstance(event_model_for("speeding"), SpeedingModel)
        assert isinstance(event_model_for("u_turn"), UTurnModel)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown event model"):
            event_model_for("meteor_strike")


class TestAccidentModel:
    def test_paper_feature_vector(self):
        """Section 4: alpha_i = [1/mdist_i, vdiff_i, theta_i]."""
        model = AccidentModel()
        assert model.feature_names == ("inv_mdist", "vdiff", "theta")
        assert model.n_features == 3

    def test_relevant_kinds_cover_all_accidents(self):
        model = AccidentModel()
        assert model.relevant_kinds == {"wall_crash", "sudden_stop",
                                        "collision"}

    def test_feature_matrix_shape(self):
        series = extract_series([_straight_track()],
                                SamplingConfig(smooth_window=1))[0]
        matrix = AccidentModel().feature_matrix(series)
        assert matrix.shape == (len(series), 3)


class TestOtherModels:
    def test_speeding_uses_velocity(self):
        assert "velocity" in SpeedingModel().feature_names
        assert SpeedingModel().relevant_kinds == {"speeding"}

    def test_uturn_uses_cumulative_heading(self):
        assert "theta_cum" in UTurnModel().feature_names
        assert UTurnModel().relevant_kinds == {"u_turn"}

    def test_subclass_with_bad_channel_rejected(self):
        from repro.events.models import EventModel

        with pytest.raises(ConfigurationError, match="unknown channels"):
            class Broken(EventModel):
                name = "broken"
                feature_names = ("no_such_channel",)


class TestRegistration:
    def _fresh_model(self, name="tailgating"):
        from repro.events.models import EventModel

        class Custom(EventModel):
            feature_names = ("inv_mdist", "velocity")
            relevant_kinds = frozenset({"tailgating"})

        Custom.name = name
        return Custom

    def test_register_and_lookup(self):
        from repro.events.models import (
            _REGISTRY,
            register_event_model,
            registered_event_models,
        )

        model_cls = self._fresh_model("tailgating-test")
        try:
            register_event_model(model_cls)
            assert "tailgating-test" in registered_event_models()
            instance = event_model_for("tailgating-test")
            assert instance.feature_names == ("inv_mdist", "velocity")
        finally:
            _REGISTRY.pop("tailgating-test", None)

    def test_duplicate_rejected_unless_replace(self):
        from repro.events.models import _REGISTRY, register_event_model

        model_cls = self._fresh_model("dup-test")
        try:
            register_event_model(model_cls)
            with pytest.raises(ConfigurationError, match="already"):
                register_event_model(model_cls)
            register_event_model(model_cls, replace=True)
        finally:
            _REGISTRY.pop("dup-test", None)

    def test_invalid_registrations(self):
        from repro.events.models import EventModel, register_event_model

        with pytest.raises(ConfigurationError):
            register_event_model(object)  # type: ignore[arg-type]

        class NoName(EventModel):
            feature_names = ("velocity",)

        with pytest.raises(ConfigurationError, match="name"):
            register_event_model(NoName)

        class NoFeatures(EventModel):
            name = "no-features"

        with pytest.raises(ConfigurationError, match="feature"):
            register_event_model(NoFeatures)
