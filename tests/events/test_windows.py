"""Tests for sliding-window VS/TS extraction (paper Section 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.events import AccidentModel, build_dataset, extract_series
from repro.events.features import SamplingConfig
from repro.events.windows import window_frame_span
from tests.events.test_features import _straight_track


def _series(tracks):
    return extract_series(tracks, SamplingConfig(smooth_window=1))


class TestWindowFrameSpan:
    def test_paper_example(self):
        """Window of 3 checkpoints at rate 5 covers 15 frames."""
        lo, hi = window_frame_span(20, 3, 5)
        assert hi - lo + 1 == 15
        assert hi == 30

    def test_clamped_at_clip_start(self):
        lo, hi = window_frame_span(0, 3, 5)
        assert lo == 0
        assert hi == 10


class TestBuildDataset:
    def test_non_overlapping_default_step(self):
        # 100 frames -> checkpoints 0..100 (21) -> 7 windows of 3.
        dataset = build_dataset(_series([_straight_track(n=101)]),
                                AccidentModel(), window_size=3)
        assert len(dataset) == 7
        frame_ranges = dataset.frame_windows()
        for (lo1, hi1), (lo2, hi2) in zip(frame_ranges, frame_ranges[1:]):
            assert lo2 > hi1 - 5  # windows advance a full stride

    def test_overlapping_step_one(self):
        dataset = build_dataset(_series([_straight_track(n=101)]),
                                AccidentModel(), window_size=3, step=1)
        assert len(dataset) == 19  # 21 checkpoints -> 19 sliding windows

    def test_instance_matrix_shape(self):
        dataset = build_dataset(_series([_straight_track(n=101)]),
                                AccidentModel(), window_size=3)
        inst = dataset.bags[0].instances[0]
        assert inst.matrix.shape == (3, 3)
        assert inst.vector.shape == (9,)

    def test_track_must_cover_full_window(self):
        # Track covers frames 30..70: checkpoints 30..70.
        short = _straight_track(0, n=41, first_frame=30)
        long = _straight_track(1, n=101)
        dataset = build_dataset(_series([short, long]), AccidentModel(),
                                window_size=3)
        for bag in dataset.bags:
            for inst in bag.instances:
                if inst.track_id == 0:
                    assert bag.frame_lo >= 20
                    assert bag.frame_hi <= 70

    def test_paper_scale_ts_counts(self, small_tunnel):
        """The default windowing yields TS counts of the paper's order."""
        from repro.tracking.oracle import tracks_from_simulation

        tracks = tracks_from_simulation(small_tunnel)
        dataset = build_dataset(_series(tracks), AccidentModel(),
                                clip_id="tunnel")
        assert dataset.n_instances > 5
        assert all(b.n_instances >= 1 for b in dataset.bags)

    def test_keep_empty_windows(self):
        track = _straight_track(n=31, first_frame=100)
        dataset = build_dataset(_series([track]), AccidentModel(),
                                keep_empty=True)
        assert any(b.n_instances == 0 for b in dataset.bags) is False
        # Single track: grid spans only its own range, no empty bags.

    def test_bag_and_instance_ids_consistent(self):
        tracks = [_straight_track(0, n=101),
                  _straight_track(1, n=101, y=80.0)]
        dataset = build_dataset(_series(tracks), AccidentModel())
        seen_instances = set()
        for bag in dataset.bags:
            for inst in bag.instances:
                assert inst.bag_id == bag.bag_id
                assert inst.instance_id not in seen_instances
                seen_instances.add(inst.instance_id)

    def test_two_tracks_same_window_share_bag(self):
        tracks = [_straight_track(0, n=101),
                  _straight_track(1, n=101, y=80.0)]
        dataset = build_dataset(_series(tracks), AccidentModel())
        assert all(b.n_instances == 2 for b in dataset.bags)

    def test_empty_series_gives_empty_dataset(self):
        dataset = build_dataset([], AccidentModel())
        assert len(dataset) == 0
        with pytest.raises(ConfigurationError):
            dataset.instance_matrix()

    def test_bad_window_size(self):
        with pytest.raises(ConfigurationError):
            build_dataset(_series([_straight_track()]), AccidentModel(),
                          window_size=0)

    def test_off_grid_series_rejected(self):
        series = _series([_straight_track(n=60)])
        series[0].checkpoint_frames = series[0].checkpoint_frames + 2
        with pytest.raises(ConfigurationError, match="global"):
            build_dataset(series, AccidentModel())

    def test_dataset_metadata(self):
        dataset = build_dataset(_series([_straight_track(n=60)]),
                                AccidentModel(), clip_id="clip-7")
        assert dataset.clip_id == "clip-7"
        assert dataset.event_name == "accident"
        assert dataset.feature_names == ("inv_mdist", "vdiff", "theta")
        assert dataset.window_size == 3
        assert dataset.sampling_rate == 5


# -- property-based invariants -------------------------------------------

track_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),   # first_frame / 5
        st.integers(min_value=31, max_value=120),  # track length
        st.integers(min_value=30, max_value=90),   # lane y
    ),
    min_size=1, max_size=3,
)


def _tracks(specs):
    return [
        _straight_track(i, n=n, first_frame=start5 * 5, y=float(y))
        for i, (start5, n, y) in enumerate(specs)
    ]


class TestWindowFrameSpanProperties:
    @given(first=st.integers(min_value=0, max_value=10_000),
           window=st.integers(min_value=1, max_value=12),
           rate=st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_span_shape(self, first, window, rate):
        lo, hi = window_frame_span(first, window, rate)
        assert hi == first + (window - 1) * rate
        assert lo >= 0
        # Nominal span is window*rate frames, clamped at the clip start.
        assert hi - lo + 1 == min(window * rate, hi + 1)

    @given(first=st.integers(min_value=0, max_value=200),
           window=st.integers(min_value=1, max_value=6),
           rate=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_consecutive_windows_tile_the_clip(self, first, window, rate):
        """Non-overlapping consecutive windows (stride = window) cover
        adjacent, non-overlapping frame intervals once clear of the
        clip-start clamp."""
        lo1, hi1 = window_frame_span(first + window * rate, window, rate)
        if lo1 > 0:
            _, hi0 = window_frame_span(first, window, rate)
            assert lo1 == hi0 + 1


class TestBuildDatasetProperties:
    @given(specs=track_specs,
           window=st.integers(min_value=1, max_value=5),
           step=st.integers(min_value=1, max_value=5),
           keep_empty=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_ids_contiguous_and_shapes_uniform(self, specs, window, step,
                                               keep_empty):
        dataset = build_dataset(
            _series(_tracks(specs)), AccidentModel(), window_size=window,
            step=step, keep_empty=keep_empty)
        assert [b.bag_id for b in dataset.bags] == \
            list(range(len(dataset.bags)))
        next_inst = 0
        for bag in dataset.bags:
            for inst in bag.instances:
                assert inst.instance_id == next_inst
                next_inst += 1
                assert inst.bag_id == bag.bag_id
                assert inst.matrix.shape == (window, 3)
        assert dataset.n_instances == next_inst

    @given(specs=track_specs,
           window=st.integers(min_value=1, max_value=5),
           step=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_keep_empty_only_inserts_empty_bags(self, specs, window, step):
        """keep_empty must not change which windows carry instances —
        the non-empty bags of both variants line up exactly."""
        series = _series(_tracks(specs))
        dense = build_dataset(series, AccidentModel(), window_size=window,
                              step=step, keep_empty=True)
        sparse = build_dataset(series, AccidentModel(), window_size=window,
                               step=step, keep_empty=False)
        kept = [b for b in dense.bags if b.n_instances > 0]
        assert len(kept) == len(sparse.bags)
        for ours, theirs in zip(sparse.bags, kept):
            assert ours.frame_range == theirs.frame_range
            assert ([i.track_id for i in ours.instances]
                    == [i.track_id for i in theirs.instances])
            for a, b in zip(ours.instances, theirs.instances):
                assert np.array_equal(a.matrix, b.matrix)

    @given(specs=track_specs,
           window=st.integers(min_value=1, max_value=5),
           step=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_window_count_follows_grid_arithmetic(self, specs, window,
                                                  step):
        series = _series(_tracks(specs))
        dataset = build_dataset(series, AccidentModel(),
                                window_size=window, step=step,
                                keep_empty=True)
        grid_lo = min(int(s.checkpoint_frames[0]) for s in series) // 5
        grid_hi = max(int(s.checkpoint_frames[-1]) for s in series) // 5
        n_starts = len(range(grid_lo, grid_hi - window + 2, step))
        assert len(dataset.bags) == n_starts

    @given(specs=track_specs,
           window=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_instances_cover_their_window(self, specs, window):
        """Every instance's source track spans the bag's checkpoints."""
        tracks = _tracks(specs)
        span = {t.track_id: (t.first_frame, t.last_frame) for t in tracks}
        dataset = build_dataset(_series(tracks), AccidentModel(),
                                window_size=window)
        first_checkpoint = {bag.bag_id: bag.frame_hi - (window - 1) * 5
                            for bag in dataset.bags}
        for bag in dataset.bags:
            for inst in bag.instances:
                first, last = span[inst.track_id]
                assert first <= first_checkpoint[bag.bag_id]
                assert last >= bag.frame_hi
