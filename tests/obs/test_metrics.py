"""Typed metrics: label-set identity, cardinality guard, histograms."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MAX_LABEL_SETS, Counter, Gauge, Histogram, Telemetry


class TestCounter:
    def test_label_sets_are_independent_series(self):
        c = Counter("pipeline.stage.cache_hit")
        c.inc(stage="segment")
        c.inc(stage="segment")
        c.inc(stage="track")
        assert c.value(stage="segment") == 2
        assert c.value(stage="track") == 1
        assert c.total() == 3

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2
        assert len(c.series()) == 1

    def test_counter_rejects_decrease(self):
        c = Counter("x")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            c.inc(-1)

    def test_values_coerced_to_strings(self):
        c = Counter("x")
        c.inc(round=1)
        assert c.value(round="1") == 1


class TestCardinalityGuard:
    def test_64_label_sets_allowed_65th_rejected(self):
        c = Counter("runaway")
        for i in range(MAX_LABEL_SETS):
            c.inc(key=str(i))
        with pytest.raises(ConfigurationError,
                           match="would exceed 64 label sets"):
            c.inc(key="one-too-many")
        # Existing series still usable after the rejection.
        c.inc(key="0")
        assert c.value(key="0") == 2

    def test_guard_applies_per_family(self):
        g = Gauge("a")
        h = Histogram("b")
        for i in range(MAX_LABEL_SETS):
            g.set(i, key=str(i))
        with pytest.raises(ConfigurationError):
            g.set(0, key="overflow")
        h.observe(1.0, key="still-fine")  # other family unaffected


class TestGaugeAndHistogram:
    def test_gauge_set_and_inc(self):
        g = Gauge("rf.round.ranking_size")
        g.set(20)
        assert g.value() == 20
        g.inc(5)
        assert g.value() == 25

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()["series"][0]
        assert snap["count"] == 3
        assert snap["sum"] == 555.0
        assert snap["mean"] == pytest.approx(185.0)
        assert snap["buckets"] == {"10.0": 1, "100.0": 2, "+Inf": 3}

    def test_histogram_boundary_lands_in_its_bucket(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(10.0)
        snap = h.snapshot()["series"][0]
        assert snap["buckets"]["10.0"] == 1

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            Histogram("bad", buckets=(5.0, 1.0))


class TestRegistryLookup:
    def test_same_name_returns_same_family(self, fresh_telemetry):
        t = fresh_telemetry
        t.counter("my.counter").inc()
        t.counter("my.counter").inc()
        assert t.counter("my.counter").total() == 2

    def test_kind_mismatch_rejected(self, fresh_telemetry):
        t = fresh_telemetry
        t.counter("dual.use").inc()
        with pytest.raises(ConfigurationError, match="already registered"):
            t.gauge("dual.use")

    def test_disabled_registry_returns_inert_instruments(self):
        t = Telemetry(enabled=False)
        t.counter("x").inc()
        t.gauge("y").set(3)
        t.histogram("z").observe(1.0)
        assert t.counter("x").value() == 0.0
        # Nothing beyond the pre-declared surface was materialised.
        assert all(not m.series() for m in t.metric_families())

    def test_default_surface_predeclared(self, fresh_telemetry):
        names = {m.name for m in fresh_telemetry.metric_families()}
        assert "pipeline.stage.cache_hit" in names
        assert "rf.round.latency_ms" in names
        assert "reliability.task.retries" in names
