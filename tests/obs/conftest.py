"""Telemetry isolation: each test gets its own process-wide registry.

The instrumented code paths record into ``repro.obs.get_telemetry()``;
without this fixture one test's spans and counter values would leak
into the next (and into the CLI smoke tests, which run whole commands
in-process).
"""

import pytest

from repro.obs import Telemetry, set_telemetry


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Swap in a fresh registry for the test, restore the old one after."""
    telemetry = Telemetry()
    previous = set_telemetry(telemetry)
    yield telemetry
    restored = set_telemetry(previous)
    if restored.writer is not None:
        restored.writer.close()
